//! File-backed archives flow through the evaluation stack exactly like
//! synthetic ones: `run_matrix` over the bundled real-format fixtures,
//! Covering against their file-carried annotations.

use class_core::ClassConfig;
use datasets::{fixtures_dir, AnnotatedSeries, DataDir};
use eval::{covering_matrix, run_matrix, AlgoSpec};

fn fixture_series() -> Vec<AnnotatedSeries> {
    let dir = DataDir::open(fixtures_dir());
    let mut out = Vec::new();
    for archive in ["TSSB", "UTSA"] {
        let disk = dir.find(archive).unwrap().expect("bundled fixtures");
        out.extend(disk.load().expect("fixtures load"));
    }
    out
}

#[test]
fn run_matrix_accepts_file_backed_archives() {
    let series = fixture_series();
    assert!(series.len() >= 4, "fixture set shrank: {}", series.len());

    let mut cfg = ClassConfig::with_window_size(1500);
    cfg.log10_alpha = -15.0;
    let algos = vec![
        AlgoSpec::Class(cfg),
        AlgoSpec::Baseline {
            kind: competitors::CompetitorKind::Window,
            window_size: 1500,
        },
    ];
    let results = run_matrix(&algos, &series, 4);
    assert_eq!(results.len(), algos.len() * series.len());
    for r in &results {
        assert!(
            (0.0..=1.0).contains(&r.covering),
            "{}: {}",
            r.series,
            r.covering
        );
        assert!(r.n_points >= 1500);
        assert!(matches!(r.archive, "TSSB" | "UTSA"), "{}", r.archive);
    }

    // ClaSS must beat the trivial no-change-point segmentation (covering
    // 0.5 on a two-segment series) on average over the real-format
    // fixtures — the same bar the synthetic-path tests set.
    let scores = covering_matrix(&results, algos.len(), series.len());
    let class_mean = scores[0].iter().sum::<f64>() / series.len() as f64;
    assert!(
        class_mean > 0.6,
        "ClaSS mean covering {class_mean} on fixtures"
    );
}

#[test]
fn file_backed_and_synthetic_series_mix_in_one_matrix() {
    let mut series = fixture_series();
    let n_files = series.len();
    series.extend(
        datasets::Archive::Tssb
            .generate(&datasets::GenConfig::default())
            .into_iter()
            .take(2),
    );

    let algos = vec![AlgoSpec::Baseline {
        kind: competitors::CompetitorKind::Ddm,
        window_size: 1000,
    }];
    let results = run_matrix(&algos, &series, 2);
    assert_eq!(results.len(), n_files + 2);
    // Provenance survives the mix: file-backed rows keep their directory
    // archive names, synthetic rows keep the Table 1 name.
    assert!(results
        .iter()
        .take(n_files)
        .all(|r| matches!(r.archive, "TSSB" | "UTSA")));
    assert!(results.iter().skip(n_files).all(|r| r.archive == "TSSB"));
}
