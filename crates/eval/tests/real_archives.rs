//! File-backed archives flow through the evaluation stack exactly like
//! synthetic ones: `run_matrix` over the bundled real-format fixtures,
//! Covering against their file-carried annotations.

use class_core::ClassConfig;
use datasets::{fixtures_dir, AnnotatedSeries, DataDir};
use eval::{covering_matrix, run_matrix, AlgoSpec};

fn fixture_series() -> Vec<AnnotatedSeries> {
    let dir = DataDir::open(fixtures_dir());
    let mut out = Vec::new();
    for archive in ["TSSB", "UTSA"] {
        let disk = dir.find(archive).unwrap().expect("bundled fixtures");
        out.extend(disk.load().expect("fixtures load"));
    }
    out
}

#[test]
fn run_matrix_accepts_file_backed_archives() {
    let series = fixture_series();
    assert!(series.len() >= 4, "fixture set shrank: {}", series.len());

    let mut cfg = ClassConfig::with_window_size(1500);
    cfg.log10_alpha = -15.0;
    let algos = vec![
        AlgoSpec::Class(cfg),
        AlgoSpec::Baseline {
            kind: competitors::CompetitorKind::Window,
            window_size: 1500,
        },
    ];
    let results = run_matrix(&algos, &series, 4);
    assert_eq!(results.len(), algos.len() * series.len());
    for r in &results {
        assert!(
            (0.0..=1.0).contains(&r.covering),
            "{}: {}",
            r.series,
            r.covering
        );
        assert!(r.n_points >= 1500);
        assert!(matches!(r.archive, "TSSB" | "UTSA"), "{}", r.archive);
    }

    // ClaSS must beat the trivial no-change-point segmentation (covering
    // 0.5 on a two-segment series) on average over the real-format
    // fixtures — the same bar the synthetic-path tests set.
    let scores = covering_matrix(&results, algos.len(), series.len());
    let class_mean = scores[0].iter().sum::<f64>() / series.len() as f64;
    assert!(
        class_mean > 0.6,
        "ClaSS mean covering {class_mean} on fixtures"
    );
}

/// The paper's Table 3 univariate protocol: every channel of every data
/// archive — file-backed (WFDB, wide-CSV, EDF fixtures) or synthetic
/// fallback — is addressable as its own `…/ch<c>` series and flows
/// through `run_matrix` with archive provenance intact.
#[test]
fn run_matrix_scores_extracted_channels_of_all_six_data_archives() {
    let dir = DataDir::open(fixtures_dir());
    // Clamp the synthetic fallbacks to their 6k-sample floor: this test
    // exercises the per-channel plumbing, not segmentation power.
    let cfg = datasets::GenConfig {
        scale: 0.05,
        ..Default::default()
    };
    let series =
        datasets::resolve_channel_series(&cfg, Some(&dir)).expect("all six data archives resolve");

    // Every data archive contributes, and every series is an extracted
    // channel with an addressable id. Disk-backed series carry their
    // fixture directory name, synthetic ones the Table 1 name, so compare
    // under the manifest's name normalization (case/space-insensitive).
    let norm = |s: &str| -> String {
        s.chars()
            .filter(|c| !matches!(c, ' ' | '-' | '_'))
            .flat_map(char::to_lowercase)
            .collect()
    };
    let data_archives = ["mHealth", "Arr DB", "VE DB", "PAMAP", "Sleep DB", "WESAD"];
    for name in data_archives {
        assert!(
            series.iter().any(|s| norm(s.archive) == norm(name)),
            "archive {name} missing from the per-channel pass"
        );
    }
    for s in &series {
        assert!(s.name.contains("/ch"), "{} is not a channel id", s.name);
        assert!(!s.change_points.is_empty(), "{}", s.name);
    }
    // The bundled EDF fixtures surface as disk-backed Sleep DB channels.
    for id in [
        "sleepdb/psg01/ch0",
        "sleepdb/psg01/ch1",
        "sleepdb/psg02/ch0",
    ] {
        assert!(
            series
                .iter()
                .any(|s| s.name == id && norm(s.archive) == "sleepdb"),
            "extracted EDF channel {id} missing"
        );
    }

    // Score a slice covering every archive (two channels each): the
    // matrix plumbing is identical per row, and the full set is too slow
    // for an unoptimized tier-1 run.
    let mut picked: Vec<AnnotatedSeries> = Vec::new();
    for name in data_archives {
        picked.extend(
            series
                .iter()
                .filter(|s| norm(s.archive) == norm(name))
                .take(2)
                .cloned(),
        );
    }
    assert_eq!(picked.len(), 2 * data_archives.len());
    let algos = vec![AlgoSpec::Baseline {
        kind: competitors::CompetitorKind::Window,
        window_size: 500,
    }];
    let results = run_matrix(&algos, &picked, 4);
    assert_eq!(results.len(), picked.len());
    for r in &results {
        assert!(
            (0.0..=1.0).contains(&r.covering),
            "{}: {}",
            r.series,
            r.covering
        );
        assert!(
            data_archives.iter().any(|a| norm(a) == norm(r.archive)),
            "{}: unexpected archive {}",
            r.series,
            r.archive
        );
    }
    // Channel ids survive into the result rows.
    assert!(results.iter().any(|r| r.series == "sleepdb/psg01/ch0"));
}

#[test]
fn file_backed_and_synthetic_series_mix_in_one_matrix() {
    let mut series = fixture_series();
    let n_files = series.len();
    series.extend(
        datasets::Archive::Tssb
            .generate(&datasets::GenConfig::default())
            .into_iter()
            .take(2),
    );

    let algos = vec![AlgoSpec::Baseline {
        kind: competitors::CompetitorKind::Ddm,
        window_size: 1000,
    }];
    let results = run_matrix(&algos, &series, 2);
    assert_eq!(results.len(), n_files + 2);
    // Provenance survives the mix: file-backed rows keep their directory
    // archive names, synthetic rows keep the Table 1 name.
    assert!(results
        .iter()
        .take(n_files)
        .all(|r| matches!(r.archive, "TSSB" | "UTSA")));
    assert!(results.iter().skip(n_files).all(|r| r.archive == "TSSB"));
}
