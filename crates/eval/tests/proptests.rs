//! Property-based tests of the Covering measure and rank aggregation.

use eval::{covering, rank_matrix, summarize};
use proptest::prelude::*;

fn cps_strategy(n: u64) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1..n.max(2), 0..8).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn covering_is_bounded_and_normalised(
        n in 10u64..5000,
        gt in cps_strategy(5000),
        pred in cps_strategy(5000),
    ) {
        let c = covering(&gt, &pred, n);
        prop_assert!((0.0..=1.0).contains(&c), "c = {c}");
    }

    #[test]
    fn exact_prediction_scores_one(
        n in 10u64..5000,
        gt in cps_strategy(5000),
    ) {
        let gt_in: Vec<u64> = gt.iter().copied().filter(|&c| c < n).collect();
        let c = covering(&gt_in, &gt_in, n);
        prop_assert!((c - 1.0).abs() < 1e-12, "c = {c}");
    }

    #[test]
    fn shifting_a_prediction_away_never_helps(
        n in 200u64..4000,
        cp_frac in 0.2f64..0.8,
        shift in 1u64..50,
    ) {
        let cp = (n as f64 * cp_frac) as u64;
        let near = covering(&[cp], &[cp + shift], n);
        let far = covering(&[cp], &[cp + 3 * shift], n);
        prop_assert!(far <= near + 1e-12, "near {near} far {far}");
    }

    #[test]
    fn covering_tolerates_unsorted_out_of_range_predictions(
        n in 10u64..1000,
        gt in cps_strategy(1000),
        pred in prop::collection::vec(0u64..2000, 0..10),
    ) {
        let mut sorted = pred.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let c = covering(&gt, &sorted, n);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn ranks_are_a_permutation_with_ties_averaged(
        scores in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 5),
            2..6,
        ),
    ) {
        let ranks = rank_matrix(&scores);
        let k = scores.len();
        for d in 0..5 {
            let mut col: Vec<f64> = (0..k).map(|m| ranks[m][d]).collect();
            // Rank sum is invariant: k (k + 1) / 2.
            let sum: f64 = col.iter().sum();
            prop_assert!((sum - (k * (k + 1)) as f64 / 2.0).abs() < 1e-9);
            col.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for pair in col.windows(2) {
                prop_assert!(pair[1] >= pair[0]);
            }
        }
    }

    #[test]
    fn summary_quartiles_are_ordered(
        xs in prop::collection::vec(-100.0f64..100.0, 1..200),
    ) {
        let s = summarize(&xs);
        prop_assert!(s.min <= s.q1 + 1e-12);
        prop_assert!(s.q1 <= s.median + 1e-12);
        prop_assert!(s.median <= s.q3 + 1e-12);
        prop_assert!(s.q3 <= s.max + 1e-12);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.mean >= s.min - 1e-12 && s.mean <= s.max + 1e-12);
    }
}
