//! Rank aggregation and critical-difference analysis (paper §4.1:
//! "we compute the rank of the score for each method on each TS ... CD
//! diagrams are used to statistically assess differences in the mean
//! ranks", Demšar 2006).

/// Per-dataset ranks of one method (1 = best; ties share the average rank).
/// `scores[m][d]` is method `m`'s score on dataset `d` (higher = better).
/// Returns `ranks[m][d]`.
pub fn rank_matrix(scores: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = scores.len();
    if k == 0 {
        return Vec::new();
    }
    let n = scores[0].len();
    let mut ranks = vec![vec![0.0; n]; k];
    let mut order: Vec<usize> = Vec::with_capacity(k);
    for d in 0..n {
        order.clear();
        order.extend(0..k);
        order.sort_by(|&a, &b| scores[b][d].partial_cmp(&scores[a][d]).unwrap());
        // Assign average ranks to tie groups.
        let mut i = 0;
        while i < k {
            let mut j = i;
            while j + 1 < k && (scores[order[j + 1]][d] - scores[order[i]][d]).abs() < 1e-12 {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &m in &order[i..=j] {
                ranks[m][d] = avg;
            }
            i = j + 1;
        }
    }
    ranks
}

/// Mean rank per method.
pub fn mean_ranks(ranks: &[Vec<f64>]) -> Vec<f64> {
    ranks
        .iter()
        .map(|r| r.iter().sum::<f64>() / r.len().max(1) as f64)
        .collect()
}

/// Friedman chi-squared statistic for `k` methods over `n` datasets.
pub fn friedman_statistic(mean_ranks: &[f64], n: usize) -> f64 {
    let k = mean_ranks.len() as f64;
    let n = n as f64;
    let sum_sq: f64 = mean_ranks.iter().map(|r| r * r).sum();
    12.0 * n / (k * (k + 1.0)) * (sum_sq - k * (k + 1.0) * (k + 1.0) / 4.0)
}

/// Critical difference of the two-tailed Nemenyi test at alpha = 0.05.
/// `k` methods, `n` datasets.
pub fn nemenyi_cd(k: usize, n: usize) -> f64 {
    // q_alpha values (studentized range / sqrt(2)) for alpha = 0.05.
    const Q05: [f64; 19] = [
        1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164, 3.219, 3.268, 3.313, 3.354,
        3.391, 3.426, 3.458, 3.489, 3.517, 3.544,
    ];
    assert!((2..=20).contains(&k), "Nemenyi table covers 2..=20 methods");
    let q = Q05[k - 2];
    q * ((k * (k + 1)) as f64 / (6.0 * n as f64)).sqrt()
}

/// Pairwise comparison: fraction of datasets where method `a` scores at
/// least as high as method `b` (the paper's "ClaSS outperforms all
/// competitors in at least 77% of all cases").
pub fn pairwise_wins(scores: &[Vec<f64>], a: usize, b: usize) -> f64 {
    let n = scores[a].len();
    if n == 0 {
        return 0.0;
    }
    let wins = scores[a]
        .iter()
        .zip(&scores[b])
        .filter(|(x, y)| x >= y)
        .count();
    wins as f64 / n as f64
}

/// Number of datasets on which each method achieves the maximum score
/// (wins and ties, as counted in §4.3).
pub fn wins_and_ties(scores: &[Vec<f64>]) -> Vec<usize> {
    let k = scores.len();
    if k == 0 {
        return Vec::new();
    }
    let n = scores[0].len();
    let mut wins = vec![0usize; k];
    for d in 0..n {
        let best = (0..k).map(|m| scores[m][d]).fold(f64::MIN, f64::max);
        for (m, w) in wins.iter_mut().enumerate() {
            if (scores[m][d] - best).abs() < 1e-12 {
                *w += 1;
            }
        }
    }
    wins
}

/// Summary statistics of one method's scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`Summary`] statistics (returns zeros for empty input).
pub fn summarize(xs: &[f64]) -> Summary {
    if xs.is_empty() {
        return Summary {
            mean: 0.0,
            median: 0.0,
            std: 0.0,
            q1: 0.0,
            q3: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let mut s: Vec<f64> = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = s.len();
    let mean = s.iter().sum::<f64>() / n as f64;
    let var = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    let at = |q: f64| s[((n - 1) as f64 * q).round() as usize];
    Summary {
        mean,
        median: at(0.5),
        std: var.sqrt(),
        q1: at(0.25),
        q3: at(0.75),
        min: s[0],
        max: s[n - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_matrix_simple_ordering() {
        // Two datasets, three methods.
        let scores = vec![vec![0.9, 0.5], vec![0.8, 0.7], vec![0.1, 0.6]];
        let ranks = rank_matrix(&scores);
        assert_eq!(ranks[0], vec![1.0, 3.0]);
        assert_eq!(ranks[1], vec![2.0, 1.0]);
        assert_eq!(ranks[2], vec![3.0, 2.0]);
        let mr = mean_ranks(&ranks);
        assert_eq!(mr, vec![2.0, 1.5, 2.5]);
    }

    #[test]
    fn ties_share_average_rank() {
        let scores = vec![vec![0.5], vec![0.5], vec![0.1]];
        let ranks = rank_matrix(&scores);
        assert_eq!(ranks[0][0], 1.5);
        assert_eq!(ranks[1][0], 1.5);
        assert_eq!(ranks[2][0], 3.0);
    }

    #[test]
    fn friedman_zero_when_no_differences() {
        // All mean ranks equal (k+1)/2 -> statistic 0.
        let mr = vec![2.0, 2.0, 2.0];
        assert!(friedman_statistic(&mr, 10).abs() < 1e-9);
    }

    #[test]
    fn friedman_grows_with_separation() {
        let weak = friedman_statistic(&[1.8, 2.0, 2.2], 20);
        let strong = friedman_statistic(&[1.0, 2.0, 3.0], 20);
        assert!(strong > weak);
    }

    #[test]
    fn nemenyi_cd_matches_known_value() {
        // Demsar 2006: k = 9, N = 107 -> CD ~ 1.16 (paper Fig. 5 geometry).
        let cd = nemenyi_cd(9, 107);
        assert!((cd - 1.16).abs() < 0.03, "cd = {cd}");
        // More datasets shrink the CD.
        assert!(nemenyi_cd(9, 485) < cd);
    }

    #[test]
    #[should_panic]
    fn nemenyi_rejects_unsupported_k() {
        let _ = nemenyi_cd(25, 10);
    }

    #[test]
    fn pairwise_and_wins() {
        let scores = vec![vec![0.9, 0.8, 0.3], vec![0.5, 0.8, 0.6]];
        assert!((pairwise_wins(&scores, 0, 1) - 2.0 / 3.0).abs() < 1e-12);
        let wins = wins_and_ties(&scores);
        assert_eq!(wins, vec![2, 2]); // dataset 2 is a tie
    }

    #[test]
    fn summary_statistics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert!((s.std - (2.0f64).sqrt()).abs() < 1e-12);
        let empty = summarize(&[]);
        assert_eq!(empty.mean, 0.0);
    }
}
