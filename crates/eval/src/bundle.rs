//! Provenance-stamped run bundles: one comparison path for every
//! serving/benchmark artefact.
//!
//! A `RunBundle` records *how* a run was produced — tool, preset-style
//! config, seed, SIMD backend, `git describe` — next to its final
//! metrics, so any two runs can be diffed mechanically instead of
//! eyeballing ad-hoc `BENCH_*.json` files. `bench --bin compare_bundles`
//! is the CLI over [`compare`]; `serve_throughput`, `serve_soak`, and
//! `class-cli datasets run` all emit bundles via `--bundle-out`.
//!
//! The module also hosts the crate's minimal JSON value parser
//! ([`parse_json`]) — enough of RFC 8259 for the documents this
//! workspace writes (no external dependency, mirroring the hand-rolled
//! renderers everywhere else).

use std::path::Path;

/// Schema stamped into (and required of) every bundle document.
pub const BUNDLE_SCHEMA: &str = "class-run-bundle/v1";

// ---------------------------------------------------------------------------
// Minimal JSON value parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDCxx`.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the document is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("short \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u hex"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }
}

/// Parses one JSON document into a [`Json`] value, rejecting trailing
/// garbage. Covers the subset this workspace emits (no duplicate-key
/// policy; objects keep document order).
pub fn parse_json(doc: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: doc.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// RunBundle
// ---------------------------------------------------------------------------

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repo) is unavailable — bundles must never fail to
/// render over provenance.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A provenance-stamped run record: what produced it, under what
/// configuration, and the final metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct RunBundle {
    /// Document schema ([`BUNDLE_SCHEMA`] when produced by this code).
    pub schema: String,
    /// Emitting tool (`serve-soak`, `serve-throughput`, `datasets-run`).
    pub tool: String,
    /// The run's RNG seed, when the tool is seeded.
    pub seed: Option<u64>,
    /// Active SIMD backend (`scalar` / `autovec` / `avx2`).
    pub simd_backend: String,
    /// `git describe --always --dirty` at run time.
    pub git_describe: String,
    /// Configuration knobs as ordered string pairs; two bundles must
    /// agree on these to be comparable.
    pub config: Vec<(String, String)>,
    /// Final metrics as ordered name/value pairs.
    pub metrics: Vec<(String, f64)>,
}

impl RunBundle {
    /// A new bundle for `tool`, stamped with the live SIMD backend and
    /// git description.
    pub fn new(tool: &str) -> RunBundle {
        RunBundle {
            schema: BUNDLE_SCHEMA.to_string(),
            tool: tool.to_string(),
            seed: None,
            simd_backend: class_core::simd::active_backend().name().to_string(),
            git_describe: git_describe(),
            config: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Sets the run seed.
    pub fn with_seed(mut self, seed: u64) -> RunBundle {
        self.seed = Some(seed);
        self
    }

    /// Appends a configuration pair.
    pub fn config(&mut self, key: &str, value: impl ToString) {
        self.config.push((key.to_string(), value.to_string()));
    }

    /// Appends a metric. Non-finite values are stored as-is and rendered
    /// as `null` (then skipped on parse), so one broken metric can't
    /// corrupt the document.
    pub fn metric(&mut self, key: &str, value: f64) {
        self.metrics.push((key.to_string(), value));
    }

    /// Renders the bundle as its canonical JSON document.
    pub fn render_json(&self) -> String {
        let esc = |s: &str| {
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        };
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", esc(&self.schema)));
        out.push_str(&format!("  \"tool\": \"{}\",\n", esc(&self.tool)));
        match self.seed {
            Some(seed) => out.push_str(&format!("  \"seed\": {seed},\n")),
            None => out.push_str("  \"seed\": null,\n"),
        }
        out.push_str(&format!(
            "  \"simd_backend\": \"{}\",\n",
            esc(&self.simd_backend)
        ));
        out.push_str(&format!(
            "  \"git_describe\": \"{}\",\n",
            esc(&self.git_describe)
        ));
        out.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            out.push_str(&format!(
                "\"{}\": \"{}\"{}",
                esc(k),
                esc(v),
                if i + 1 < self.config.len() { ", " } else { "" }
            ));
        }
        out.push_str("},\n");
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let rendered = if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            };
            out.push_str(&format!(
                "\"{}\": {rendered}{}",
                esc(k),
                if i + 1 < self.metrics.len() { ", " } else { "" }
            ));
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a bundle document, validating its schema family. A
    /// document without a `class-run-bundle/*` schema errors loudly —
    /// that is the "don't compare garbage" gate.
    pub fn parse(doc: &str) -> Result<RunBundle, String> {
        let root = parse_json(doc)?;
        let schema = root
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("bundle has no \"schema\" key")?
            .to_string();
        if !schema.starts_with("class-run-bundle/") {
            return Err(format!(
                "schema {schema:?} is not a run bundle (expected {BUNDLE_SCHEMA:?})"
            ));
        }
        let tool = root
            .get("tool")
            .and_then(Json::as_str)
            .ok_or("bundle has no \"tool\" key")?
            .to_string();
        let seed = match root.get("seed") {
            Some(Json::Num(n)) => Some(*n as u64),
            _ => None,
        };
        let simd_backend = root
            .get("simd_backend")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let git = root
            .get("git_describe")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let mut config = Vec::new();
        if let Some(members) = root.get("config").and_then(Json::as_obj) {
            for (k, v) in members {
                let value = match v {
                    Json::Str(s) => s.clone(),
                    Json::Num(n) => format!("{n}"),
                    Json::Bool(b) => b.to_string(),
                    other => return Err(format!("config {k:?} has non-scalar value {other:?}")),
                };
                config.push((k.clone(), value));
            }
        }
        let mut metrics = Vec::new();
        if let Some(members) = root.get("metrics").and_then(Json::as_obj) {
            for (k, v) in members {
                match v {
                    Json::Num(n) => metrics.push((k.clone(), *n)),
                    Json::Null => {} // a non-finite metric was elided
                    other => return Err(format!("metric {k:?} is not a number: {other:?}")),
                }
            }
        }
        Ok(RunBundle {
            schema,
            tool,
            seed,
            simd_backend,
            git_describe: git,
            config,
            metrics,
        })
    }

    /// Reads and parses a bundle file.
    pub fn load(path: impl AsRef<Path>) -> Result<RunBundle, String> {
        let path = path.as_ref();
        let doc = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        RunBundle::parse(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the rendered bundle to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render_json())
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Default relative tolerance for a metric by name: timing-, rate-, and
/// memory-shaped metrics (wall-clock dependent) get a loose 75%; count
/// metrics (deterministic modulo small scheduling races) get 5%.
pub fn default_tolerance(metric: &str) -> f64 {
    const LOOSE: [&str; 7] = ["per_sec", "elapsed", "latency", "hwm", "busy", "p50", "p99"];
    if LOOSE.iter().any(|k| metric.contains(k)) {
        0.75
    } else {
        0.05
    }
}

/// One metric's comparison outcome.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Metric name.
    pub name: String,
    /// Value in bundle A.
    pub a: f64,
    /// Value in bundle B.
    pub b: f64,
    /// Relative difference `|a-b| / max(|a|,|b|)` (0 when both are 0).
    pub rel: f64,
    /// Tolerance the difference was judged against.
    pub tolerance: f64,
    /// Whether the difference exceeds the tolerance.
    pub beyond: bool,
}

/// The result of comparing two bundles.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Per-metric outcomes, in bundle-A order.
    pub diffs: Vec<MetricDiff>,
    /// Non-fatal observations (skipped metrics, seed/backend notes).
    pub notes: Vec<String>,
}

impl CompareReport {
    /// Metrics whose difference exceeded their tolerance.
    pub fn violations(&self) -> Vec<&MetricDiff> {
        self.diffs.iter().filter(|d| d.beyond).collect()
    }

    /// Whether every compared metric is within tolerance.
    pub fn is_clean(&self) -> bool {
        self.diffs.iter().all(|d| !d.beyond)
    }
}

/// Compares two bundles metric by metric.
///
/// Errors (the caller should exit loudly, not report a diff) when the
/// bundles are not comparable at all: different schema versions,
/// different tools, or conflicting config. Differing seeds and SIMD
/// backends are *notes* — but on a backend mismatch the timing-shaped
/// metrics (see [`default_tolerance`]'s loose class) are skipped, since
/// rates measured on different kernels say nothing about regressions.
///
/// `overrides` are per-metric tolerance overrides; `default_override`
/// replaces [`default_tolerance`] for every metric not overridden.
pub fn compare(
    a: &RunBundle,
    b: &RunBundle,
    overrides: &[(String, f64)],
    default_override: Option<f64>,
) -> Result<CompareReport, String> {
    if a.schema != b.schema {
        return Err(format!(
            "schema mismatch: {:?} vs {:?} — refusing to compare across schema versions",
            a.schema, b.schema
        ));
    }
    if a.tool != b.tool {
        return Err(format!(
            "tool mismatch: {:?} vs {:?} — these bundles measure different things",
            a.tool, b.tool
        ));
    }
    for (k, va) in &a.config {
        match b.config.iter().find(|(kb, _)| kb == k) {
            Some((_, vb)) if va == vb => {}
            Some((_, vb)) => {
                return Err(format!(
                    "config mismatch on {k:?}: {va:?} vs {vb:?} — runs are not comparable"
                ))
            }
            None => return Err(format!("config key {k:?} missing from bundle B")),
        }
    }
    for (k, _) in &b.config {
        if !a.config.iter().any(|(ka, _)| ka == k) {
            return Err(format!("config key {k:?} missing from bundle A"));
        }
    }

    let mut report = CompareReport::default();
    if a.seed != b.seed {
        report
            .notes
            .push(format!("seeds differ: {:?} vs {:?}", a.seed, b.seed));
    }
    let backend_mismatch = a.simd_backend != b.simd_backend;
    if backend_mismatch {
        report.notes.push(format!(
            "SIMD backends differ ({} vs {}): timing metrics skipped",
            a.simd_backend, b.simd_backend
        ));
    }
    if a.git_describe != b.git_describe {
        report.notes.push(format!(
            "builds differ: {} vs {}",
            a.git_describe, b.git_describe
        ));
    }

    for (name, &va) in a.metrics.iter().map(|(k, v)| (k, v)) {
        let Some(&vb) = b.metrics.iter().find(|(kb, _)| kb == name).map(|(_, v)| v) else {
            report
                .notes
                .push(format!("metric {name:?} only in bundle A: skipped"));
            continue;
        };
        let loose = default_tolerance(name) > 0.05;
        if backend_mismatch && loose {
            report
                .notes
                .push(format!("metric {name:?} skipped (backend mismatch)"));
            continue;
        }
        let tolerance = overrides
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, t)| *t)
            .or(default_override)
            .unwrap_or_else(|| default_tolerance(name));
        let denom = va.abs().max(vb.abs());
        let rel = if denom == 0.0 {
            0.0
        } else {
            (va - vb).abs() / denom
        };
        report.diffs.push(MetricDiff {
            name: name.clone(),
            a: va,
            b: vb,
            rel,
            tolerance,
            beyond: rel > tolerance,
        });
    }
    for (name, _) in &b.metrics {
        if !a.metrics.iter().any(|(ka, _)| ka == name) {
            report
                .notes
                .push(format!("metric {name:?} only in bundle B: skipped"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunBundle {
        let mut b = RunBundle::new("serve-soak").with_seed(42);
        b.config("preset", "quick");
        b.config("shards", 4);
        b.metric("records", 144_000.0);
        b.metric("quarantined", 7.0);
        b.metric("records_per_sec", 250_000.5);
        b
    }

    #[test]
    fn render_parse_round_trips() {
        let b = sample();
        let parsed = RunBundle::parse(&b.render_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn escaped_strings_round_trip() {
        let mut b = sample();
        b.config("path", "dir\\file \"x\"\nnext");
        let parsed = RunBundle::parse(&b.render_json()).unwrap();
        assert_eq!(parsed.config, b.config);
    }

    #[test]
    fn non_finite_metric_renders_null_and_is_elided() {
        let mut b = sample();
        b.metric("broken", f64::NAN);
        let doc = b.render_json();
        assert!(doc.contains("\"broken\": null"), "{doc}");
        let parsed = RunBundle::parse(&doc).unwrap();
        assert!(!parsed.metrics.iter().any(|(k, _)| k == "broken"));
    }

    #[test]
    fn identical_bundles_compare_clean() {
        let b = sample();
        let report = compare(&b, &b, &[], None).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.diffs.len(), 3);
    }

    #[test]
    fn perturbed_metric_beyond_tolerance_is_a_violation() {
        let a = sample();
        let mut b = sample();
        b.metrics[0].1 *= 1.10; // records +10% > 5% default
        let report = compare(&a, &b, &[], None).unwrap();
        let violations = report.violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].name, "records");
        // A per-metric override can absorb it.
        let relaxed = compare(&a, &b, &[("records".to_string(), 0.2)], None).unwrap();
        assert!(relaxed.is_clean());
    }

    #[test]
    fn timing_metrics_get_loose_default_tolerance() {
        let a = sample();
        let mut b = sample();
        b.metrics[2].1 *= 1.5; // records_per_sec +50% < 75% loose default
        assert!(compare(&a, &b, &[], None).unwrap().is_clean());
    }

    #[test]
    fn schema_and_tool_and_config_mismatches_error() {
        let a = sample();
        let mut v2 = sample();
        v2.schema = "class-run-bundle/v2".to_string();
        assert!(compare(&a, &v2, &[], None).unwrap_err().contains("schema"));
        let mut other_tool = sample();
        other_tool.tool = "serve-throughput".to_string();
        assert!(compare(&a, &other_tool, &[], None)
            .unwrap_err()
            .contains("tool"));
        let mut other_cfg = sample();
        other_cfg.config[0].1 = "full".to_string();
        assert!(compare(&a, &other_cfg, &[], None)
            .unwrap_err()
            .contains("preset"));
    }

    #[test]
    fn backend_mismatch_skips_timing_metrics_only() {
        let a = sample();
        let mut b = sample();
        b.simd_backend = "scalar".to_string();
        b.metrics[2].1 *= 100.0; // timing metric wildly off — skipped
        let report = compare(&a, &b, &[], None).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.diffs.len(), 2, "count metrics still compared");
    }

    #[test]
    fn non_bundle_schema_fails_parse() {
        let err = RunBundle::parse("{\"schema\": \"class-serve-soak/v1\"}").unwrap_err();
        assert!(err.contains("not a run bundle"), "{err}");
    }

    #[test]
    fn json_parser_covers_the_grammar() {
        let doc = r#"{"a": [1, -2.5e3, true, false, null], "b": {"c": "x\ty A 😀"}}"#;
        let v = parse_json(doc).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[4], Json::Null);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ty A 😀")
        );
        assert_eq!(parse_json(r#""😀 A""#).unwrap().as_str(), Some("😀 A"));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{\"a\": }").is_err());
    }
}
