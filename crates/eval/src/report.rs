//! Text rendering of the paper's evaluation artefacts: critical-difference
//! diagrams (Figure 5 top), box plots (Figure 5 bottom), and markdown
//! tables (Tables 1 and 3).

use crate::ranks::{mean_ranks, nemenyi_cd, rank_matrix, summarize, wins_and_ties};

/// A named column of per-dataset scores.
#[derive(Debug, Clone)]
pub struct MethodScores {
    /// Method name.
    pub name: String,
    /// One score per dataset (aligned across methods).
    pub scores: Vec<f64>,
}

/// Renders a textual critical-difference analysis: methods sorted by mean
/// rank, with groups of statistically indistinguishable methods (Nemenyi,
/// alpha = 0.05) marked by shared group letters.
pub fn cd_diagram(methods: &[MethodScores]) -> String {
    let k = methods.len();
    assert!(k >= 2, "need at least two methods");
    let n = methods[0].scores.len();
    let matrix: Vec<Vec<f64>> = methods.iter().map(|m| m.scores.clone()).collect();
    let ranks = rank_matrix(&matrix);
    let mr = mean_ranks(&ranks);
    let cd = nemenyi_cd(k, n);
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| mr[a].partial_cmp(&mr[b]).unwrap());

    // Maximal cliques of mutually-indistinguishable methods (interval
    // structure: a group is a maximal run [i..j] with rank(j) - rank(i) <= CD).
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < k {
        let mut j = i;
        while j + 1 < k && mr[order[j + 1]] - mr[order[i]] <= cd {
            j += 1;
        }
        if j > i && groups.last().is_none_or(|&(_, pj)| pj < j) {
            groups.push((i, j));
        }
        i += 1;
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Critical difference (Nemenyi, alpha=0.05, k={k}, N={n}): CD = {cd:.3}\n"
    ));
    for (rank_pos, &m) in order.iter().enumerate() {
        let mut letters = String::new();
        for (gi, &(lo, hi)) in groups.iter().enumerate() {
            if rank_pos >= lo && rank_pos <= hi {
                letters.push((b'a' + (gi % 26) as u8) as char);
            }
        }
        out.push_str(&format!(
            "  {:<14} mean rank {:>5.2}  {}\n",
            methods[m].name, mr[m], letters
        ));
    }
    out.push_str("  (methods sharing a letter are not significantly different)\n");
    out
}

/// Renders ASCII box plots of per-method score distributions (Figure 5
/// bottom): min, quartiles, median and max over a fixed-width [0, 1] axis.
pub fn box_plots(methods: &[MethodScores]) -> String {
    const WIDTH: usize = 50;
    let mut out = String::new();
    out.push_str(&format!("  {:<14} 0.0 {} 1.0\n", "", "-".repeat(WIDTH)));
    for m in methods {
        let s = summarize(&m.scores);
        let pos = |v: f64| ((v.clamp(0.0, 1.0)) * (WIDTH - 1) as f64).round() as usize;
        let mut row = vec![' '; WIDTH];
        for c in pos(s.q1)..=pos(s.q3) {
            row[c] = '=';
        }
        for c in pos(s.min)..=pos(s.max) {
            if row[c] == ' ' {
                row[c] = '-';
            }
        }
        row[pos(s.median)] = '|';
        let bar: String = row.into_iter().collect();
        out.push_str(&format!(
            "  {:<14}     {}  med={:.2}\n",
            m.name, bar, s.median
        ));
    }
    out
}

/// Renders a markdown table of summary statistics per method, matching the
/// layout of the paper's Table 3 (mean / median / std in percent).
pub fn summary_table(methods: &[MethodScores]) -> String {
    let mut rows: Vec<(String, f64, f64, f64)> = methods
        .iter()
        .map(|m| {
            let s = summarize(&m.scores);
            (
                m.name.clone(),
                s.mean * 100.0,
                s.median * 100.0,
                s.std * 100.0,
            )
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let mut out = String::new();
    out.push_str("| Method | mean (%) | median (%) | std (%) |\n");
    out.push_str("|---|---|---|---|\n");
    for (name, mean, median, std) in rows {
        out.push_str(&format!(
            "| {name} | {mean:.1} | {median:.1} | {std:.1} |\n"
        ));
    }
    out
}

/// Renders the wins/ties line of §4.3.
pub fn wins_line(methods: &[MethodScores]) -> String {
    let matrix: Vec<Vec<f64>> = methods.iter().map(|m| m.scores.clone()).collect();
    let wins = wins_and_ties(&matrix);
    let mut pairs: Vec<(String, usize)> = methods
        .iter()
        .zip(&wins)
        .map(|(m, &w)| (m.name.clone(), w))
        .collect();
    pairs.sort_by_key(|p| std::cmp::Reverse(p.1));
    let n = methods[0].scores.len();
    let body: Vec<String> = pairs.iter().map(|(n, w)| format!("{n} {w}")).collect();
    format!("wins/ties over {n} series: {}\n", body.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_methods() -> Vec<MethodScores> {
        // Method A dominates, B and C are similar.
        let a = MethodScores {
            name: "A".into(),
            scores: (0..40).map(|i| 0.8 + 0.004 * (i % 5) as f64).collect(),
        };
        let b = MethodScores {
            name: "B".into(),
            scores: (0..40).map(|i| 0.5 + 0.01 * (i % 7) as f64).collect(),
        };
        let c = MethodScores {
            name: "C".into(),
            scores: (0..40).map(|i| 0.5 + 0.01 * ((i + 3) % 7) as f64).collect(),
        };
        vec![a, b, c]
    }

    #[test]
    fn cd_diagram_orders_by_rank_and_groups_equals() {
        let out = cd_diagram(&fake_methods());
        let a_pos = out.find("A ").unwrap();
        let b_pos = out.find("B ").unwrap();
        assert!(a_pos < b_pos, "{out}");
        assert!(out.contains("CD ="), "{out}");
        // B and C share a group letter; A is alone.
        let lines: Vec<&str> = out.lines().filter(|l| l.contains("mean rank")).collect();
        let b_line = lines
            .iter()
            .find(|l| l.trim_start().starts_with('B'))
            .unwrap();
        let c_line = lines
            .iter()
            .find(|l| l.trim_start().starts_with('C'))
            .unwrap();
        assert!(
            b_line.trim_end().ends_with('a') && c_line.trim_end().ends_with('a'),
            "{out}"
        );
    }

    #[test]
    fn box_plot_contains_median_markers() {
        let out = box_plots(&fake_methods());
        assert_eq!(out.lines().count(), 4);
        assert!(out.contains("med=0.8"), "{out}");
    }

    #[test]
    fn summary_table_is_sorted_by_mean() {
        let out = summary_table(&fake_methods());
        let a_pos = out.find("| A |").unwrap();
        let b_pos = out.find("| B |").unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    fn wins_line_counts() {
        let out = wins_line(&fake_methods());
        assert!(out.starts_with("wins/ties over 40 series: A 40"), "{out}");
    }
}
