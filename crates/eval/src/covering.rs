//! The Covering segmentation quality measure (paper Eq. 6, following
//! van den Burg & Williams 2020).
//!
//! Covering reports the best-scoring weighted overlap (Jaccard index)
//! between ground-truth and predicted segmentations, in [0, 1], higher
//! better. Both segmentations are induced by change point lists plus the
//! implicit boundaries 0 and n.

/// A half-open segment `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Inclusive start.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
}

impl Segment {
    /// Segment length.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Jaccard index of two segments.
    pub fn jaccard(&self, other: &Segment) -> f64 {
        let inter_lo = self.start.max(other.start);
        let inter_hi = self.end.min(other.end);
        let inter = inter_hi.saturating_sub(inter_lo);
        if inter == 0 {
            return 0.0;
        }
        let union = self.len() + other.len() - inter;
        inter as f64 / union as f64
    }
}

/// Converts a sorted change point list into segments over `[0, n)`.
/// Change points outside `(0, n)` and duplicates are ignored.
pub fn segments_from_cps(cps: &[u64], n: u64) -> Vec<Segment> {
    let mut segs = Vec::with_capacity(cps.len() + 1);
    let mut prev = 0u64;
    for &cp in cps {
        if cp <= prev || cp >= n {
            continue;
        }
        segs.push(Segment {
            start: prev,
            end: cp,
        });
        prev = cp;
    }
    segs.push(Segment {
        start: prev,
        end: n,
    });
    segs
}

/// Covering score of a predicted segmentation against the ground truth
/// (paper Eq. 6). `n` is the series length. Returns 1.0 for the trivial
/// case of an empty series.
pub fn covering(gt_cps: &[u64], pred_cps: &[u64], n: u64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let gt = segments_from_cps(gt_cps, n);
    let pred = segments_from_cps(pred_cps, n);
    let mut acc = 0.0;
    for s in &gt {
        let best = pred.iter().map(|p| s.jaccard(p)).fold(0.0, f64::max);
        acc += s.len() as f64 * best;
    }
    acc / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let gt = vec![300, 700];
        assert!((covering(&gt, &gt, 1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_prediction_on_single_segment_scores_one() {
        assert!((covering(&[], &[], 1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_prediction_on_two_segments() {
        // gt: [0,500), [500,1000); pred: [0,1000).
        // Each gt segment overlaps the single pred segment with J = 0.5.
        let c = covering(&[500], &[], 1000);
        assert!((c - 0.5).abs() < 1e-12, "c = {c}");
    }

    #[test]
    fn slightly_shifted_prediction_scores_high() {
        let c = covering(&[500], &[520], 1000);
        assert!(c > 0.9, "c = {c}");
        let worse = covering(&[500], &[800], 1000);
        assert!(worse < c, "{worse} vs {c}");
    }

    #[test]
    fn over_segmentation_is_penalised() {
        let exact = covering(&[500], &[500], 1000);
        let over = covering(&[500], &[100, 200, 300, 400, 500, 600, 700, 800, 900], 1000);
        assert!(over < exact);
        assert!(over < 0.6, "over = {over}");
    }

    #[test]
    fn out_of_range_and_duplicate_cps_are_ignored() {
        let a = covering(&[500], &[500, 500, 0, 1000, 2000], 1000);
        let b = covering(&[500], &[500], 1000);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn covering_is_weighted_by_segment_length() {
        // A missed tiny segment hurts less than a missed huge one.
        let miss_small = covering(&[950], &[], 1000);
        let miss_large = covering(&[500], &[], 1000);
        assert!(miss_small > miss_large);
    }

    #[test]
    fn segments_from_cps_basics() {
        let segs = segments_from_cps(&[10, 20], 30);
        assert_eq!(
            segs,
            vec![
                Segment { start: 0, end: 10 },
                Segment { start: 10, end: 20 },
                Segment { start: 20, end: 30 }
            ]
        );
        assert_eq!(segs[0].len(), 10);
        assert!(!segs[0].is_empty());
    }

    #[test]
    fn jaccard_identity_and_disjoint() {
        let a = Segment { start: 0, end: 10 };
        let b = Segment { start: 10, end: 20 };
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.jaccard(&b), 0.0);
    }
}
