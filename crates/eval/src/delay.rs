//! Detection-delay measurement for early streaming segmentation.
//!
//! The paper's §4.5 closes with: "In future research, a benchmark study
//! should be conducted to quantitatively evaluate early segmentation."
//! This module implements that study's metrics: for every ground-truth
//! change point, the *detection delay* is the number of observations
//! between the change and the first report that localises it within a
//! tolerance; undetected changes count against the detection rate.

use class_core::StreamingSegmenter;

/// A change point report with the time it was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedReport {
    /// Stream position at which the report was emitted.
    pub emitted_at: u64,
    /// Reported change point position.
    pub cp: u64,
}

/// Runs a segmenter over a series recording *when* each change point was
/// reported (not just where).
pub fn run_timed(seg: &mut dyn StreamingSegmenter, xs: &[f64]) -> Vec<TimedReport> {
    let mut reports = Vec::new();
    let mut cps = Vec::new();
    for (t, &x) in xs.iter().enumerate() {
        let before = cps.len();
        seg.step(x, &mut cps);
        for &cp in &cps[before..] {
            reports.push(TimedReport {
                emitted_at: t as u64,
                cp,
            });
        }
    }
    let before = cps.len();
    seg.finalize(&mut cps);
    for &cp in &cps[before..] {
        reports.push(TimedReport {
            emitted_at: xs.len() as u64,
            cp,
        });
    }
    reports
}

/// Delay statistics of one run against the ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayStats {
    /// Per ground-truth change point: the delay (emission time minus true
    /// change time) of the first report within `tolerance`, or `None`.
    pub delays: Vec<Option<u64>>,
    /// Number of reports that did not localise any ground-truth change
    /// (false alarms under the tolerance).
    pub false_alarms: usize,
}

impl DelayStats {
    /// Fraction of ground-truth change points detected.
    pub fn detection_rate(&self) -> f64 {
        if self.delays.is_empty() {
            return 1.0;
        }
        self.delays.iter().filter(|d| d.is_some()).count() as f64 / self.delays.len() as f64
    }

    /// Mean delay over the detected change points (`None` if none).
    pub fn mean_delay(&self) -> Option<f64> {
        let hit: Vec<u64> = self.delays.iter().flatten().copied().collect();
        if hit.is_empty() {
            None
        } else {
            Some(hit.iter().sum::<u64>() as f64 / hit.len() as f64)
        }
    }
}

/// Matches timed reports against ground-truth change points: a report
/// detects the closest undetected true change within `tolerance` of its
/// *position*; its delay is `emitted_at - true_cp` (reports from before the
/// change — possible for profile-based methods re-localising — count as
/// delay 0).
pub fn delay_stats(gt_cps: &[u64], reports: &[TimedReport], tolerance: u64) -> DelayStats {
    let mut delays: Vec<Option<u64>> = vec![None; gt_cps.len()];
    let mut false_alarms = 0usize;
    for rep in reports {
        let mut best: Option<(usize, u64)> = None;
        for (i, &gt) in gt_cps.iter().enumerate() {
            let dist = rep.cp.abs_diff(gt);
            if dist <= tolerance && best.is_none_or(|(_, d)| dist < d) {
                best = Some((i, dist));
            }
        }
        match best {
            Some((i, _)) => {
                if delays[i].is_none() {
                    delays[i] = Some(rep.emitted_at.saturating_sub(gt_cps[i]));
                }
                // Re-reports of an already-detected change are not false
                // alarms (the stream keeps confirming the split).
            }
            None => false_alarms += 1,
        }
    }
    DelayStats {
        delays,
        false_alarms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_match_first_valid_report() {
        let gt = vec![1000, 2000];
        let reports = vec![
            TimedReport {
                emitted_at: 1100,
                cp: 980,
            }, // detects 1000, delay 100
            TimedReport {
                emitted_at: 1500,
                cp: 995,
            }, // re-report, ignored
            TimedReport {
                emitted_at: 2300,
                cp: 2040,
            }, // detects 2000, delay 300
            TimedReport {
                emitted_at: 2500,
                cp: 1500,
            }, // false alarm
        ];
        let stats = delay_stats(&gt, &reports, 50);
        assert_eq!(stats.delays, vec![Some(100), Some(300)]);
        assert_eq!(stats.false_alarms, 1);
        assert_eq!(stats.detection_rate(), 1.0);
        assert_eq!(stats.mean_delay(), Some(200.0));
    }

    #[test]
    fn undetected_changes_lower_the_rate() {
        let gt = vec![500, 1500, 2500];
        let reports = vec![TimedReport {
            emitted_at: 600,
            cp: 510,
        }];
        let stats = delay_stats(&gt, &reports, 50);
        assert_eq!(stats.detection_rate(), 1.0 / 3.0);
        assert_eq!(stats.mean_delay(), Some(100.0));
    }

    #[test]
    fn empty_ground_truth_is_perfect_until_false_alarms() {
        let stats = delay_stats(&[], &[], 100);
        assert_eq!(stats.detection_rate(), 1.0);
        assert_eq!(stats.mean_delay(), None);
        let stats = delay_stats(
            &[],
            &[TimedReport {
                emitted_at: 10,
                cp: 5,
            }],
            100,
        );
        assert_eq!(stats.false_alarms, 1);
    }

    #[test]
    fn report_before_change_counts_as_zero_delay() {
        // A method may localise a change slightly early (profile maximum a
        // little left of the truth) — the delay floor is zero.
        let gt = vec![1000];
        let reports = vec![TimedReport {
            emitted_at: 990,
            cp: 970,
        }];
        let stats = delay_stats(&gt, &reports, 50);
        assert_eq!(stats.delays, vec![Some(0)]);
    }

    #[test]
    fn run_timed_records_emission_times() {
        struct At(u64);
        impl StreamingSegmenter for At {
            fn step(&mut self, _x: f64, cps: &mut Vec<u64>) {
                self.0 += 1;
                if self.0 == 50 {
                    cps.push(30);
                }
            }
            fn name(&self) -> &'static str {
                "at"
            }
        }
        let xs = vec![0.0; 100];
        let mut seg = At(0);
        let reports = run_timed(&mut seg, &xs);
        assert_eq!(
            reports,
            vec![TimedReport {
                emitted_at: 49,
                cp: 30
            }]
        );
    }
}
