//! # eval — evaluation framework for the ClaSS reproduction
//!
//! Implements the paper's evaluation protocol (§4.1): the Covering metric
//! (Eq. 6), per-dataset rank aggregation with Friedman/Nemenyi
//! critical-difference analysis (Figure 5), summary statistics (Table 3),
//! a parallel experiment runner, and text renderers for every artefact.

#![warn(missing_docs)]

pub mod bundle;
pub mod covering;
pub mod delay;
pub mod ranks;
pub mod report;
pub mod runner;

pub use bundle::{
    compare, default_tolerance, git_describe, parse_json, CompareReport, Json, MetricDiff,
    RunBundle, BUNDLE_SCHEMA,
};
pub use covering::{covering, segments_from_cps, Segment};
pub use delay::{delay_stats, run_timed, DelayStats, TimedReport};
pub use ranks::{
    friedman_statistic, mean_ranks, nemenyi_cd, pairwise_wins, rank_matrix, summarize,
    wins_and_ties, Summary,
};
pub use report::{box_plots, cd_diagram, summary_table, wins_line, MethodScores};
pub use runner::{
    covering_matrix, run_matrix, run_matrix_mixed, run_one, AlgoSpec, MultivariateJob, RunResult,
};

/// Sliding window size used by the scaled-down experiment profile
/// (the paper's default is 10_000 on unscaled data; the laptop profile
/// scales both data and window by roughly the same factor, preserving the
/// "10-100 temporal patterns per window" guidance of §3.5).
pub const DEFAULT_WINDOW_SIZE: usize = 2_000;
