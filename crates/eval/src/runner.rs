//! Experiment runner: drives every algorithm over every series, measuring
//! Covering and runtime, in parallel across series (the experiments are
//! embarrassingly parallel; each algorithm instance itself is single-core,
//! matching the paper's single-core measurement protocol).

use crate::covering::covering;
use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter};
use competitors::{build, CompetitorKind, SeriesContext};
use datasets::AnnotatedSeries;
use std::time::{Duration, Instant};

/// Which algorithm to run, with the experiment-level knobs.
#[derive(Debug, Clone)]
pub enum AlgoSpec {
    /// ClaSS with a configuration template; `warmup` is set per series to
    /// `min(window_size, series length)` as in Algorithm 1.
    Class(ClassConfig),
    /// One of the eight baselines with the paper-tuned configuration and
    /// the sliding window size granted to the windowed methods (FLOSS).
    Baseline {
        /// Which baseline.
        kind: CompetitorKind,
        /// Sliding window size for windowed baselines.
        window_size: usize,
    },
}

impl AlgoSpec {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoSpec::Class(_) => "ClaSS",
            AlgoSpec::Baseline { kind, .. } => kind.name(),
        }
    }

    /// The paper's default line-up: ClaSS + all eight baselines, with a
    /// given sliding window size for the windowed methods.
    pub fn default_lineup(window_size: usize) -> Vec<AlgoSpec> {
        let mut algos = vec![AlgoSpec::Class(ClassConfig::with_window_size(window_size))];
        algos.extend(
            CompetitorKind::baselines().map(|kind| AlgoSpec::Baseline { kind, window_size }),
        );
        algos
    }

    /// Builds a fresh segmenter for one series.
    pub fn instantiate(&self, series: &AnnotatedSeries) -> Box<dyn StreamingSegmenter> {
        match self {
            AlgoSpec::Class(cfg) => {
                let mut cfg = cfg.clone();
                cfg.warmup = Some(cfg.window_size.min(series.len()));
                Box::new(ClassSegmenter::new(cfg))
            }
            AlgoSpec::Baseline { kind, window_size } => {
                let ctx = SeriesContext {
                    width: series.width,
                    window_size: *window_size,
                };
                build(*kind, ctx)
            }
        }
    }
}

/// Result of one (algorithm, series) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name.
    pub algo: &'static str,
    /// Series name (e.g. `tssb/004`).
    pub series: String,
    /// Archive name (Table 1 row).
    pub archive: &'static str,
    /// Covering score against the ground truth.
    pub covering: f64,
    /// Wall-clock runtime of the full stream pass.
    pub runtime: Duration,
    /// Number of processed observations.
    pub n_points: usize,
    /// Predicted change points.
    pub cps: Vec<u64>,
}

impl RunResult {
    /// Throughput in points per second.
    pub fn throughput(&self) -> f64 {
        self.n_points as f64 / self.runtime.as_secs_f64().max(1e-9)
    }
}

/// Runs one algorithm over one series.
pub fn run_one(spec: &AlgoSpec, series: &AnnotatedSeries) -> RunResult {
    let mut seg = spec.instantiate(series);
    let mut cps = Vec::new();
    let start = Instant::now();
    for &x in &series.values {
        seg.step(x, &mut cps);
    }
    seg.finalize(&mut cps);
    let runtime = start.elapsed();
    cps.sort_unstable();
    cps.dedup();
    let cov = covering(&series.change_points, &cps, series.len() as u64);
    RunResult {
        algo: spec.name(),
        series: series.name.clone(),
        archive: series.archive,
        covering: cov,
        runtime,
        n_points: series.len(),
        cps,
    }
}

/// Runs every algorithm over every series, parallelising across
/// (algorithm, series) pairs with scoped threads. Results are returned in
/// deterministic (algo-major, series-minor) order.
///
/// Scheduling is longest-series-first so the biggest jobs start earliest
/// and no long series straggles at the end of the matrix, and every worker
/// writes its result into an index-disjoint [`OnceLock`] slot — there is
/// no lock on the result path.
pub fn run_matrix(
    algos: &[AlgoSpec],
    series: &[AnnotatedSeries],
    threads: usize,
) -> Vec<RunResult> {
    use std::sync::OnceLock;

    let mut jobs: Vec<(usize, usize)> = (0..algos.len())
        .flat_map(|a| (0..series.len()).map(move |s| (a, s)))
        .collect();
    // Longest-first; the sort is stable, so ties keep the deterministic
    // (algo-major, series-minor) order.
    jobs.sort_by_key(|&(_, s)| std::cmp::Reverse(series[s].len()));
    let threads = threads.max(1).min(jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<OnceLock<RunResult>> = (0..jobs.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (a, s) = jobs[i];
                let r = run_one(&algos[a], &series[s]);
                // Each (a, s) pair occurs exactly once, so the set never
                // collides; the drop of a duplicate would be a scheduler
                // bug caught by the expect below.
                let _ = slots[a * series.len() + s].set(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|c| c.into_inner().expect("job completed"))
        .collect()
}

/// Extracts the per-series Covering score matrix `scores[algo][series]`
/// from run results laid out by [`run_matrix`].
pub fn covering_matrix(results: &[RunResult], n_algos: usize, n_series: usize) -> Vec<Vec<f64>> {
    assert_eq!(results.len(), n_algos * n_series);
    (0..n_algos)
        .map(|a| {
            (0..n_series)
                .map(|s| results[a * n_series + s].covering)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{build_series, NoiseSpec, Regime};

    fn small_series() -> AnnotatedSeries {
        build_series(
            "test/0".into(),
            "test",
            &[
                (
                    Regime::Sine {
                        period: 25.0,
                        amp: 1.0,
                        phase: 0.0,
                    },
                    1500,
                ),
                (
                    Regime::Square {
                        period: 40.0,
                        amp: 1.0,
                    },
                    1500,
                ),
            ],
            NoiseSpec::benchmark(),
            3,
        )
    }

    #[test]
    fn run_one_produces_sane_result() {
        let series = small_series();
        let mut cfg = ClassConfig::with_window_size(1000);
        cfg.log10_alpha = -15.0;
        let r = run_one(&AlgoSpec::Class(cfg), &series);
        assert_eq!(r.algo, "ClaSS");
        assert_eq!(r.n_points, 3000);
        assert!((0.0..=1.0).contains(&r.covering));
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn class_beats_trivial_segmentation_on_clear_change() {
        let series = small_series();
        let mut cfg = ClassConfig::with_window_size(1000);
        cfg.log10_alpha = -15.0;
        let r = run_one(&AlgoSpec::Class(cfg), &series);
        // Trivial (no CP) covering would be 0.5.
        assert!(r.covering > 0.6, "covering = {}", r.covering);
    }

    #[test]
    fn run_matrix_is_deterministic_and_ordered() {
        let series = vec![small_series()];
        let algos = vec![
            AlgoSpec::Baseline {
                kind: CompetitorKind::Ddm,
                window_size: 1000,
            },
            AlgoSpec::Baseline {
                kind: CompetitorKind::Adwin,
                window_size: 1000,
            },
        ];
        let a = run_matrix(&algos, &series, 4);
        let b = run_matrix(&algos, &series, 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].algo, "DDM");
        assert_eq!(a[1].algo, "ADWIN");
        assert_eq!(a[0].cps, b[0].cps);
        assert_eq!(a[1].cps, b[1].cps);
    }

    #[test]
    fn run_matrix_mixed_lengths_and_excess_threads() {
        // Different series lengths exercise the longest-first schedule;
        // more threads than jobs must still fill every result slot, in
        // deterministic (algo-major, series-minor) order.
        let long = small_series();
        let short = build_series(
            "test/1".into(),
            "test",
            &[(
                Regime::Sine {
                    period: 30.0,
                    amp: 1.0,
                    phase: 0.0,
                },
                500,
            )],
            NoiseSpec::benchmark(),
            4,
        );
        let series = vec![long, short];
        let algos = vec![
            AlgoSpec::Baseline {
                kind: CompetitorKind::Ddm,
                window_size: 1000,
            },
            AlgoSpec::Baseline {
                kind: CompetitorKind::Adwin,
                window_size: 1000,
            },
        ];
        let got = run_matrix(&algos, &series, 64);
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|r| r.series.clone()).collect::<Vec<_>>(),
            vec!["test/0", "test/1", "test/0", "test/1"]
        );
        assert_eq!(got[0].algo, "DDM");
        assert_eq!(got[2].algo, "ADWIN");
        let serial = run_matrix(&algos, &series, 1);
        for (a, b) in got.iter().zip(&serial) {
            assert_eq!(a.cps, b.cps);
        }
    }

    #[test]
    fn covering_matrix_layout() {
        let series = vec![small_series(), small_series()];
        let algos = vec![AlgoSpec::Baseline {
            kind: CompetitorKind::Ddm,
            window_size: 1000,
        }];
        let results = run_matrix(&algos, &series, 2);
        let m = covering_matrix(&results, 1, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].len(), 2);
    }
}
