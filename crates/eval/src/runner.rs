//! Experiment runner: drives every algorithm over every series, measuring
//! Covering and runtime, in parallel across series (the experiments are
//! embarrassingly parallel; each algorithm instance itself is single-core,
//! matching the paper's single-core measurement protocol).

use crate::covering::covering;
use class_core::{ClassConfig, ClassSegmenter, MultivariateConfig, StreamingSegmenter};
use competitors::{build, CompetitorKind, SeriesContext};
use datasets::{AnnotatedSeries, MultivariateSeries};
use std::time::{Duration, Instant};

/// Which algorithm to run, with the experiment-level knobs.
#[derive(Debug, Clone)]
pub enum AlgoSpec {
    /// ClaSS with a configuration template; `warmup` is set per series to
    /// `min(window_size, series length)` as in Algorithm 1.
    Class(ClassConfig),
    /// One of the eight baselines with the paper-tuned configuration and
    /// the sliding window size granted to the windowed methods (FLOSS).
    Baseline {
        /// Which baseline.
        kind: CompetitorKind,
        /// Sliding window size for windowed baselines.
        window_size: usize,
    },
}

impl AlgoSpec {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoSpec::Class(_) => "ClaSS",
            AlgoSpec::Baseline { kind, .. } => kind.name(),
        }
    }

    /// The paper's default line-up: ClaSS + all eight baselines, with a
    /// given sliding window size for the windowed methods.
    pub fn default_lineup(window_size: usize) -> Vec<AlgoSpec> {
        let mut algos = vec![AlgoSpec::Class(ClassConfig::with_window_size(window_size))];
        algos.extend(
            CompetitorKind::baselines().map(|kind| AlgoSpec::Baseline { kind, window_size }),
        );
        algos
    }

    /// Builds a fresh segmenter for one series.
    pub fn instantiate(&self, series: &AnnotatedSeries) -> Box<dyn StreamingSegmenter> {
        match self {
            AlgoSpec::Class(cfg) => {
                let mut cfg = cfg.clone();
                cfg.warmup = Some(cfg.window_size.min(series.len()));
                Box::new(ClassSegmenter::new(cfg))
            }
            AlgoSpec::Baseline { kind, window_size } => {
                let ctx = SeriesContext {
                    width: series.width,
                    window_size: *window_size,
                };
                build(*kind, ctx)
            }
        }
    }
}

/// Result of one (algorithm, series) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Algorithm name.
    pub algo: &'static str,
    /// Series name (e.g. `tssb/004`).
    pub series: String,
    /// Archive name (Table 1 row).
    pub archive: &'static str,
    /// Covering score against the ground truth.
    pub covering: f64,
    /// Wall-clock runtime of the full stream pass.
    pub runtime: Duration,
    /// Number of processed observations.
    pub n_points: usize,
    /// Predicted change points.
    pub cps: Vec<u64>,
}

impl RunResult {
    /// Throughput in points per second.
    pub fn throughput(&self) -> f64 {
        self.n_points as f64 / self.runtime.as_secs_f64().max(1e-9)
    }
}

/// Runs one algorithm over one series.
pub fn run_one(spec: &AlgoSpec, series: &AnnotatedSeries) -> RunResult {
    let mut seg = spec.instantiate(series);
    let mut cps = Vec::new();
    let start = Instant::now();
    for &x in &series.values {
        seg.step(x, &mut cps);
    }
    seg.finalize(&mut cps);
    let runtime = start.elapsed();
    cps.sort_unstable();
    cps.dedup();
    let cov = covering(&series.change_points, &cps, series.len() as u64);
    RunResult {
        algo: spec.name(),
        series: series.name.clone(),
        archive: series.archive,
        covering: cov,
        runtime,
        n_points: series.len(),
        cps,
    }
}

/// One multivariate job for the matrix runner: a fused multi-channel
/// segmenter (paper §6 sensor fusion) over one [`MultivariateSeries`],
/// served as a single engine stream carrying the channels interleaved.
#[derive(Debug, Clone)]
pub struct MultivariateJob {
    /// Fused segmenter configuration (fusion strategy, channel
    /// selection, per-channel base config).
    pub cfg: MultivariateConfig,
    /// The multi-channel series with its shared annotations.
    pub series: MultivariateSeries,
}

impl MultivariateJob {
    /// A quorum-fusion job with the default multivariate configuration
    /// derived from a univariate base config.
    pub fn quorum(base: ClassConfig, series: MultivariateSeries) -> Self {
        Self {
            cfg: MultivariateConfig::new(base, series.n_channels()),
            series,
        }
    }
}

/// A job in the mixed matrix: either one (algorithm, series) univariate
/// pair or one multivariate fused stream.
#[derive(Debug, Clone, Copy)]
enum JobRef {
    Uni(usize, usize),
    Multi(usize),
}

/// Runs every algorithm over every univariate series on the multi-stream
/// serving engine. Equivalent to [`run_matrix_mixed`] with no
/// multivariate jobs; results are in deterministic (algo-major,
/// series-minor) order.
pub fn run_matrix(
    algos: &[AlgoSpec],
    series: &[AnnotatedSeries],
    threads: usize,
) -> Vec<RunResult> {
    run_matrix_mixed(algos, series, &[], threads).0
}

/// Runs a mixed experiment matrix on the multi-stream serving engine:
/// every (algorithm, univariate series) pair plus every multivariate job
/// is registered as an independent stream, sharded over `threads` engine
/// workers and fed through bounded ring buffers with the lossless
/// `Block` policy. Returns `(univariate results in (algo-major,
/// series-minor) order, multivariate results in job order)`.
///
/// Jobs are bin-packed onto shards greedily by **record weight** —
/// points for a univariate job, points x channels for a multivariate one
/// (its interleaved stream pushes one record per channel per time step)
/// — heaviest first, so a 6-channel PAMAP stream counts six times a
/// univariate series of the same length and no shard straggles. The
/// packing depends only on the job list and is fully deterministic. At
/// most `4 * threads` jobs are *live* (registered, operator built, ring
/// allocated) at any moment — a paper-scale matrix is thousands of jobs,
/// and each live ClaSS operator holds O(window) state per channel, so
/// the feeder opens jobs as earlier ones complete instead of
/// materializing all of them up front. `runtime` is operator-busy time
/// measured per drained batch (`stream_engine::Timing::Batch`), which
/// matches the paper's single-core measurement protocol even though
/// shards interleave many streams — and keeps per-record clock reads out
/// of baselines whose step is cheaper than a clock read.
pub fn run_matrix_mixed(
    algos: &[AlgoSpec],
    series: &[AnnotatedSeries],
    mv_jobs: &[MultivariateJob],
    threads: usize,
) -> (Vec<RunResult>, Vec<RunResult>) {
    use class_core::MultivariateClass;
    use stream_engine::{
        serve, Backpressure, EngineConfig, MultivariateSegmenterOperator, Operator, Record,
        RingConfig, SegmenterOperator, StreamHandle, StreamOptions, Timing,
    };

    /// The engine serves one operator type per run; a mixed matrix wraps
    /// both kinds behind one dispatching operator.
    enum MatrixOperator {
        Uni(SegmenterOperator<Box<dyn StreamingSegmenter>>),
        Multi(Box<MultivariateSegmenterOperator>),
    }

    impl Operator for MatrixOperator {
        type In = f64;
        type Out = u64;

        fn process(&mut self, rec: Record<f64>, out: &mut Vec<Record<u64>>) {
            match self {
                MatrixOperator::Uni(op) => op.process(rec, out),
                MatrixOperator::Multi(op) => op.process(rec, out),
            }
        }

        fn flush(&mut self, out: &mut Vec<Record<u64>>) {
            match self {
                MatrixOperator::Uni(op) => op.flush(out),
                MatrixOperator::Multi(op) => op.flush(out),
            }
        }

        fn name(&self) -> &'static str {
            "matrix"
        }
    }

    let mut jobs: Vec<JobRef> = (0..algos.len())
        .flat_map(|a| (0..series.len()).map(move |s| JobRef::Uni(a, s)))
        .chain((0..mv_jobs.len()).map(JobRef::Multi))
        .collect();
    if jobs.is_empty() {
        return (Vec::new(), Vec::new());
    }
    // Interleaved record stream for one multivariate job (the engine's
    // shared frame-major transport layout) — built only when the job
    // goes live and dropped when it closes, so the bounded-live-jobs
    // design holds for the duplicated multivariate data too (a
    // paper-scale matrix never materializes a second copy of every
    // recording at once).
    let interleave =
        |m: usize| -> Vec<f64> { stream_engine::interleave_channels(&mv_jobs[m].series.channels) };
    // Record weight: how many records the job pushes through its ring.
    let weight = |job: &JobRef| -> u64 {
        match *job {
            JobRef::Uni(_, s) => series[s].len() as u64,
            JobRef::Multi(m) => (mv_jobs[m].series.len() * mv_jobs[m].series.n_channels()) as u64,
        }
    };
    // Heaviest-first; the sort is stable, so ties keep the deterministic
    // (uni algo-major, then multivariate job-order) layout.
    jobs.sort_by_key(|j| std::cmp::Reverse(weight(j)));
    let threads = threads.max(1).min(jobs.len());
    // Greedy balance: each job (heaviest first) goes to the least-loaded
    // shard by total records, ties to the lowest shard index.
    let mut load = vec![0u64; threads];
    let shard_of: Vec<usize> = jobs
        .iter()
        .map(|j| {
            let shard = (0..threads)
                .min_by_key(|&k| (load[k], k))
                .expect(">=1 shard");
            load[shard] += weight(j);
            shard
        })
        .collect();

    let config = EngineConfig {
        shards: threads,
        ring: RingConfig::new(512, Backpressure::Block),
    };
    // The greedy packing spreads the heaviest-first prefix across shards
    // (the first `threads` jobs land on distinct shards), so a live
    // window of 4x threads keeps every shard busy.
    let max_live = 4 * threads;
    let (results, stream_jobs) = serve(config, |engine| {
        // Stream id -> index into `jobs`, in registration order.
        let mut stream_jobs: Vec<usize> = Vec::with_capacity(jobs.len());
        // (job index, handle, feed cursor, interleaved buffer for
        // multivariate jobs) of each live job.
        let mut live: Vec<(usize, StreamHandle, usize, Option<Vec<f64>>)> = Vec::new();
        let mut next = 0usize;
        loop {
            while live.len() < max_live && next < jobs.len() {
                let job = jobs[next];
                let handle = engine.register_with(
                    StreamOptions {
                        ring: config.ring,
                        timing: Timing::Batch,
                        shard: Some(shard_of[next]),
                        ..StreamOptions::default()
                    },
                    move || match job {
                        JobRef::Uni(a, s) => MatrixOperator::Uni(SegmenterOperator::new(
                            algos[a].instantiate(&series[s]),
                        )),
                        JobRef::Multi(m) => {
                            let j = &mv_jobs[m];
                            MatrixOperator::Multi(Box::new(MultivariateSegmenterOperator::new(
                                MultivariateClass::new(j.cfg.clone(), j.series.n_channels()),
                            )))
                        }
                    },
                );
                stream_jobs.push(next);
                let mv_data = match job {
                    JobRef::Multi(m) => Some(interleave(m)),
                    JobRef::Uni(..) => None,
                };
                live.push((next, handle, 0, mv_data));
                next += 1;
            }
            if live.is_empty() {
                break;
            }
            let mut progressed = false;
            let mut i = 0;
            while i < live.len() {
                let (job, handle, cursor, mv_data) = &mut live[i];
                let xs: &[f64] = match (&jobs[*job], mv_data.as_deref()) {
                    (JobRef::Uni(_, s), _) => &series[*s].values,
                    (JobRef::Multi(_), Some(buf)) => buf,
                    (JobRef::Multi(_), None) => unreachable!("multi job registered with buffer"),
                };
                if *cursor >= xs.len() {
                    // Close the handle: the shard flushes the operator
                    // and a registration slot frees up.
                    live.swap_remove(i);
                    progressed = true;
                    continue;
                }
                let n = handle
                    .try_feed(&xs[*cursor..])
                    .expect("shard workers outlive the feed loop: consumers are only dropped at engine join()");
                if n > 0 {
                    *cursor += n;
                    progressed = true;
                }
                i += 1;
            }
            if !progressed {
                // Every live ring is full: the shards own the pace.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        stream_jobs
    });

    // Stream ids follow registration order; scatter back to the
    // deterministic layouts through the stream -> job mapping.
    let mut out: Vec<Option<RunResult>> = (0..algos.len() * series.len()).map(|_| None).collect();
    let mut out_mv: Vec<Option<RunResult>> = (0..mv_jobs.len()).map(|_| None).collect();
    for r in results {
        let mut cps: Vec<u64> = r.output.iter().map(|rec| rec.value).collect();
        cps.sort_unstable();
        cps.dedup();
        match jobs[stream_jobs[r.stream]] {
            JobRef::Uni(a, s) => {
                let ser = &series[s];
                let cov = covering(&ser.change_points, &cps, ser.len() as u64);
                out[a * series.len() + s] = Some(RunResult {
                    algo: algos[a].name(),
                    series: ser.name.clone(),
                    archive: ser.archive,
                    covering: cov,
                    runtime: r.busy,
                    n_points: ser.len(),
                    cps,
                });
            }
            JobRef::Multi(m) => {
                let ser = &mv_jobs[m].series;
                let cov = covering(&ser.change_points, &cps, ser.len() as u64);
                out_mv[m] = Some(RunResult {
                    algo: "MultivariateClaSS",
                    series: ser.name.clone(),
                    archive: ser.archive,
                    covering: cov,
                    runtime: r.busy,
                    n_points: ser.len(),
                    cps,
                });
            }
        }
    }
    (
        out.into_iter()
            .map(|r| r.expect("every job served"))
            .collect(),
        out_mv
            .into_iter()
            .map(|r| r.expect("every multivariate job served"))
            .collect(),
    )
}

/// Extracts the per-series Covering score matrix `scores[algo][series]`
/// from run results laid out by [`run_matrix`].
pub fn covering_matrix(results: &[RunResult], n_algos: usize, n_series: usize) -> Vec<Vec<f64>> {
    assert_eq!(results.len(), n_algos * n_series);
    (0..n_algos)
        .map(|a| {
            (0..n_series)
                .map(|s| results[a * n_series + s].covering)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{build_series, NoiseSpec, Regime};

    fn small_series() -> AnnotatedSeries {
        build_series(
            "test/0".into(),
            "test",
            &[
                (
                    Regime::Sine {
                        period: 25.0,
                        amp: 1.0,
                        phase: 0.0,
                    },
                    1500,
                ),
                (
                    Regime::Square {
                        period: 40.0,
                        amp: 1.0,
                    },
                    1500,
                ),
            ],
            NoiseSpec::benchmark(),
            3,
        )
    }

    #[test]
    fn run_one_produces_sane_result() {
        let series = small_series();
        let mut cfg = ClassConfig::with_window_size(1000);
        cfg.log10_alpha = -15.0;
        let r = run_one(&AlgoSpec::Class(cfg), &series);
        assert_eq!(r.algo, "ClaSS");
        assert_eq!(r.n_points, 3000);
        assert!((0.0..=1.0).contains(&r.covering));
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn class_beats_trivial_segmentation_on_clear_change() {
        let series = small_series();
        let mut cfg = ClassConfig::with_window_size(1000);
        cfg.log10_alpha = -15.0;
        let r = run_one(&AlgoSpec::Class(cfg), &series);
        // Trivial (no CP) covering would be 0.5.
        assert!(r.covering > 0.6, "covering = {}", r.covering);
    }

    #[test]
    fn run_matrix_is_deterministic_and_ordered() {
        let series = vec![small_series()];
        let algos = vec![
            AlgoSpec::Baseline {
                kind: CompetitorKind::Ddm,
                window_size: 1000,
            },
            AlgoSpec::Baseline {
                kind: CompetitorKind::Adwin,
                window_size: 1000,
            },
        ];
        let a = run_matrix(&algos, &series, 4);
        let b = run_matrix(&algos, &series, 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].algo, "DDM");
        assert_eq!(a[1].algo, "ADWIN");
        assert_eq!(a[0].cps, b[0].cps);
        assert_eq!(a[1].cps, b[1].cps);
    }

    #[test]
    fn run_matrix_mixed_lengths_and_excess_threads() {
        // Different series lengths exercise the longest-first schedule;
        // more threads than jobs must still fill every result slot, in
        // deterministic (algo-major, series-minor) order.
        let long = small_series();
        let short = build_series(
            "test/1".into(),
            "test",
            &[(
                Regime::Sine {
                    period: 30.0,
                    amp: 1.0,
                    phase: 0.0,
                },
                500,
            )],
            NoiseSpec::benchmark(),
            4,
        );
        let series = vec![long, short];
        let algos = vec![
            AlgoSpec::Baseline {
                kind: CompetitorKind::Ddm,
                window_size: 1000,
            },
            AlgoSpec::Baseline {
                kind: CompetitorKind::Adwin,
                window_size: 1000,
            },
        ];
        let got = run_matrix(&algos, &series, 64);
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|r| r.series.clone()).collect::<Vec<_>>(),
            vec!["test/0", "test/1", "test/0", "test/1"]
        );
        assert_eq!(got[0].algo, "DDM");
        assert_eq!(got[2].algo, "ADWIN");
        let serial = run_matrix(&algos, &series, 1);
        for (a, b) in got.iter().zip(&serial) {
            assert_eq!(a.cps, b.cps);
        }
    }

    #[test]
    fn run_matrix_mixed_serves_multivariate_jobs() {
        use datasets::{generate_multivariate, MultivariateSpec};
        let spec = MultivariateSpec {
            n_channels: 3,
            n_informative: 2,
            len: 6_000,
            n_segments: 2,
            noise: 0.05,
            seed: 13,
        };
        let mv = generate_multivariate(&spec);
        let true_cps = mv.change_points.clone();
        let mut base = ClassConfig::with_window_size(1500);
        base.width = class_core::WidthSelection::Fixed(mv.width.clamp(10, 60));
        base.log10_alpha = -12.0;
        let jobs = vec![MultivariateJob::quorum(base.clone(), mv)];
        let algos = vec![AlgoSpec::Baseline {
            kind: CompetitorKind::Ddm,
            window_size: 1000,
        }];
        let series = vec![small_series()];
        let (uni, multi) = run_matrix_mixed(&algos, &series, &jobs, 4);
        assert_eq!(uni.len(), 1);
        assert_eq!(multi.len(), 1);
        let r = &multi[0];
        assert_eq!(r.algo, "MultivariateClaSS");
        assert_eq!(r.n_points, 6_000, "n_points counts frames, not records");
        assert!((0.0..=1.0).contains(&r.covering));
        assert!(
            r.cps
                .iter()
                .any(|&c| true_cps.iter().any(|&t| c.abs_diff(t) < 800)),
            "no fused cp near the truth: {:?} vs {true_cps:?}",
            r.cps
        );
        // Deterministic across thread counts, like the univariate path.
        let (_, again) = run_matrix_mixed(&algos, &series, &jobs, 1);
        assert_eq!(r.cps, again[0].cps);
    }

    #[test]
    fn covering_matrix_layout() {
        let series = vec![small_series(), small_series()];
        let algos = vec![AlgoSpec::Baseline {
            kind: CompetitorKind::Ddm,
            window_size: 1000,
        }];
        let results = run_matrix(&algos, &series, 2);
        let m = covering_matrix(&results, 1, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].len(), 2);
    }
}
