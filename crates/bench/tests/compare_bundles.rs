//! Differential tests for the `compare_bundles` binary: identical
//! bundles compare clean (exit 0), a perturbed metric beyond tolerance
//! exits 1 naming the metric, and schema-version mismatches error
//! loudly (exit 2) instead of comparing garbage.

use eval::bundle::RunBundle;
use std::path::PathBuf;
use std::process::Command;

fn sample_bundle() -> RunBundle {
    let mut b = RunBundle::new("serve-soak").with_seed(20260809);
    b.config("preset", "quick");
    b.config("shards", 4);
    b.metric("records", 144_000.0);
    b.metric("quarantined", 7.0);
    b.metric("records_per_sec", 250_000.0);
    b
}

fn temp_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("compare_bundles_{}_{name}", std::process::id()))
}

fn run(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_compare_bundles"))
        .args(args)
        .output()
        .expect("spawning compare_bundles");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn identical_bundles_compare_clean() {
    let a = temp_file("clean_a.json");
    let b = temp_file("clean_b.json");
    sample_bundle().write(&a).unwrap();
    sample_bundle().write(&b).unwrap();
    let (stdout, stderr, code) = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("OK"), "{stdout}");
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn perturbed_metric_beyond_tolerance_exits_one_naming_it() {
    let a = temp_file("perturb_a.json");
    let b = temp_file("perturb_b.json");
    sample_bundle().write(&a).unwrap();
    let mut perturbed = sample_bundle();
    perturbed.metrics[0].1 *= 1.10; // records +10% > 5% default tolerance
    perturbed.write(&b).unwrap();
    let (stdout, stderr, code) = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 1, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stderr.contains("records"),
        "violation names the metric: {stderr}"
    );
    assert!(stdout.contains("VIOLATION"), "{stdout}");

    // The same pair passes once the tolerance is widened for that metric.
    let (_, _, code) = run(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--tolerance",
        "records=0.2",
    ]);
    assert_eq!(code, 0);
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn within_tolerance_perturbation_is_clean() {
    let a = temp_file("small_a.json");
    let b = temp_file("small_b.json");
    sample_bundle().write(&a).unwrap();
    let mut nudged = sample_bundle();
    nudged.metrics[0].1 *= 1.01; // +1% < 5%
    nudged.metrics[2].1 *= 1.40; // rate metric, loose 75% tolerance
    nudged.write(&b).unwrap();
    let (stdout, stderr, code) = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn schema_version_mismatch_errors_loudly() {
    let a = temp_file("schema_a.json");
    let b = temp_file("schema_b.json");
    sample_bundle().write(&a).unwrap();
    let doc = sample_bundle()
        .render_json()
        .replace("class-run-bundle/v1", "class-run-bundle/v2");
    std::fs::write(&b, doc).unwrap();
    let (stdout, stderr, code) = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 2, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stderr.contains("schema"), "{stderr}");
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn non_bundle_document_errors_loudly() {
    let a = temp_file("garbage_a.json");
    std::fs::write(&a, "{\"schema\": \"class-serve-soak/v1\", \"records\": 1}").unwrap();
    let b = temp_file("garbage_b.json");
    sample_bundle().write(&b).unwrap();
    let (_, stderr, code) = run(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("not a run bundle"), "{stderr}");
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn usage_and_missing_file_exit_two() {
    let (_, _, code) = run(&["only-one.json"]);
    assert_eq!(code, 2);
    let (_, stderr, code) = run(&["/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("a.json"), "{stderr}");
}
