//! Criterion micro-benchmarks validating the paper's two technical
//! contributions (§4.4 runtime decomposition):
//!
//! * the exact streaming k-NN (O(d) per update) vs. recomputing dot
//!   products (O(d·w)) vs. naive distances (the paper's 36 h / 212 h /
//!   2513 h decomposition), and
//! * the incremental O(d) cross-validation vs. the original O(d^2)
//!   per-update evaluation.

use bench::naive::{naive_full_profile, naive_knn_newest, recomputed_dot_knn_newest};
use class_core::crossval::{CrossVal, ScoreFn};
use class_core::knn::{KnnConfig, StreamingKnn};
use class_core::stats::SplitMix64;
use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter, WidthSelection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn filled_knn(d: usize, w: usize) -> (StreamingKnn, SplitMix64) {
    let mut rng = SplitMix64::new(42);
    let mut knn = StreamingKnn::new(KnnConfig::new(d, w, 3));
    for _ in 0..2 * d {
        knn.update(rng.next_f64() * 2.0 - 1.0);
    }
    (knn, rng)
}

fn bench_knn_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_update");
    group.sample_size(20);
    for &d in &[1000usize, 2000, 4000] {
        let w = 50;
        group.bench_with_input(BenchmarkId::new("streaming", d), &d, |b, _| {
            let (mut knn, mut rng) = filled_knn(d, w);
            b.iter(|| {
                knn.update(black_box(rng.next_f64() * 2.0 - 1.0));
            });
        });
        group.bench_with_input(BenchmarkId::new("recomputed_dots", d), &d, |b, _| {
            let (mut knn, mut rng) = filled_knn(d, w);
            b.iter(|| {
                knn.update(rng.next_f64() * 2.0 - 1.0);
                black_box(recomputed_dot_knn_newest(&knn, 3));
            });
        });
        group.bench_with_input(BenchmarkId::new("naive_distances", d), &d, |b, _| {
            let (mut knn, mut rng) = filled_knn(d, w);
            b.iter(|| {
                knn.update(rng.next_f64() * 2.0 - 1.0);
                black_box(naive_knn_newest(&knn, 3));
            });
        });
    }
    group.finish();
}

fn bench_crossval(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossval");
    group.sample_size(20);
    for &d in &[1000usize, 2000, 4000] {
        let w = 50;
        let (knn, _) = filled_knn(d, w);
        group.bench_with_input(BenchmarkId::new("incremental", d), &d, |b, _| {
            let mut cv = CrossVal::new(ScoreFn::MacroF1);
            b.iter(|| {
                black_box(cv.compute(&knn, knn.qstart()));
            });
        });
        // The naive O(d^2) variant is far too slow at large d for equal
        // sample counts; criterion handles this, it is just slow — keep the
        // smallest size only.
        if d == 1000 {
            group.bench_with_input(BenchmarkId::new("naive_quadratic", d), &d, |b, _| {
                b.iter(|| {
                    black_box(naive_full_profile(&knn, knn.qstart(), ScoreFn::MacroF1));
                });
            });
        }
    }
    group.finish();
}

fn bench_class_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("class_step");
    group.sample_size(20);
    for &d in &[1000usize, 2000] {
        group.bench_with_input(BenchmarkId::new("end_to_end", d), &d, |b, _| {
            let mut cfg = ClassConfig::with_window_size(d);
            cfg.width = WidthSelection::Fixed(50);
            let mut class = ClassSegmenter::new(cfg);
            let mut rng = SplitMix64::new(7);
            let mut cps = Vec::new();
            for i in 0..2 * d {
                class.step((i as f64 * 0.2).sin() + 0.05 * rng.next_f64(), &mut cps);
            }
            b.iter(|| {
                class.step(black_box(rng.next_f64()), &mut cps);
                cps.clear();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn_update, bench_crossval, bench_class_step);
criterion_main!(benches);
