//! Per-update cost of every algorithm in the comparison — the measured
//! counterpart of Table 2's complexity column (and the ordering behind
//! Figure 6's runtime axis).

use class_core::stats::SplitMix64;
use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter, WidthSelection};
use competitors::{build, CompetitorKind, SeriesContext};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn warmed(kind: CompetitorKind, window: usize) -> Box<dyn StreamingSegmenter> {
    let ctx = SeriesContext {
        width: 40,
        window_size: window,
    };
    let mut seg = build(kind, ctx);
    let mut rng = SplitMix64::new(11);
    let mut cps = Vec::new();
    for i in 0..2 * window {
        seg.step((i as f64 * 0.15).sin() + 0.05 * rng.next_f64(), &mut cps);
    }
    seg
}

fn bench_steps(c: &mut Criterion) {
    let window = 2000;
    let mut group = c.benchmark_group("step");
    group.sample_size(20);
    // ClaSS.
    group.bench_function("ClaSS", |b| {
        let mut cfg = ClassConfig::with_window_size(window);
        cfg.width = WidthSelection::Fixed(40);
        let mut class = ClassSegmenter::new(cfg);
        let mut rng = SplitMix64::new(3);
        let mut cps = Vec::new();
        for i in 0..2 * window {
            class.step((i as f64 * 0.15).sin() + 0.05 * rng.next_f64(), &mut cps);
        }
        b.iter(|| {
            class.step(black_box(rng.next_f64()), &mut cps);
            cps.clear();
        });
    });
    // Every baseline.
    for kind in CompetitorKind::baselines() {
        group.bench_function(kind.name(), |b| {
            let mut seg = warmed(kind, window);
            let mut rng = SplitMix64::new(5);
            let mut cps = Vec::new();
            b.iter(|| {
                seg.step(black_box(rng.next_f64()), &mut cps);
                cps.clear();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
