//! Perf-trajectory measurement: a fixed, pinned workload over the three
//! streaming hot paths, emitting machine-readable `BENCH_perf.json` so
//! every PR's numbers are comparable to its predecessors (see
//! EXPERIMENTS.md, §4.4 runtime decomposition).
//!
//! The measurement protocol is deliberately simple and robust: per kernel,
//! a short warm-up, then a fixed number of timed batches; the reported
//! statistic is the **median** ns/op across batches (insensitive to the
//! occasional scheduler hiccup, unlike the mean).

use std::time::Instant;

/// One measured kernel data point.
#[derive(Debug, Clone)]
pub struct KernelStat {
    /// Kernel identifier (`knn_update`, `crossval_profile`, `class_step`).
    pub name: &'static str,
    /// Sliding window size `d` of the workload.
    pub d: usize,
    /// Median nanoseconds per operation across batches.
    pub median_ns: f64,
    /// Best (minimum) batch mean, ns per operation.
    pub best_ns: f64,
    /// Total timed operations.
    pub ops: u64,
}

/// Times `ops_per_batch` invocations of `f` per batch over `batches`
/// timed batches (plus one untimed warm-up batch) and returns
/// `(median ns/op, best ns/op, total ops)`.
pub fn measure_batches(batches: usize, ops_per_batch: u64, mut f: impl FnMut()) -> (f64, f64, u64) {
    assert!(batches >= 1 && ops_per_batch >= 1);
    for _ in 0..ops_per_batch {
        f(); // warm-up: caches, branch predictors, lazy state
    }
    let mut per_op: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..ops_per_batch {
            f();
        }
        per_op.push(t.elapsed().as_nanos() as f64 / ops_per_batch as f64);
    }
    per_op.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if per_op.len() % 2 == 1 {
        per_op[per_op.len() / 2]
    } else {
        0.5 * (per_op[per_op.len() / 2 - 1] + per_op[per_op.len() / 2])
    };
    let best = per_op[0];
    (median, best, batches as u64 * ops_per_batch)
}

/// Renders the stats as the `BENCH_perf.json` document (no serde: the
/// workspace is offline; the format is a stable, hand-written schema).
pub fn render_json(preset: &str, simd_backend: &str, stats: &[KernelStat]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"class-perf-trajectory/v1\",\n");
    out.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    out.push_str(&format!("  \"simd_backend\": \"{simd_backend}\",\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"d\": {}, \"median_ns\": {:.1}, \
             \"best_ns\": {:.1}, \"ops\": {}}}{}\n",
            s.name,
            s.d,
            s.median_ns,
            s.best_ns,
            s.ops,
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the stats as a Markdown table for stdout.
pub fn render_table(stats: &[KernelStat]) -> String {
    let mut out = String::new();
    out.push_str("| kernel | d | median ns/op | best ns/op | ops |\n");
    out.push_str("|---|---:|---:|---:|---:|\n");
    for s in stats {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {} |\n",
            s.name, s.d, s.median_ns, s.best_ns, s.ops
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_batches_reports_sane_numbers() {
        let mut acc = 0u64;
        let (median, best, ops) = measure_batches(5, 100, || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert_eq!(ops, 500);
        assert!(median >= 0.0 && best >= 0.0 && best <= median);
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let stats = vec![
            KernelStat {
                name: "knn_update",
                d: 1000,
                median_ns: 1234.5,
                best_ns: 1200.0,
                ops: 4000,
            },
            KernelStat {
                name: "class_step",
                d: 4000,
                median_ns: 9.25e4,
                best_ns: 9.0e4,
                ops: 500,
            },
        ];
        let doc = render_json("quick", "avx2", &stats);
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches("\"name\"").count(), 2);
        assert!(doc.contains("\"schema\": \"class-perf-trajectory/v1\""));
        assert!(doc.contains("\"simd_backend\": \"avx2\""));
        // Exactly one comma between the two kernel objects.
        assert_eq!(doc.matches("},").count(), 1);
        let table = render_table(&stats);
        assert_eq!(table.lines().count(), 4);
    }
}
