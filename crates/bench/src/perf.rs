//! Perf-trajectory measurement: a fixed, pinned workload over the three
//! streaming hot paths, emitting machine-readable `BENCH_perf.json` so
//! every PR's numbers are comparable to its predecessors (see
//! EXPERIMENTS.md, §4.4 runtime decomposition).
//!
//! The measurement protocol is deliberately simple and robust: per kernel,
//! a short warm-up, then a fixed number of timed batches; the reported
//! statistic is the **median** ns/op across batches (insensitive to the
//! occasional scheduler hiccup, unlike the mean).

use std::time::Instant;

/// One measured kernel data point.
#[derive(Debug, Clone)]
pub struct KernelStat {
    /// Kernel identifier (`knn_update`, `crossval_profile`, `class_step`).
    pub name: &'static str,
    /// Sliding window size `d` of the workload.
    pub d: usize,
    /// Median nanoseconds per operation across batches.
    pub median_ns: f64,
    /// Best (minimum) batch mean, ns per operation.
    pub best_ns: f64,
    /// Total timed operations.
    pub ops: u64,
}

/// Times `ops_per_batch` invocations of `f` per batch over `batches`
/// timed batches (plus one untimed warm-up batch) and returns
/// `(median ns/op, best ns/op, total ops)`.
pub fn measure_batches(batches: usize, ops_per_batch: u64, mut f: impl FnMut()) -> (f64, f64, u64) {
    assert!(batches >= 1 && ops_per_batch >= 1);
    for _ in 0..ops_per_batch {
        f(); // warm-up: caches, branch predictors, lazy state
    }
    let mut per_op: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..ops_per_batch {
            f();
        }
        per_op.push(t.elapsed().as_nanos() as f64 / ops_per_batch as f64);
    }
    summarize(per_op, batches as u64 * ops_per_batch)
}

/// Like [`measure_batches`], but every operation is split into an untimed
/// `setup` phase and a timed `inner` phase over a shared mutable `state`.
/// This measures a kernel inside a realistically *evolving* context — e.g.
/// one stream update per profile re-evaluation — without charging the
/// context to the kernel (the context is typically a kernel of its own).
pub fn measure_batches_paired<S>(
    batches: usize,
    ops_per_batch: u64,
    state: &mut S,
    mut setup: impl FnMut(&mut S),
    mut inner: impl FnMut(&mut S),
) -> (f64, f64, u64) {
    assert!(batches >= 1 && ops_per_batch >= 1);
    for _ in 0..ops_per_batch {
        setup(state);
        inner(state);
    }
    let mut per_op: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut timed = std::time::Duration::ZERO;
        for _ in 0..ops_per_batch {
            setup(state);
            let t = Instant::now();
            inner(state);
            timed += t.elapsed();
        }
        per_op.push(timed.as_nanos() as f64 / ops_per_batch as f64);
    }
    summarize(per_op, batches as u64 * ops_per_batch)
}

fn summarize(mut per_op: Vec<f64>, ops: u64) -> (f64, f64, u64) {
    per_op.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if per_op.len() % 2 == 1 {
        per_op[per_op.len() / 2]
    } else {
        0.5 * (per_op[per_op.len() / 2 - 1] + per_op[per_op.len() / 2])
    };
    let best = per_op[0];
    (median, best, ops)
}

/// Renders the stats as the `BENCH_perf.json` document (no serde: the
/// workspace is offline; the format is a stable, hand-written schema).
pub fn render_json(preset: &str, simd_backend: &str, stats: &[KernelStat]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"class-perf-trajectory/v1\",\n");
    out.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    out.push_str(&format!("  \"simd_backend\": \"{simd_backend}\",\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"d\": {}, \"median_ns\": {:.1}, \
             \"best_ns\": {:.1}, \"ops\": {}}}{}\n",
            s.name,
            s.d,
            s.median_ns,
            s.best_ns,
            s.ops,
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts the first `"key": <number>` value from a JSON document.
/// Not a JSON parser — the workspace is offline (no serde) and both
/// `BENCH_perf.json` and `BENCH_serve.json` are emitted by this crate
/// with a stable, flat layout this scan matches exactly.
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the first `"key": "<string>"` value from a JSON document
/// (same caveats as [`json_number`]).
pub fn json_string(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Reads every `{"name": <kernel>, "d": .., "median_ns": ..}` entry of a
/// `BENCH_perf.json` document for one kernel, as `(d, median_ns)` pairs.
pub fn kernel_medians(doc: &str, kernel: &str) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    let needle = format!("\"name\": \"{kernel}\"");
    let mut rest = doc;
    while let Some(at) = rest.find(&needle) {
        let entry = &rest[at..];
        if let (Some(d), Some(median)) = (json_number(entry, "d"), json_number(entry, "median_ns"))
        {
            out.push((d as usize, median));
        }
        rest = &rest[at + needle.len()..];
    }
    out
}

/// Compares a fresh measurement against a committed baseline and returns
/// the regression verdicts: `(label, baseline, fresh, regressed)` per
/// matched entry. `higher_is_worse` says which direction is a regression
/// (true for ns/op medians, false for records/sec throughput);
/// `tolerance` is the allowed fractional slack (0.25 = fail beyond 25%).
pub fn regressions(
    pairs: &[(String, f64, f64)],
    higher_is_worse: bool,
    tolerance: f64,
) -> Vec<(String, f64, f64, bool)> {
    pairs
        .iter()
        .map(|(label, base, fresh)| {
            let regressed = if higher_is_worse {
                *fresh > *base * (1.0 + tolerance)
            } else {
                *fresh < *base * (1.0 - tolerance)
            };
            (label.clone(), *base, *fresh, regressed)
        })
        .collect()
}

/// Renders the stats as a Markdown table for stdout.
pub fn render_table(stats: &[KernelStat]) -> String {
    let mut out = String::new();
    out.push_str("| kernel | d | median ns/op | best ns/op | ops |\n");
    out.push_str("|---|---:|---:|---:|---:|\n");
    for s in stats {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {} |\n",
            s.name, s.d, s.median_ns, s.best_ns, s.ops
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_batches_reports_sane_numbers() {
        let mut acc = 0u64;
        let (median, best, ops) = measure_batches(5, 100, || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert_eq!(ops, 500);
        assert!(median >= 0.0 && best >= 0.0 && best <= median);
    }

    #[test]
    fn paired_measurement_times_only_the_inner_phase() {
        // The setup phase spins noticeably longer than the inner phase; the
        // paired protocol must not charge it to the measurement.
        let spin = |iters: u64| {
            let mut x = 0u64;
            for i in 0..iters {
                x = x.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(x);
        };
        let mut state = 0u64;
        let (paired_median, _, ops) = measure_batches_paired(
            5,
            50,
            &mut state,
            |_| spin(40_000),
            |s| {
                *s = s.wrapping_add(1);
                spin(400);
            },
        );
        assert_eq!(ops, 250);
        assert_eq!(state, 300, "setup/inner must run once per op incl. warm-up");
        let (combined_median, _, _) = measure_batches(5, 50, || spin(40_000));
        assert!(
            paired_median < combined_median,
            "paired {paired_median} ns/op should exclude the {combined_median} ns/op setup"
        );
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let stats = vec![
            KernelStat {
                name: "knn_update",
                d: 1000,
                median_ns: 1234.5,
                best_ns: 1200.0,
                ops: 4000,
            },
            KernelStat {
                name: "class_step",
                d: 4000,
                median_ns: 9.25e4,
                best_ns: 9.0e4,
                ops: 500,
            },
        ];
        let doc = render_json("quick", "avx2", &stats);
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
        assert_eq!(doc.matches("\"name\"").count(), 2);
        assert!(doc.contains("\"schema\": \"class-perf-trajectory/v1\""));
        assert!(doc.contains("\"simd_backend\": \"avx2\""));
        // Exactly one comma between the two kernel objects.
        assert_eq!(doc.matches("},").count(), 1);
        let table = render_table(&stats);
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn json_scans_read_back_the_rendered_document() {
        let stats = vec![
            KernelStat {
                name: "knn_update",
                d: 1000,
                median_ns: 3556.8,
                best_ns: 3425.0,
                ops: 6000,
            },
            KernelStat {
                name: "crossval_profile",
                d: 1000,
                median_ns: 26074.2,
                best_ns: 24945.1,
                ops: 600,
            },
            KernelStat {
                name: "knn_update",
                d: 4000,
                median_ns: 14044.3,
                best_ns: 13721.1,
                ops: 6000,
            },
        ];
        let doc = render_json("quick", "avx2", &stats);
        assert_eq!(json_string(&doc, "preset").as_deref(), Some("quick"));
        assert_eq!(json_string(&doc, "simd_backend").as_deref(), Some("avx2"));
        assert_eq!(json_number(&doc, "d"), Some(1000.0));
        assert_eq!(json_string(&doc, "nope"), None);
        assert_eq!(json_number(&doc, "nope"), None);
        assert_eq!(
            kernel_medians(&doc, "knn_update"),
            vec![(1000, 3556.8), (4000, 14044.3)]
        );
        assert_eq!(kernel_medians(&doc, "class_step"), Vec::new());
    }

    #[test]
    fn regression_verdicts_respect_direction_and_tolerance() {
        let pairs = vec![
            ("lat d=1000".to_string(), 100.0, 124.0),
            ("lat d=4000".to_string(), 100.0, 126.0),
        ];
        // Latency: higher is worse; 24% slower passes, 26% fails.
        let v = regressions(&pairs, true, 0.25);
        assert!(!v[0].3 && v[1].3);
        // Throughput: lower is worse; both are *faster*, so both pass.
        let v = regressions(&pairs, false, 0.25);
        assert!(!v[0].3 && !v[1].3);
        let v = regressions(&[("tps".into(), 1000.0, 700.0)], false, 0.25);
        assert!(v[0].3, "30% throughput drop must fail");
    }
}
