//! # bench — benchmark harness regenerating every table and figure
//!
//! One binary per artefact of the paper's evaluation section:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table 1 — dataset specifications |
//! | `table2` | Table 2 — competitor update complexities (measured) |
//! | `table3` | Table 3 — summary Covering performances |
//! | `fig5` | Figure 5 — CD diagrams + box plots |
//! | `fig6` | Figure 6 — runtime vs quality, throughput, d-sweep |
//! | `fig7` | Figure 7 — scalability ClaSS vs FLOSS |
//! | `ablation` | §4.2 — design-choice ablations (a)-(g) |
//! | `flink_throughput` | §4.4 — stream-engine window operator throughput |
//! | `serve_throughput` | §4.4 at serving scale — hundreds of concurrent streams on the sharded engine → `BENCH_serve.json` |
//! | `perf_trajectory` | §4.4 — pinned hot-path workload → `BENCH_perf.json` |
//!
//! Criterion micro-benchmarks (`cargo bench -p bench`) validate the two
//! core algorithmic speedups against naive baselines; `perf_trajectory`
//! (see [`perf`]) tracks the absolute numbers across PRs.

#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod naive;
pub mod perf;

pub use args::Args;
pub use experiments::{
    all_series, archive_series, benchmark_series, eval_group, mean_pct, mean_throughput,
    small_subset, total_runtime_secs, tuning_split, GroupEval,
};
