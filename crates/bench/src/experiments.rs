//! Shared experiment drivers used by the table/figure binaries.

use crate::args::Args;
use datasets::AnnotatedSeries;
use eval::{covering_matrix, run_matrix, AlgoSpec, MethodScores, RunResult};

/// Resolves the benchmark group (TSSB + UTSA) for an experiment run: real
/// archives from `--data-dir`/`CLASS_DATA_DIR` when present, synthetic
/// stand-ins otherwise. A present-but-corrupt real archive aborts with the
/// loader's file:line:col diagnostics — experiments must never silently
/// swap a broken real archive for a synthetic one.
pub fn benchmark_series(args: &Args) -> Vec<AnnotatedSeries> {
    let dir = args.data_dir();
    datasets::resolve_benchmark_series(&args.gen_config(), dir.as_ref())
        .unwrap_or_else(|e| panic!("failed to load real archives: {e}"))
}

/// Resolves the data-archive group (the six annotated archives); see
/// [`benchmark_series`].
pub fn archive_series(args: &Args) -> Vec<AnnotatedSeries> {
    let dir = args.data_dir();
    datasets::resolve_archive_series(&args.gen_config(), dir.as_ref())
        .unwrap_or_else(|e| panic!("failed to load real archives: {e}"))
}

/// Resolves all eight archives; see [`benchmark_series`].
pub fn all_series(args: &Args) -> Vec<AnnotatedSeries> {
    let dir = args.data_dir();
    datasets::resolve_all_series(&args.gen_config(), dir.as_ref())
        .unwrap_or_else(|e| panic!("failed to load real archives: {e}"))
}

/// One evaluated group (the paper reports "benchmarks" and "data archives"
/// separately).
pub struct GroupEval {
    /// Group label.
    pub label: &'static str,
    /// Raw results (algo-major, series-minor).
    pub results: Vec<RunResult>,
    /// Per-method score columns, aligned with `algos`.
    pub methods: Vec<MethodScores>,
}

/// Runs a line-up of algorithms over a group of series.
pub fn eval_group(
    label: &'static str,
    algos: &[AlgoSpec],
    series: &[AnnotatedSeries],
    threads: usize,
) -> GroupEval {
    let results = run_matrix(algos, series, threads);
    let scores = covering_matrix(&results, algos.len(), series.len());
    let methods = algos
        .iter()
        .zip(scores)
        .map(|(a, s)| MethodScores {
            name: a.name().to_string(),
            scores: s,
        })
        .collect();
    GroupEval {
        label,
        results,
        methods,
    }
}

/// Deterministic ~20% subsample of the series (the paper's hyper-parameter
/// tuning split: "20% randomly chosen benchmark TS (21 out of 107)").
pub fn tuning_split(series: &[AnnotatedSeries]) -> Vec<AnnotatedSeries> {
    series
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 5 == 2)
        .map(|(_, s)| s.clone())
        .collect()
}

/// Deterministic miniature subset of a benchmark: every 7th series
/// (offset 3) shorter than 12k points, capped at `take`. The integration
/// tests use this to miniaturize the paper's claims so they run in seconds.
pub fn small_subset(series: &[AnnotatedSeries], take: usize) -> Vec<AnnotatedSeries> {
    series
        .iter()
        .enumerate()
        .filter(|(i, s)| i % 7 == 3 && s.len() < 12_000)
        .map(|(_, s)| s.clone())
        .take(take)
        .collect()
}

/// Mean covering across a method's scores, in percent.
pub fn mean_pct(scores: &[f64]) -> f64 {
    if scores.is_empty() {
        0.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64 * 100.0
    }
}

/// Total runtime of one algorithm across its results, in seconds.
pub fn total_runtime_secs(results: &[RunResult], algo: &str) -> f64 {
    results
        .iter()
        .filter(|r| r.algo == algo)
        .map(|r| r.runtime.as_secs_f64())
        .sum()
}

/// Mean standalone throughput of one algorithm, in points per second.
pub fn mean_throughput(results: &[RunResult], algo: &str) -> f64 {
    let rs: Vec<f64> = results
        .iter()
        .filter(|r| r.algo == algo)
        .map(|r| r.throughput())
        .collect();
    if rs.is_empty() {
        0.0
    } else {
        rs.iter().sum::<f64>() / rs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use competitors::CompetitorKind;
    use datasets::{build_series, NoiseSpec, Regime};

    fn series_pair() -> Vec<AnnotatedSeries> {
        (0..2)
            .map(|k| {
                build_series(
                    format!("t/{k}"),
                    "test",
                    &[
                        (
                            Regime::Sine {
                                period: 20.0,
                                amp: 1.0,
                                phase: 0.0,
                            },
                            1200,
                        ),
                        (
                            Regime::Noise {
                                level: 0.0,
                                sigma: 0.6,
                            },
                            1200,
                        ),
                    ],
                    NoiseSpec::benchmark(),
                    k,
                )
            })
            .collect()
    }

    #[test]
    fn eval_group_produces_aligned_columns() {
        let algos = vec![
            AlgoSpec::Baseline {
                kind: CompetitorKind::Ddm,
                window_size: 800,
            },
            AlgoSpec::Baseline {
                kind: CompetitorKind::Hddm,
                window_size: 800,
            },
        ];
        let series = series_pair();
        let g = eval_group("test", &algos, &series, 2);
        assert_eq!(g.methods.len(), 2);
        assert_eq!(g.methods[0].scores.len(), 2);
        assert_eq!(g.results.len(), 4);
        assert!(mean_pct(&g.methods[0].scores) >= 0.0);
        assert!(total_runtime_secs(&g.results, "DDM") > 0.0);
        assert!(mean_throughput(&g.results, "DDM") > 0.0);
    }

    #[test]
    fn tuning_split_is_about_a_fifth() {
        let series: Vec<AnnotatedSeries> = (0..107)
            .map(|k| AnnotatedSeries {
                name: format!("s{k}"),
                values: vec![0.0; 10],
                change_points: vec![],
                width: 5,
                archive: "x",
            })
            .collect();
        let split = tuning_split(&series);
        assert_eq!(split.len(), 21);
    }
}
