//! Regenerates the **§4.4 Apache Flink throughput experiment** on the
//! stream-engine substitute: every series is an independent data stream,
//! ClaSS runs as a window operator, and the reported quantity is data
//! points per second through the operator (mean, std, peak).

use bench::{all_series, tuning_split, Args};
use class_core::{ClassConfig, ClassSegmenter};
use stream_engine::{run_streams, SegmenterOperator};

fn main() {
    let args = Args::parse();
    let series = {
        let s = all_series(&args);
        if args.quick {
            tuning_split(&s)
        } else {
            s
        }
    };
    let streams: Vec<Vec<f64>> = series.iter().map(|s| s.values.clone()).collect();
    let lens: Vec<usize> = streams.iter().map(|s| s.len()).collect();
    eprintln!(
        "running {} streams ({} total points) through the ClaSS window operator on {} slots...",
        streams.len(),
        lens.iter().sum::<usize>(),
        args.threads
    );
    let window = args.window;
    let results = run_streams(
        &streams,
        |i| {
            let mut c = ClassConfig::with_window_size(window);
            c.warmup = Some(window.min(lens[i]));
            SegmenterOperator::new(ClassSegmenter::new(c))
        },
        args.threads,
        1024,
    );
    let mut latency = stream_engine::LatencyHistogram::new();
    for r in &results {
        latency.merge(&r.latency);
    }
    let throughputs: Vec<f64> = results.iter().map(|r| r.throughput()).collect();
    let n = throughputs.len() as f64;
    let mean = throughputs.iter().sum::<f64>() / n;
    let var = throughputs
        .iter()
        .map(|t| (t - mean) * (t - mean))
        .sum::<f64>()
        / n;
    let peak = throughputs.iter().cloned().fold(f64::MIN, f64::max);
    let total_cps: usize = results.iter().map(|r| r.output.len()).sum();

    println!("# §4.4 — stream-engine (Flink substitute) window operator throughput");
    println!("streams processed:        {}", results.len());
    println!("total change points out:  {total_cps}");
    println!("mean throughput:          {mean:.0} points/s");
    println!("std of throughput:        {:.0} points/s", var.sqrt());
    println!("peak throughput:          {peak:.0} points/s");
    println!(
        "operator latency:         mean {:?}, p50 {:?}, p99 {:?}, max {:?}",
        latency.mean(),
        latency.quantile(0.5),
        latency.quantile(0.99),
        latency.max()
    );
    println!(
        "\npaper reference (Python/Flink, d=10k, unscaled): mean 1004, std 310, peak 2063 pts/s"
    );
    println!("(absolute numbers differ by implementation language and scale; the");
    println!("reproduction target is engine overhead ~= standalone throughput, §4.4)");
}
