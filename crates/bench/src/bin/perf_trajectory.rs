//! `perf_trajectory` — the pinned perf workload every PR is measured on.
//!
//! Runs the three streaming hot paths (`knn_update`, `crossval_profile`,
//! full `class_step`) at d ∈ {1_000, 4_000, 10_000} on fixed-seed synthetic
//! streams and writes `BENCH_perf.json` (median ns/op per kernel) next to
//! the working directory, plus a Markdown table on stdout. Numbers are
//! before/after comparable across PRs: same seeds, same widths, same batch
//! protocol (see `bench::perf`).
//!
//! ```sh
//! cargo run --release -p bench --bin perf_trajectory              # full
//! cargo run --release -p bench --bin perf_trajectory -- --preset quick
//! CLASS_SIMD=scalar cargo run --release -p bench --bin perf_trajectory
//! ```
//!
//! `--preset quick` (CI) runs d ∈ {1_000, 4_000} with fewer batches —
//! seconds, not minutes. `--out PATH` overrides the output path. The
//! `CLASS_SIMD` environment variable pins the kernel backend for A/B runs.

use bench::perf::{measure_batches, render_json, render_table, KernelStat};
use class_core::crossval::{CrossVal, ScoreFn};
use class_core::knn::{KnnConfig, StreamingKnn};
use class_core::stats::SplitMix64;
use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter, WidthSelection};
use std::hint::black_box;

const WIDTH: usize = 50;
const K: usize = 3;

struct Preset {
    name: &'static str,
    d_values: &'static [usize],
    batches: usize,
    knn_ops: u64,
    cv_ops: u64,
    step_ops: u64,
}

const FULL: Preset = Preset {
    name: "full",
    d_values: &[1_000, 4_000, 10_000],
    batches: 15,
    knn_ops: 400,
    cv_ops: 40,
    step_ops: 60,
};

const QUICK: Preset = Preset {
    name: "quick",
    d_values: &[1_000, 4_000],
    batches: 9,
    knn_ops: 200,
    cv_ops: 20,
    step_ops: 30,
};

fn filled_knn(d: usize) -> (StreamingKnn, SplitMix64) {
    let mut rng = SplitMix64::new(42);
    let mut knn = StreamingKnn::new(KnnConfig::new(d, WIDTH, K));
    for _ in 0..2 * d {
        knn.update(rng.next_f64() * 2.0 - 1.0);
    }
    (knn, rng)
}

fn main() {
    let mut preset = &FULL;
    let mut out_path = "BENCH_perf.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let v = it.next().expect("--preset requires a value");
                preset = match v.as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => panic!("unknown preset {other} (quick|full)"),
                };
            }
            "--out" => out_path = it.next().expect("--out requires a value"),
            "--help" | "-h" => {
                eprintln!("options: --preset quick|full --out PATH");
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let backend = class_core::simd::active_backend().name();
    eprintln!(
        "perf_trajectory: preset={} simd_backend={backend} (override with CLASS_SIMD)",
        preset.name
    );

    let mut stats: Vec<KernelStat> = Vec::new();
    for &d in preset.d_values {
        // --- knn_update: one streaming index update (Q-recursion +
        // scoring + single-pass selection + list maintenance). ---
        let (mut knn, mut rng) = filled_knn(d);
        let (median, best, ops) = measure_batches(preset.batches, preset.knn_ops, || {
            knn.update(black_box(rng.next_f64() * 2.0 - 1.0));
        });
        stats.push(KernelStat {
            name: "knn_update",
            d,
            median_ns: median,
            best_ns: best,
            ops,
        });
        eprintln!("  knn_update        d={d:<6} median {median:>12.1} ns/op");

        // --- crossval_profile: one full incremental profile sweep. ---
        let (knn, _) = filled_knn(d);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let (median, best, ops) = measure_batches(preset.batches, preset.cv_ops, || {
            black_box(cv.compute(&knn, knn.qstart()));
        });
        stats.push(KernelStat {
            name: "crossval_profile",
            d,
            median_ns: median,
            best_ns: best,
            ops,
        });
        eprintln!("  crossval_profile  d={d:<6} median {median:>12.1} ns/op");

        // --- class_step: the full per-observation pipeline. ---
        let mut cfg = ClassConfig::with_window_size(d);
        cfg.width = WidthSelection::Fixed(WIDTH);
        let mut class = ClassSegmenter::new(cfg);
        let mut rng = SplitMix64::new(7);
        let mut cps = Vec::new();
        for i in 0..2 * d {
            class.step((i as f64 * 0.2).sin() + 0.05 * rng.next_f64(), &mut cps);
        }
        let (median, best, ops) = measure_batches(preset.batches, preset.step_ops, || {
            class.step(black_box(rng.next_f64()), &mut cps);
            cps.clear();
        });
        stats.push(KernelStat {
            name: "class_step",
            d,
            median_ns: median,
            best_ns: best,
            ops,
        });
        eprintln!("  class_step        d={d:<6} median {median:>12.1} ns/op");
    }

    let json = render_json(preset.name, backend, &stats);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("{}", render_table(&stats));
    eprintln!("wrote {out_path}");
}
