//! `perf_trajectory` — the pinned perf workload every PR is measured on.
//!
//! Runs the streaming hot paths at d ∈ {1_000, 4_000, 10_000} on
//! fixed-seed synthetic streams and writes `BENCH_perf.json` (median ns/op
//! per kernel) next to the working directory, plus a Markdown table on
//! stdout. Numbers are before/after comparable across PRs: same seeds,
//! same widths, same batch protocol (see `bench::perf`). Kernels:
//!
//! * `knn_update` — one streaming index update,
//! * `crossval_cold` — one full profile rebuild from the neighbour lists
//!   (the former `crossval_profile` workload, now the fallback path),
//! * `crossval_incremental` — advance the stream by one observation
//!   (untimed; that context is the `knn_update` kernel) and re-evaluate
//!   the warm journal-synced profile — the steady-state serving cost,
//! * `class_step` — the full per-observation pipeline at the default
//!   jump-ahead cadence.
//!
//! ```sh
//! cargo run --release -p bench --bin perf_trajectory              # full
//! cargo run --release -p bench --bin perf_trajectory -- --preset quick
//! CLASS_SIMD=scalar cargo run --release -p bench --bin perf_trajectory
//! ```
//!
//! `--preset quick` (CI) runs d ∈ {1_000, 4_000} with fewer batches —
//! seconds, not minutes. `--out PATH` overrides the output path. The
//! `CLASS_SIMD` environment variable pins the kernel backend for A/B runs.
//!
//! `--check BASELINE.json` turns the run into a **regression gate**: the
//! fresh medians of *every* kernel shared with the baseline document are
//! compared (read before `--out` is written, so checking against the
//! committed `BENCH_perf.json` in place works) and the process exits
//! non-zero if any shared (kernel, d) regressed beyond its tolerance —
//! `--tolerance` (default 0.25) for the steady kernels, widened to 0.35
//! for the noisier end-to-end `class_step`.

use bench::perf::{
    json_string, kernel_medians, measure_batches, measure_batches_paired, regressions, render_json,
    render_table, KernelStat,
};
use class_core::crossval::{CrossVal, ScoreFn};
use class_core::knn::{KnnConfig, StreamingKnn};
use class_core::stats::SplitMix64;
use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter, WidthSelection};
use std::hint::black_box;

const WIDTH: usize = 50;
const K: usize = 3;

struct Preset {
    name: &'static str,
    d_values: &'static [usize],
    batches: usize,
    knn_ops: u64,
    cv_ops: u64,
    step_ops: u64,
}

const FULL: Preset = Preset {
    name: "full",
    d_values: &[1_000, 4_000, 10_000],
    batches: 15,
    knn_ops: 400,
    cv_ops: 40,
    step_ops: 60,
};

const QUICK: Preset = Preset {
    name: "quick",
    d_values: &[1_000, 4_000],
    batches: 9,
    knn_ops: 200,
    cv_ops: 20,
    step_ops: 30,
};

fn filled_knn(d: usize) -> (StreamingKnn, SplitMix64) {
    let mut rng = SplitMix64::new(42);
    let mut knn = StreamingKnn::new(KnnConfig::new(d, WIDTH, K));
    for _ in 0..2 * d {
        knn.update(rng.next_f64() * 2.0 - 1.0);
    }
    (knn, rng)
}

fn main() {
    let mut preset = &FULL;
    let mut out_path = "BENCH_perf.json".to_string();
    let mut check_path: Option<String> = None;
    let mut tolerance: f64 = 0.25;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let v = it.next().expect("--preset requires a value");
                preset = match v.as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => panic!("unknown preset {other} (quick|full)"),
                };
            }
            "--out" => out_path = it.next().expect("--out requires a value"),
            "--check" => check_path = Some(it.next().expect("--check requires a value")),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .expect("--tolerance requires a value")
                    .parse()
                    .expect("numeric --tolerance");
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --preset quick|full --out PATH --check BASELINE.json --tolerance F"
                );
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    // Read the baseline before measuring: `--check` against the same
    // file `--out` overwrites must compare old numbers, not fresh ones.
    let baseline = check_path.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("reading baseline {p}: {e}"))
    });

    let backend = class_core::simd::active_backend().name();
    eprintln!(
        "perf_trajectory: preset={} simd_backend={backend} (override with CLASS_SIMD)",
        preset.name
    );

    let mut stats: Vec<KernelStat> = Vec::new();
    for &d in preset.d_values {
        // --- knn_update: one streaming index update (Q-recursion +
        // scoring + single-pass selection + list maintenance). ---
        let (mut knn, mut rng) = filled_knn(d);
        let (median, best, ops) = measure_batches(preset.batches, preset.knn_ops, || {
            knn.update(black_box(rng.next_f64() * 2.0 - 1.0));
        });
        stats.push(KernelStat {
            name: "knn_update",
            d,
            median_ns: median,
            best_ns: best,
            ops,
        });
        eprintln!("  knn_update           d={d:<6} median {median:>12.1} ns/op");

        // --- crossval_cold: one full profile rebuild from the neighbour
        // lists (reset() drops the persisted incremental state first). ---
        let (knn, _) = filled_knn(d);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let (median, best, ops) = measure_batches(preset.batches, preset.cv_ops, || {
            cv.reset();
            black_box(cv.compute(&knn, knn.qstart()));
        });
        stats.push(KernelStat {
            name: "crossval_cold",
            d,
            median_ns: median,
            best_ns: best,
            ops,
        });
        eprintln!("  crossval_cold        d={d:<6} median {median:>12.1} ns/op");

        // --- crossval_incremental: advance the stream by one observation
        // (untimed: that context is exactly the knn_update kernel above)
        // and re-evaluate the warm, journal-synced profile. ---
        let mut state = {
            let (knn, rng) = filled_knn(d);
            let mut cv = CrossVal::new(ScoreFn::MacroF1);
            cv.compute(&knn, knn.qstart());
            (knn, cv, rng)
        };
        let (median, best, ops) = measure_batches_paired(
            preset.batches,
            preset.cv_ops,
            &mut state,
            |(knn, _, rng)| {
                knn.update(black_box(rng.next_f64() * 2.0 - 1.0));
            },
            |(knn, cv, _)| {
                black_box(cv.compute(knn, knn.qstart()));
            },
        );
        stats.push(KernelStat {
            name: "crossval_incremental",
            d,
            median_ns: median,
            best_ns: best,
            ops,
        });
        eprintln!("  crossval_incremental d={d:<6} median {median:>12.1} ns/op");

        // --- class_step: the full per-observation pipeline. ---
        let mut cfg = ClassConfig::with_window_size(d);
        cfg.width = WidthSelection::Fixed(WIDTH);
        let mut class = ClassSegmenter::new(cfg);
        let mut rng = SplitMix64::new(7);
        let mut cps = Vec::new();
        for i in 0..2 * d {
            class.step((i as f64 * 0.2).sin() + 0.05 * rng.next_f64(), &mut cps);
        }
        let (median, best, ops) = measure_batches(preset.batches, preset.step_ops, || {
            class.step(black_box(rng.next_f64()), &mut cps);
            cps.clear();
        });
        stats.push(KernelStat {
            name: "class_step",
            d,
            median_ns: median,
            best_ns: best,
            ops,
        });
        eprintln!("  class_step           d={d:<6} median {median:>12.1} ns/op");
    }

    let json = render_json(preset.name, backend, &stats);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("{}", render_table(&stats));
    eprintln!("wrote {out_path}");

    if let Some(baseline) = baseline {
        let base_backend = json_string(&baseline, "simd_backend").unwrap_or_default();
        if base_backend != backend {
            // A scalar-vs-AVX2 comparison measures the hardware, not the
            // PR; skip rather than fail, loudly, so the gate never goes
            // red on a runner-generation change.
            eprintln!(
                "regression check SKIPPED: baseline backend {base_backend} != fresh backend \
                 {backend}; absolute ns/op are not comparable across kernel backends \
                 (re-commit {} from matching hardware to re-arm the gate)",
                check_path.as_deref().unwrap_or("")
            );
            return;
        }
        // Gate every kernel shared between the fresh run and the baseline
        // (a kernel new to this PR has no baseline yet and is skipped; a
        // kernel retired from the workload no longer gates). Per-kernel
        // tolerance: the end-to-end class_step mixes cheap skipped steps
        // with full evaluations and the occasional detection, so it is
        // noisier than the steady kernels.
        let mut failed = false;
        let mut matched = 0usize;
        eprintln!(
            "regression check vs {} (baseline backend {base_backend}, tolerance {tolerance}):",
            check_path.as_deref().unwrap_or("")
        );
        // First-occurrence order; stats interleave kernels per d, so a
        // plain consecutive dedup would visit each kernel once per d.
        let mut kernels: Vec<&'static str> = Vec::new();
        for s in &stats {
            if !kernels.contains(&s.name) {
                kernels.push(s.name);
            }
        }
        for kernel in kernels {
            let base = kernel_medians(&baseline, kernel);
            let pairs: Vec<(String, f64, f64)> = stats
                .iter()
                .filter(|s| s.name == kernel)
                .filter_map(|s| {
                    base.iter()
                        .find(|&&(d, _)| d == s.d)
                        .map(|&(_, m)| (format!("{kernel} d={}", s.d), m, s.median_ns))
                })
                .collect();
            if pairs.is_empty() {
                eprintln!("  {kernel:<31} not in baseline; skipped");
                continue;
            }
            let kernel_tol = if kernel == "class_step" {
                tolerance.max(0.35)
            } else {
                tolerance
            };
            matched += pairs.len();
            for (label, base_ns, fresh_ns, regressed) in regressions(&pairs, true, kernel_tol) {
                eprintln!(
                    "  {label:<31} baseline {base_ns:>10.1} ns/op, fresh {fresh_ns:>10.1} ns/op  \
                     {} (tol {kernel_tol})",
                    if regressed { "REGRESSED" } else { "ok" }
                );
                failed |= regressed;
            }
        }
        assert!(
            matched > 0,
            "baseline {} shares no kernel/d with preset {}",
            check_path.as_deref().unwrap_or(""),
            preset.name
        );
        if failed {
            eprintln!("perf regression beyond tolerance");
            std::process::exit(1);
        }
    }
}
