//! Regenerates **Figure 5**: Covering mean-rank critical-difference
//! diagrams (top) and score box plots (bottom) for the benchmark and
//! data-archive groups.

use bench::{archive_series, benchmark_series, eval_group, tuning_split, Args};
use competitors::CompetitorKind;
use eval::{box_plots, cd_diagram, AlgoSpec};

fn main() {
    let args = Args::parse();
    let benchmarks = {
        let s = benchmark_series(&args);
        if args.quick {
            tuning_split(&s)
        } else {
            s
        }
    };
    let archives = {
        let s = archive_series(&args);
        if args.quick {
            tuning_split(&s)
        } else {
            s
        }
    };
    let algos_bench = AlgoSpec::default_lineup(args.window);
    let algos_arch: Vec<AlgoSpec> = algos_bench
        .iter()
        .filter(|a| a.name() != CompetitorKind::Bocd.name())
        .cloned()
        .collect();

    eprintln!("running evaluation on {} threads...", args.threads);
    let gb = eval_group("benchmarks", &algos_bench, &benchmarks, args.threads);
    let ga = eval_group("archives", &algos_arch, &archives, args.threads);

    println!("# Figure 5 — Covering ranks and distributions");
    println!(
        "\n## Benchmarks ({} TS): critical-difference analysis\n",
        benchmarks.len()
    );
    println!("{}", cd_diagram(&gb.methods));
    println!("## Benchmarks: Covering box plots\n");
    println!("{}", box_plots(&gb.methods));
    println!(
        "\n## Data archives ({} TS): critical-difference analysis\n",
        archives.len()
    );
    println!("{}", cd_diagram(&ga.methods));
    println!("## Data archives: Covering box plots\n");
    println!("{}", box_plots(&ga.methods));
}
