//! The **early streaming segmentation study** the paper proposes as future
//! work (§4.5: "a benchmark study should be conducted to quantitatively
//! evaluate early segmentation"): for every ground-truth change point,
//! measure how many observations each method needs before localising it,
//! together with detection rates and false alarms.

use bench::{benchmark_series, tuning_split, Args};
use eval::{delay_stats, run_timed, AlgoSpec};

fn main() {
    let args = Args::parse();
    let series = {
        let s = benchmark_series(&args);
        if args.quick {
            tuning_split(&s)
        } else {
            s
        }
    };
    let algos = AlgoSpec::default_lineup(args.window);
    println!("# Early STSS study (paper §4.5 future work)");
    println!(
        "({} benchmark series; tolerance = 2x annotated width per series)\n",
        series.len()
    );
    println!(
        "| Method | detection rate (%) | mean delay (pts) | median delay | false alarms/series |"
    );
    println!("|---|---|---|---|---|");
    for algo in &algos {
        // Parallelise across series (each run is single-threaded).
        let next = std::sync::atomic::AtomicUsize::new(0);
        let collected: std::sync::Mutex<Vec<(f64, Option<f64>, usize)>> =
            std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..args.threads.max(1) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= series.len() {
                        break;
                    }
                    let s = &series[i];
                    let mut seg = algo.instantiate(s);
                    let reports = run_timed(seg.as_mut(), &s.values);
                    let tol = (2 * s.width) as u64;
                    let stats = delay_stats(&s.change_points, &reports, tol);
                    collected.lock().unwrap().push((
                        stats.detection_rate(),
                        stats.mean_delay(),
                        stats.false_alarms,
                    ));
                });
            }
        });
        let collected = collected.into_inner().unwrap();
        let mut rates = Vec::new();
        let mut delays: Vec<f64> = Vec::new();
        let mut false_alarms = 0usize;
        for (rate, delay, fa) in collected {
            rates.push(rate);
            if let Some(d) = delay {
                delays.push(d);
            }
            false_alarms += fa;
        }
        let rate = rates.iter().sum::<f64>() / rates.len().max(1) as f64 * 100.0;
        let mean_delay = if delays.is_empty() {
            f64::NAN
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        };
        let median_delay = {
            let mut d = delays.clone();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            if d.is_empty() {
                f64::NAN
            } else {
                d[d.len() / 2]
            }
        };
        println!(
            "| {} | {rate:.0} | {mean_delay:.0} | {median_delay:.0} | {:.2} |",
            algo.name(),
            false_alarms as f64 / series.len() as f64
        );
    }
    println!("\n(the paper's Figure 9 anecdote: ClaSS alerts after ~2 heart beats,");
    println!("FLOSS after ~3, Window misses — the study quantifies this over the corpus)");
}
