//! Regenerates **Table 1**: technical specifications of the evaluation
//! series — paper values next to the generated stand-ins.

use bench::Args;
use datasets::Archive;

fn main() {
    let args = Args::parse();
    let cfg = args.gen_config();
    println!("# Table 1 — technical specifications of TS used for experiments");
    println!(
        "(paper sizes vs generated; laptop profile scale, see EXPERIMENTS.md; \
         --paper-sizes restores magnitudes)\n"
    );
    println!(
        "| Name | No. TS | paper len min/med/max | gen len min/med/max | paper segs | gen segs |"
    );
    println!("|---|---|---|---|---|---|");
    for archive in Archive::all() {
        let spec = archive.spec();
        let series = archive.generate(&cfg);
        let mut lens: Vec<usize> = series.iter().map(|s| s.len()).collect();
        lens.sort_unstable();
        let mut segs: Vec<usize> = series.iter().map(|s| s.n_segments()).collect();
        segs.sort_unstable();
        let med = |v: &[usize]| v[v.len() / 2];
        println!(
            "| {} | {} | {} / {} / {} | {} / {} / {} | {} / {} / {} | {} / {} / {} |",
            spec.name,
            series.len(),
            spec.len.0,
            spec.len.1,
            spec.len.2,
            lens[0],
            med(&lens),
            lens[lens.len() - 1],
            spec.segments.0,
            spec.segments.1,
            spec.segments.2,
            segs[0],
            med(&segs),
            segs[segs.len() - 1],
        );
    }
    let total: usize = Archive::all()
        .iter()
        .map(|a| a.generate(&cfg).iter().map(|s| s.len()).sum::<usize>())
        .sum();
    println!("\ntotal generated data points: {total}");
}
