//! Regenerates the data behind the paper's illustrative **Figures 1-4**:
//! the ECG-to-fibrillation profile (Fig. 1), a sliding window over a
//! stream (Fig. 2), the respiration workflow (Fig. 3), and the seismic
//! k-NN/cross-validation example (Fig. 4). Emits TSV sections ready for
//! plotting, plus the detection events.

use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter, WidthSelection};
use datasets::{build_series, NoiseSpec, Regime};

fn run_profile(name: &str, series: &datasets::AnnotatedSeries, width: usize, d: usize) {
    let mut cfg = ClassConfig::with_window_size(d);
    cfg.width = WidthSelection::Fixed(width);
    cfg.log10_alpha = -15.0;
    let mut class = ClassSegmenter::new(cfg);
    let mut cps = Vec::new();
    let mut profile_dump: Option<(u64, Vec<f64>)> = None;
    let mut detected_at: Option<(u64, u64)> = None;
    for (t, &x) in series.values.iter().enumerate() {
        let before = cps.len();
        class.step(x, &mut cps);
        if cps.len() > before && detected_at.is_none() {
            detected_at = Some((t as u64, cps[before]));
            if let Some((start, profile)) = class.latest_profile() {
                profile_dump = Some((start, profile.to_vec()));
            }
        }
    }
    println!("## {name}");
    println!("# ground truth cps: {:?}", series.change_points);
    match detected_at {
        Some((t, cp)) => println!("# detected cp {cp} at t = {t} (latency {} points)", t - cp),
        None => println!("# no change point detected"),
    }
    println!(
        "# signal (t, value): {} points, printed decimated x10",
        series.len()
    );
    for (t, v) in series.values.iter().enumerate().step_by(10) {
        println!("signal\t{t}\t{v:.5}");
    }
    if let Some((start, profile)) = profile_dump {
        println!("# ClaSP profile at detection time (position, score)");
        for (i, p) in profile.iter().enumerate().step_by(5) {
            println!("profile\t{}\t{p:.4}", start + i as u64);
        }
    }
    println!();
}

fn main() {
    // Figure 1: ECG transitioning to ventricular fibrillation at 10k/250Hz
    // scale; scaled to the laptop profile.
    let fig1 = build_series(
        "fig1-ecg".into(),
        "VE DB",
        &[
            (
                Regime::EcgLike {
                    period: 90.0,
                    amp: 1.6,
                    jitter: 0.04,
                },
                5000,
            ),
            (
                Regime::FibrillationLike {
                    period: 40.0,
                    amp: 1.1,
                },
                2500,
            ),
        ],
        NoiseSpec::benchmark(),
        101,
    );
    run_profile(
        "Figure 1 — ECG to ventricular fibrillation",
        &fig1,
        90,
        2000,
    );

    // Figure 3: respiration, neutral to excited state.
    let fig3 = build_series(
        "fig3-resp".into(),
        "WESAD",
        &[
            (
                Regime::RespLike {
                    period: 120.0,
                    amp: 1.0,
                    modulation: 0.15,
                },
                5000,
            ),
            (
                Regime::RespLike {
                    period: 70.0,
                    amp: 1.5,
                    modulation: 0.45,
                },
                3000,
            ),
        ],
        NoiseSpec::benchmark(),
        103,
    );
    run_profile(
        "Figure 3 — respiration, neutral to excited",
        &fig3,
        110,
        2500,
    );

    // Figure 4: seismograph-like burst onset (Tōhoku example).
    let fig4 = build_series(
        "fig4-seismic".into(),
        "UTSA",
        &[
            (
                Regime::Noise {
                    level: 0.0,
                    sigma: 0.05,
                },
                4000,
            ),
            (
                Regime::BurstTrain {
                    gap: 220.0,
                    burst_len: 320.0,
                    period: 16.0,
                    amp: 1.8,
                },
                3500,
            ),
        ],
        NoiseSpec::benchmark(),
        104,
    );
    run_profile("Figure 4 — seismic burst onset", &fig4, 60, 2500);
}
