//! Regenerates **Table 2**: competitor specification — the paper's
//! complexity classes next to *measured* per-update times at two sliding
//! window sizes, whose ratio reveals the empirical scaling.

use class_core::stats::SplitMix64;
use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter, WidthSelection};
use competitors::{build, CompetitorKind, SeriesContext};
use std::time::Instant;

/// Mean per-update time (ns) of a warmed segmenter at window size `d`.
fn measure(mut seg: Box<dyn StreamingSegmenter>, d: usize) -> f64 {
    let mut rng = SplitMix64::new(17);
    let mut cps = Vec::new();
    for i in 0..2 * d {
        seg.step((i as f64 * 0.17).sin() + 0.05 * rng.next_f64(), &mut cps);
        cps.clear();
    }
    let iters = 3000.max(20_000_000 / d); // keep total work comparable
    let start = Instant::now();
    for _ in 0..iters {
        seg.step(rng.next_f64(), &mut cps);
        cps.clear();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn class_seg(d: usize) -> Box<dyn StreamingSegmenter> {
    let mut cfg = ClassConfig::with_window_size(d);
    cfg.width = WidthSelection::Fixed(40);
    Box::new(ClassSegmenter::new(cfg))
}

/// One table row: name, paper complexity, method family, segmenter factory.
type Row = (
    &'static str,
    &'static str,
    &'static str,
    Box<dyn Fn(usize) -> Box<dyn StreamingSegmenter>>,
);

fn main() {
    let d_small = 1000usize;
    let d_large = 4000usize;
    println!("# Table 2 — competitor specification (complexity vs measured update time)");
    println!("(update time per observation; ratio over a 4x window-size increase\n reveals the scaling: ~1 = O(1)/O(c), ~4 = O(d), growing = O(n))\n");
    println!(
        "| Competitor | paper complexity | segmentation method | t(d=1k) ns | t(d=4k) ns | ratio |"
    );
    println!("|---|---|---|---|---|---|");
    let rows: Vec<Row> = vec![
        (
            "BOCD",
            "O(n)",
            "Bayesian probability",
            Box::new(|d| build(CompetitorKind::Bocd, ctx(d))),
        ),
        (
            "FLOSS",
            "O(d log d)",
            "Matrix profile",
            Box::new(|d| build(CompetitorKind::Floss, ctx(d))),
        ),
        ("ClaSS", "O(d)", "Self-supervision", Box::new(class_seg)),
        (
            "ChangeFinder",
            "O(c^2)",
            "Moving averages",
            Box::new(|d| build(CompetitorKind::ChangeFinder, ctx(d))),
        ),
        (
            "Window",
            "O(c)",
            "Autoregressive cost",
            Box::new(|d| build(CompetitorKind::Window, ctx(d))),
        ),
        (
            "NEWMA",
            "O(c)",
            "Moving averages",
            Box::new(|d| build(CompetitorKind::Newma, ctx(d))),
        ),
        (
            "ADWIN",
            "O(log c)",
            "Adaptive statistics",
            Box::new(|d| build(CompetitorKind::Adwin, ctx(d))),
        ),
        (
            "DDM",
            "O(1)",
            "Model error",
            Box::new(|d| build(CompetitorKind::Ddm, ctx(d))),
        ),
        (
            "HDDM",
            "O(1)",
            "Hoeffding's inequality",
            Box::new(|d| build(CompetitorKind::Hddm, ctx(d))),
        ),
    ];
    for (name, complexity, method, make) in rows {
        let t1 = measure(make(d_small), d_small);
        let t2 = measure(make(d_large), d_large);
        println!(
            "| {name} | {complexity} | {method} | {t1:.0} | {t2:.0} | {:.2} |",
            t2 / t1.max(1e-9)
        );
    }
    println!("\nnote: BOCD's run-length state grows with the stream, so its per-update cost");
    println!("depends on stream position, not d (the paper's O(n)).");
}

fn ctx(d: usize) -> SeriesContext {
    SeriesContext {
        width: 40,
        window_size: d,
    }
}
