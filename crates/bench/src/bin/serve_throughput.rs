//! `serve_throughput` — load generator for the multi-stream serving
//! engine, the serving-scale counterpart of `flink_throughput`.
//!
//! The paper's §4.4 experiment feeds each benchmark series through a
//! Flink-deployed ClaSS operator one stream at a time and reports data
//! points per second. A serving deployment instead multiplexes *many*
//! concurrent streams onto a fixed worker pool. This binary drives
//! hundreds of concurrently registered synthetic sensor streams through
//! the sharded engine (`stream_engine::serve`) and reports aggregate
//! records/sec plus tail latency, appending the numbers to
//! `BENCH_serve.json` so every PR's serving throughput is comparable to
//! its predecessors:
//!
//! ```sh
//! cargo run --release -p bench --bin serve_throughput -- --preset quick
//! cargo run --release -p bench --bin serve_throughput -- --preset quick --check BENCH_serve.json
//! ```
//!
//! `--preset quick` (the CI gate) serves 128 concurrent streams; `full`
//! serves 512. `--check BASELINE.json` exits non-zero if records/sec
//! regressed more than `--tolerance` (default 0.25) against the
//! baseline document (read before `--out` overwrites it).
//!
//! `--jump N` overrides the segmenter's jump-ahead evaluation cadence
//! (default: the [`ClassConfig`] default, the reference implementation's
//! `jump=5`; `--jump 1` restores exact per-point evaluation). The value
//! is recorded in the JSON and gated — throughput at different cadences
//! measures different operators.
//!
//! `--mv-channels C` switches every stream to a C-channel multivariate
//! sensor (paper §6 sensor fusion): channels travel interleaved through
//! one ring per stream and the shard steps a quorum-fusion
//! `MultivariateClass` per frame. The mode is recorded in the JSON and
//! never gated against a univariate baseline — records/sec measures a
//! different operator.
//!
//! `--bundle-out PATH` additionally emits a provenance-stamped
//! `class-run-bundle/v1` (seed, SIMD backend, git describe, config,
//! headline metrics) for cross-run diffing with `compare_bundles`.

use bench::perf::{json_number, json_string, regressions};
use class_core::{
    ClassConfig, ClassSegmenter, MultivariateClass, MultivariateConfig, WidthSelection,
};
use datasets::{build_series, NoiseSpec, Regime};
use eval::bundle::RunBundle;
use stream_engine::{
    feed_all, serve, Backpressure, EngineConfig, LatencyHistogram, MultiChannelReplaySource,
    MultivariateSegmenterOperator, RingConfig, SegmenterOperator, StreamResult,
};

struct Preset {
    name: &'static str,
    streams: usize,
    points: usize,
    window: usize,
    width: usize,
}

const QUICK: Preset = Preset {
    name: "quick",
    streams: 128,
    points: 2_000,
    window: 500,
    width: 25,
};

const FULL: Preset = Preset {
    name: "full",
    streams: 512,
    points: 5_000,
    window: 1_000,
    width: 40,
};

/// A two-regime sensor stream (sine → sawtooth, benchmark noise) with a
/// per-stream seed so no two streams are identical.
fn stream_values(preset: &Preset, k: usize, seed: u64) -> Vec<f64> {
    let half = preset.points / 2;
    build_series(
        format!("serve/{k}"),
        "serve",
        &[
            (
                Regime::Sine {
                    period: 25.0 + (k % 7) as f64,
                    amp: 1.0,
                    phase: 0.0,
                },
                half,
            ),
            (
                Regime::Sawtooth {
                    period: 40.0 + (k % 5) as f64,
                    amp: 1.2,
                },
                preset.points - half,
            ),
        ],
        NoiseSpec::benchmark(),
        seed ^ k as u64,
    )
    .values
}

#[allow(clippy::too_many_arguments)]
fn render_serve_json(
    preset: &str,
    shards: usize,
    policy: &str,
    simd_backend: &str,
    mv_channels: usize,
    jump: usize,
    elapsed_s: f64,
    results: &[StreamResult<u64>],
    latency: &LatencyHistogram,
) -> String {
    let records: u64 = results.iter().map(|r| r.records_in).sum();
    let drops: u64 = results.iter().map(|r| r.drops).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"class-serve-throughput/v1\",\n");
    out.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    out.push_str(&format!("  \"shards\": {shards},\n"));
    out.push_str(&format!("  \"mv_channels\": {mv_channels},\n"));
    out.push_str(&format!("  \"jump\": {jump},\n"));
    out.push_str(&format!("  \"policy\": \"{policy}\",\n"));
    out.push_str(&format!("  \"simd_backend\": \"{simd_backend}\",\n"));
    out.push_str(&format!("  \"streams\": {},\n", results.len()));
    out.push_str(&format!("  \"records\": {records},\n"));
    out.push_str(&format!("  \"drops\": {drops},\n"));
    out.push_str(&format!("  \"elapsed_s\": {elapsed_s:.3},\n"));
    out.push_str(&format!(
        "  \"records_per_sec\": {:.1},\n",
        records as f64 / elapsed_s.max(1e-9)
    ));
    out.push_str(&format!(
        "  \"latency_p50_ns\": {},\n",
        latency.quantile(0.5).as_nanos()
    ));
    out.push_str(&format!(
        "  \"latency_p99_ns\": {},\n",
        latency.quantile(0.99).as_nanos()
    ));
    out.push_str(&format!(
        "  \"latency_max_ns\": {},\n",
        latency.max().as_nanos()
    ));
    out.push_str("  \"per_shard\": [\n");
    for shard in 0..shards {
        let shard_results: Vec<&StreamResult<u64>> =
            results.iter().filter(|r| r.shard == shard).collect();
        let records: u64 = shard_results.iter().map(|r| r.records_in).sum();
        let mut hist = LatencyHistogram::new();
        for r in &shard_results {
            hist.merge(&r.latency);
        }
        out.push_str(&format!(
            "    {{\"shard\": {shard}, \"streams\": {}, \"records\": {records}, \
             \"p99_ns\": {}}}{}\n",
            shard_results.len(),
            hist.quantile(0.99).as_nanos(),
            if shard + 1 < shards { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut preset = &QUICK;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25;
    let mut shards = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut streams_override: Option<usize> = None;
    let mut ring = 256usize;
    let mut policy = Backpressure::Block;
    let mut seed = 0xC1A55u64;
    let mut mv_channels = 0usize;
    let mut jump: Option<usize> = None;
    let mut bundle_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--preset" => {
                preset = match grab("--preset").as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => panic!("unknown preset {other} (quick|full)"),
                };
            }
            "--shards" => shards = grab("--shards").parse().expect("numeric --shards"),
            "--streams" => {
                streams_override = Some(grab("--streams").parse().expect("numeric --streams"))
            }
            "--ring" => ring = grab("--ring").parse().expect("numeric --ring"),
            "--policy" => {
                policy = match grab("--policy").as_str() {
                    "block" => Backpressure::Block,
                    "drop-oldest" => Backpressure::DropOldest,
                    other => panic!("unknown policy {other} (block|drop-oldest)"),
                };
            }
            "--seed" => seed = grab("--seed").parse().expect("numeric --seed"),
            "--jump" => jump = Some(grab("--jump").parse().expect("numeric --jump")),
            "--mv-channels" => {
                mv_channels = grab("--mv-channels")
                    .parse()
                    .expect("numeric --mv-channels")
            }
            "--out" => out_path = grab("--out"),
            "--bundle-out" => bundle_out = Some(grab("--bundle-out")),
            "--check" => check_path = Some(grab("--check")),
            "--tolerance" => tolerance = grab("--tolerance").parse().expect("numeric --tolerance"),
            "--help" | "-h" => {
                eprintln!(
                    "options: --preset quick|full --shards N --streams N --ring N \
                     --policy block|drop-oldest --mv-channels C --jump N --seed N \
                     --out PATH --bundle-out PATH --check BASELINE.json --tolerance F"
                );
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    // The interleaved multi-channel transport requires the lossless
    // policy: evicting individual scalar records would desynchronize
    // frame reassembly and the run would measure a scrambled workload.
    assert!(
        mv_channels == 0 || matches!(policy, Backpressure::Block),
        "--mv-channels requires --policy block (drop-oldest would evict \
         individual channel records and desynchronize frames)"
    );
    let baseline = check_path.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("reading baseline {p}: {e}"))
    });

    let n_streams = streams_override.unwrap_or(preset.streams);
    let backend = class_core::simd::active_backend().name();
    let policy_name = match policy {
        Backpressure::Block => "block",
        Backpressure::DropOldest => "drop-oldest",
        Backpressure::Error => unreachable!(),
    };
    let window = preset.window;
    let width = preset.width;
    let base_cfg = move || {
        let mut cfg = ClassConfig::with_window_size(window);
        cfg.width = WidthSelection::Fixed(width);
        cfg.warmup = Some(window);
        cfg.log10_alpha = -15.0;
        if let Some(j) = jump {
            cfg.jump = j;
        }
        cfg
    };
    let jump_eff = base_cfg().jump;
    eprintln!(
        "serve_throughput: preset={} streams={n_streams} points/stream={} shards={shards} \
         ring={ring} policy={policy_name} mv_channels={mv_channels} jump={jump_eff} \
         simd_backend={backend}",
        preset.name, preset.points
    );

    // Per-stream record sequences: the plain series for the univariate
    // workload, or `mv_channels` decorrelated channels interleaved
    // frame-major (the serving engine's multi-channel transport) for the
    // sensor-fusion workload.
    let data: Vec<Vec<f64>> = if mv_channels == 0 {
        (0..n_streams)
            .map(|k| stream_values(preset, k, seed))
            .collect()
    } else {
        (0..n_streams)
            .map(|k| {
                let channels: Vec<Vec<f64>> = (0..mv_channels)
                    .map(|c| stream_values(preset, k, seed ^ ((c as u64 + 1) << 32)))
                    .collect();
                MultiChannelReplaySource::new(channels).interleaved()
            })
            .collect()
    };
    let config = EngineConfig {
        shards,
        ring: RingConfig::new(ring, policy),
    };
    let started = std::time::Instant::now();
    let (results, live) = if mv_channels == 0 {
        serve(config, |engine| {
            let handles: Vec<_> = (0..n_streams)
                .map(|_| {
                    engine.register(move || SegmenterOperator::new(ClassSegmenter::new(base_cfg())))
                })
                .collect();
            // All streams are registered and live before the first record
            // is fed: the engine is serving `n_streams` concurrent
            // streams on `shards` worker threads from here on.
            let live = engine.stats().active_streams();
            let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
            feed_all(handles, &slices).expect("load generator feed completes");
            live
        })
    } else {
        serve(config, |engine| {
            let handles: Vec<_> = (0..n_streams)
                .map(|_| {
                    engine.register(move || {
                        MultivariateSegmenterOperator::new(MultivariateClass::new(
                            MultivariateConfig::new(base_cfg(), mv_channels),
                            mv_channels,
                        ))
                    })
                })
                .collect();
            let live = engine.stats().active_streams();
            let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
            feed_all(handles, &slices).expect("load generator feed completes");
            live
        })
    };
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(live, n_streams, "every stream live before feeding");

    let mut latency = LatencyHistogram::new();
    let mut cps = 0usize;
    for r in &results {
        latency.merge(&r.latency);
        cps += r.output.len();
    }
    let records: u64 = results.iter().map(|r| r.records_in).sum();
    let drops: u64 = results.iter().map(|r| r.drops).sum();
    let rps = records as f64 / elapsed.max(1e-9);

    let json = render_serve_json(
        preset.name,
        shards,
        policy_name,
        backend,
        mv_channels,
        jump_eff,
        elapsed,
        &results,
        &latency,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));

    if let Some(path) = &bundle_out {
        let mut bundle = RunBundle::new("serve-throughput").with_seed(seed);
        bundle.config("preset", preset.name);
        bundle.config("shards", shards);
        bundle.config("streams", n_streams);
        bundle.config("points_per_stream", preset.points);
        bundle.config("ring", ring);
        bundle.config("policy", policy_name);
        bundle.config("mv_channels", mv_channels);
        bundle.config("jump", jump_eff);
        bundle.metric("records", records as f64);
        bundle.metric("drops", drops as f64);
        bundle.metric("change_points", cps as f64);
        bundle.metric("elapsed_s", elapsed);
        bundle.metric("records_per_sec", rps);
        bundle.metric("latency_p50_ns", latency.quantile(0.5).as_nanos() as f64);
        bundle.metric("latency_p99_ns", latency.quantile(0.99).as_nanos() as f64);
        bundle
            .write(path)
            .unwrap_or_else(|e| panic!("writing bundle {path}: {e}"));
        eprintln!("serve_throughput: bundle at {path}");
    }

    println!("# serving engine throughput ({} preset)", preset.name);
    println!("concurrent streams:  {live} (on {shards} shard workers)");
    println!("records served:      {records} ({drops} dropped)");
    println!("change points out:   {cps}");
    println!("wall time:           {elapsed:.3} s");
    println!("aggregate rate:      {rps:.0} records/s");
    println!(
        "operator latency:    p50 {:?}, p99 {:?}, max {:?}",
        latency.quantile(0.5),
        latency.quantile(0.99),
        latency.max()
    );
    eprintln!("wrote {out_path}");

    if let Some(baseline) = baseline {
        // Operator cost (and therefore records/sec) depends on the
        // kernel backend; a scalar-vs-AVX2 comparison measures the
        // hardware, not the PR. Skip loudly rather than fail, matching
        // perf_trajectory's gate. (Pre-backend baselines skip too.)
        let base_backend = json_string(&baseline, "simd_backend").unwrap_or_default();
        if base_backend != backend {
            eprintln!(
                "regression check SKIPPED: baseline backend {base_backend:?} != fresh backend \
                 {backend:?}; records/sec are not comparable across kernel backends \
                 (re-commit {} from matching hardware to re-arm the gate)",
                check_path.as_deref().unwrap_or("")
            );
            return;
        }
        let base_preset = json_string(&baseline, "preset").unwrap_or_default();
        assert_eq!(
            base_preset, preset.name,
            "baseline preset mismatch: cannot compare {base_preset} vs {}",
            preset.name
        );
        // A lossy-policy baseline inflates records/sec; refuse to gate
        // one configuration against a document measuring another.
        let base_policy = json_string(&baseline, "policy").unwrap_or_default();
        assert_eq!(
            base_policy, policy_name,
            "baseline backpressure policy mismatch: cannot compare {base_policy} vs {policy_name}",
        );
        // Records/sec scales with the worker count, so a baseline from a
        // different --shards is not comparable either (CI pins --shards).
        let base_shards = json_number(&baseline, "shards").unwrap_or(0.0) as usize;
        assert_eq!(
            base_shards, shards,
            "baseline shard-count mismatch: cannot compare {base_shards} vs {shards} \
             (pass --shards {base_shards} to match the baseline)",
        );
        // The multivariate operator costs ~channels x a univariate step;
        // the two workloads are different experiments. (Pre-multivariate
        // baselines carry no `mv_channels` key and count as 0.)
        let base_mv = json_number(&baseline, "mv_channels").unwrap_or(0.0) as usize;
        assert_eq!(
            base_mv, mv_channels,
            "baseline mv-channel mismatch: cannot compare {base_mv} vs {mv_channels}",
        );
        // Evaluation cadence changes the per-record operator cost. A
        // pre-jump baseline carries no `jump` key: it measured the old
        // per-point behaviour, i.e. jump = 1.
        let base_jump = json_number(&baseline, "jump").unwrap_or(1.0) as usize;
        assert_eq!(
            base_jump, jump_eff,
            "baseline jump-cadence mismatch: cannot compare jump={base_jump} vs jump={jump_eff} \
             (pass --jump {base_jump} to match the baseline)",
        );
        let base_rps = json_number(&baseline, "records_per_sec").expect("baseline records_per_sec");
        let pairs = vec![("records_per_sec".to_string(), base_rps, rps)];
        let verdicts = regressions(&pairs, false, tolerance);
        let (_, base, fresh, regressed) = &verdicts[0];
        eprintln!(
            "regression check vs {}: baseline {base:.0} rec/s, fresh {fresh:.0} rec/s  {}",
            check_path.as_deref().unwrap_or(""),
            if *regressed { "REGRESSED" } else { "ok" }
        );
        if *regressed {
            eprintln!(
                "serving throughput regression beyond {:.0}%",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}
