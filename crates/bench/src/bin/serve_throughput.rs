//! `serve_throughput` — load generator for the multi-stream serving
//! engine, the serving-scale counterpart of `flink_throughput`.
//!
//! The paper's §4.4 experiment feeds each benchmark series through a
//! Flink-deployed ClaSS operator one stream at a time and reports data
//! points per second. A serving deployment instead multiplexes *many*
//! concurrent streams onto a fixed worker pool. This binary drives
//! hundreds of concurrently registered synthetic sensor streams through
//! the sharded engine (`stream_engine::serve`) and reports aggregate
//! records/sec plus tail latency, appending the numbers to
//! `BENCH_serve.json` so every PR's serving throughput is comparable to
//! its predecessors:
//!
//! ```sh
//! cargo run --release -p bench --bin serve_throughput -- --preset quick
//! cargo run --release -p bench --bin serve_throughput -- --preset quick --check BENCH_serve.json
//! ```
//!
//! `--preset quick` (the CI gate) serves 128 concurrent streams; `full`
//! serves 512. `--check BASELINE.json` exits non-zero if records/sec
//! regressed more than `--tolerance` (default 0.25) against the
//! baseline document (read before `--out` overwrites it).
//!
//! `--jump N` overrides the segmenter's jump-ahead evaluation cadence
//! (default: the [`ClassConfig`] default, the reference implementation's
//! `jump=5`; `--jump 1` restores exact per-point evaluation). The value
//! is recorded in the JSON and gated — throughput at different cadences
//! measures different operators.
//!
//! `--mv-channels C` switches every stream to a C-channel multivariate
//! sensor (paper §6 sensor fusion): channels travel interleaved through
//! one ring per stream and the shard steps a quorum-fusion
//! `MultivariateClass` per frame. The mode is recorded in the JSON and
//! never gated against a univariate baseline — records/sec measures a
//! different operator.
//!
//! `--bundle-out PATH` additionally emits a provenance-stamped
//! `class-run-bundle/v1` (seed, SIMD backend, git describe, config,
//! headline metrics) for cross-run diffing with `compare_bundles`.
//!
//! `--socket` measures the *wire path* instead of the in-process feed:
//! the engine opens a loopback [`stream_engine::IngestServer`] and
//! `--producers` concurrent TCP clients register the same streams over
//! the ingestion protocol, pump them in `--batch`-record RECORDS
//! frames (one in flight per stream), and detach. The numbers go to
//! `BENCH_net.json` (`class-net-throughput/v1`) by default and gate
//! two ways: `--check` against a committed socket baseline, and
//! `--floor-of BENCH_serve.json --floor-ratio 0.5` against the
//! in-process figure — the wire must deliver at least that fraction of
//! the direct feed's records/sec.

use bench::perf::{json_number, json_string, regressions};
use class_core::{
    ClassConfig, ClassSegmenter, MultivariateClass, MultivariateConfig, WidthSelection,
};
use datasets::{build_series, NoiseSpec, Regime};
use eval::bundle::RunBundle;
use stream_engine::{
    feed_all, serve, Backpressure, EngineConfig, IngestServer, LatencyHistogram,
    MultiChannelReplaySource, MultivariateSegmenterOperator, NetClient, NetStats, RingConfig,
    SegmenterOperator, StreamResult,
};

struct Preset {
    name: &'static str,
    streams: usize,
    points: usize,
    window: usize,
    width: usize,
}

const QUICK: Preset = Preset {
    name: "quick",
    streams: 128,
    points: 2_000,
    window: 500,
    width: 25,
};

const FULL: Preset = Preset {
    name: "full",
    streams: 512,
    points: 5_000,
    window: 1_000,
    width: 40,
};

/// A two-regime sensor stream (sine → sawtooth, benchmark noise) with a
/// per-stream seed so no two streams are identical.
fn stream_values(preset: &Preset, k: usize, seed: u64) -> Vec<f64> {
    let half = preset.points / 2;
    build_series(
        format!("serve/{k}"),
        "serve",
        &[
            (
                Regime::Sine {
                    period: 25.0 + (k % 7) as f64,
                    amp: 1.0,
                    phase: 0.0,
                },
                half,
            ),
            (
                Regime::Sawtooth {
                    period: 40.0 + (k % 5) as f64,
                    amp: 1.2,
                },
                preset.points - half,
            ),
        ],
        NoiseSpec::benchmark(),
        seed ^ k as u64,
    )
    .values
}

#[allow(clippy::too_many_arguments)]
fn render_serve_json(
    preset: &str,
    shards: usize,
    policy: &str,
    simd_backend: &str,
    mv_channels: usize,
    jump: usize,
    elapsed_s: f64,
    results: &[StreamResult<u64>],
    latency: &LatencyHistogram,
) -> String {
    let records: u64 = results.iter().map(|r| r.records_in).sum();
    let drops: u64 = results.iter().map(|r| r.drops).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"class-serve-throughput/v1\",\n");
    out.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    out.push_str(&format!("  \"shards\": {shards},\n"));
    out.push_str(&format!("  \"mv_channels\": {mv_channels},\n"));
    out.push_str(&format!("  \"jump\": {jump},\n"));
    out.push_str(&format!("  \"policy\": \"{policy}\",\n"));
    out.push_str(&format!("  \"simd_backend\": \"{simd_backend}\",\n"));
    out.push_str(&format!("  \"streams\": {},\n", results.len()));
    out.push_str(&format!("  \"records\": {records},\n"));
    out.push_str(&format!("  \"drops\": {drops},\n"));
    out.push_str(&format!("  \"elapsed_s\": {elapsed_s:.3},\n"));
    out.push_str(&format!(
        "  \"records_per_sec\": {:.1},\n",
        records as f64 / elapsed_s.max(1e-9)
    ));
    out.push_str(&format!(
        "  \"latency_p50_ns\": {},\n",
        latency.quantile(0.5).as_nanos()
    ));
    out.push_str(&format!(
        "  \"latency_p99_ns\": {},\n",
        latency.quantile(0.99).as_nanos()
    ));
    out.push_str(&format!(
        "  \"latency_max_ns\": {},\n",
        latency.max().as_nanos()
    ));
    out.push_str("  \"per_shard\": [\n");
    for shard in 0..shards {
        let shard_results: Vec<&StreamResult<u64>> =
            results.iter().filter(|r| r.shard == shard).collect();
        let records: u64 = shard_results.iter().map(|r| r.records_in).sum();
        let mut hist = LatencyHistogram::new();
        for r in &shard_results {
            hist.merge(&r.latency);
        }
        out.push_str(&format!(
            "    {{\"shard\": {shard}, \"streams\": {}, \"records\": {records}, \
             \"p99_ns\": {}}}{}\n",
            shard_results.len(),
            hist.quantile(0.99).as_nanos(),
            if shard + 1 < shards { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[allow(clippy::too_many_arguments)]
fn render_net_json(
    preset: &str,
    shards: usize,
    producers: usize,
    batch: usize,
    policy: &str,
    simd_backend: &str,
    jump: usize,
    elapsed_s: f64,
    results: &[StreamResult<u64>],
    latency: &LatencyHistogram,
    net: &NetStats,
) -> String {
    let records: u64 = results.iter().map(|r| r.records_in).sum();
    let drops: u64 = results.iter().map(|r| r.drops).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"class-net-throughput/v1\",\n");
    out.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    out.push_str(&format!("  \"shards\": {shards},\n"));
    out.push_str(&format!("  \"producers\": {producers},\n"));
    out.push_str(&format!("  \"batch\": {batch},\n"));
    out.push_str("  \"mv_channels\": 0,\n");
    out.push_str(&format!("  \"jump\": {jump},\n"));
    out.push_str(&format!("  \"policy\": \"{policy}\",\n"));
    out.push_str(&format!("  \"simd_backend\": \"{simd_backend}\",\n"));
    out.push_str(&format!("  \"streams\": {},\n", results.len()));
    out.push_str(&format!("  \"records\": {records},\n"));
    out.push_str(&format!("  \"drops\": {drops},\n"));
    out.push_str(&format!("  \"connections\": {},\n", net.accepted));
    out.push_str(&format!("  \"frames\": {},\n", net.frames()));
    out.push_str(&format!(
        "  \"throttle_events\": {},\n",
        net.throttle_events()
    ));
    out.push_str(&format!(
        "  \"protocol_errors\": {},\n",
        net.protocol_errors()
    ));
    out.push_str(&format!("  \"elapsed_s\": {elapsed_s:.3},\n"));
    out.push_str(&format!(
        "  \"records_per_sec\": {:.1},\n",
        records as f64 / elapsed_s.max(1e-9)
    ));
    out.push_str(&format!(
        "  \"latency_p50_ns\": {},\n",
        latency.quantile(0.5).as_nanos()
    ));
    out.push_str(&format!(
        "  \"latency_p99_ns\": {},\n",
        latency.quantile(0.99).as_nanos()
    ));
    out.push_str(&format!(
        "  \"latency_max_ns\": {}\n",
        latency.max().as_nanos()
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let mut preset = &QUICK;
    let mut out_override: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.25;
    let mut socket = false;
    let mut producers = 8usize;
    let mut batch = 256usize;
    let mut floor_of: Option<String> = None;
    let mut floor_ratio = 0.5;
    let mut shards = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut streams_override: Option<usize> = None;
    let mut ring = 256usize;
    let mut policy = Backpressure::Block;
    let mut seed = 0xC1A55u64;
    let mut mv_channels = 0usize;
    let mut jump: Option<usize> = None;
    let mut bundle_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--preset" => {
                preset = match grab("--preset").as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => panic!("unknown preset {other} (quick|full)"),
                };
            }
            "--shards" => shards = grab("--shards").parse().expect("numeric --shards"),
            "--streams" => {
                streams_override = Some(grab("--streams").parse().expect("numeric --streams"))
            }
            "--ring" => ring = grab("--ring").parse().expect("numeric --ring"),
            "--policy" => {
                policy = match grab("--policy").as_str() {
                    "block" => Backpressure::Block,
                    "drop-oldest" => Backpressure::DropOldest,
                    other => panic!("unknown policy {other} (block|drop-oldest)"),
                };
            }
            "--seed" => seed = grab("--seed").parse().expect("numeric --seed"),
            "--jump" => jump = Some(grab("--jump").parse().expect("numeric --jump")),
            "--mv-channels" => {
                mv_channels = grab("--mv-channels")
                    .parse()
                    .expect("numeric --mv-channels")
            }
            "--socket" => socket = true,
            "--producers" => producers = grab("--producers").parse().expect("numeric --producers"),
            "--batch" => batch = grab("--batch").parse().expect("numeric --batch"),
            "--floor-of" => floor_of = Some(grab("--floor-of")),
            "--floor-ratio" => {
                floor_ratio = grab("--floor-ratio")
                    .parse()
                    .expect("numeric --floor-ratio")
            }
            "--out" => out_override = Some(grab("--out")),
            "--bundle-out" => bundle_out = Some(grab("--bundle-out")),
            "--check" => check_path = Some(grab("--check")),
            "--tolerance" => tolerance = grab("--tolerance").parse().expect("numeric --tolerance"),
            "--help" | "-h" => {
                eprintln!(
                    "options: --preset quick|full --shards N --streams N --ring N \
                     --policy block|drop-oldest --mv-channels C --jump N --seed N \
                     --out PATH --bundle-out PATH --check BASELINE.json --tolerance F \
                     --socket --producers N --batch N --floor-of BENCH_serve.json --floor-ratio F"
                );
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    // The interleaved multi-channel transport requires the lossless
    // policy: evicting individual scalar records would desynchronize
    // frame reassembly and the run would measure a scrambled workload.
    assert!(
        mv_channels == 0 || matches!(policy, Backpressure::Block),
        "--mv-channels requires --policy block (drop-oldest would evict \
         individual channel records and desynchronize frames)"
    );
    // The wire protocol carries scalar f64 streams; the interleaved
    // multivariate transport is an in-process concern.
    assert!(
        !socket || mv_channels == 0,
        "--socket does not support --mv-channels (the ingestion protocol \
         carries scalar streams)"
    );
    assert!(
        !socket || producers > 0,
        "--producers must be at least 1 in --socket mode"
    );
    assert!(
        floor_of.is_none() || socket,
        "--floor-of only applies to --socket mode (it floors the wire \
         path against the in-process figure)"
    );
    let out_path = out_override.unwrap_or_else(|| {
        if socket {
            "BENCH_net.json".to_string()
        } else {
            "BENCH_serve.json".to_string()
        }
    });
    let baseline = check_path.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("reading baseline {p}: {e}"))
    });
    let floor_doc = floor_of.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("reading floor document {p}: {e}"))
    });

    let n_streams = streams_override.unwrap_or(preset.streams);
    let backend = class_core::simd::active_backend().name();
    let policy_name = match policy {
        Backpressure::Block => "block",
        Backpressure::DropOldest => "drop-oldest",
        Backpressure::Error => unreachable!(),
    };
    let window = preset.window;
    let width = preset.width;
    let base_cfg = move || {
        let mut cfg = ClassConfig::with_window_size(window);
        cfg.width = WidthSelection::Fixed(width);
        cfg.warmup = Some(window);
        cfg.log10_alpha = -15.0;
        if let Some(j) = jump {
            cfg.jump = j;
        }
        cfg
    };
    let jump_eff = base_cfg().jump;
    eprintln!(
        "serve_throughput: preset={} streams={n_streams} points/stream={} shards={shards} \
         ring={ring} policy={policy_name} mv_channels={mv_channels} jump={jump_eff} \
         simd_backend={backend}{}",
        preset.name,
        preset.points,
        if socket {
            format!(" socket(producers={producers} batch={batch})")
        } else {
            String::new()
        }
    );

    // Per-stream record sequences: the plain series for the univariate
    // workload, or `mv_channels` decorrelated channels interleaved
    // frame-major (the serving engine's multi-channel transport) for the
    // sensor-fusion workload.
    let data: Vec<Vec<f64>> = if mv_channels == 0 {
        (0..n_streams)
            .map(|k| stream_values(preset, k, seed))
            .collect()
    } else {
        (0..n_streams)
            .map(|k| {
                let channels: Vec<Vec<f64>> = (0..mv_channels)
                    .map(|c| stream_values(preset, k, seed ^ ((c as u64 + 1) << 32)))
                    .collect();
                MultiChannelReplaySource::new(channels).interleaved()
            })
            .collect()
    };
    let config = EngineConfig {
        shards,
        ring: RingConfig::new(ring, policy),
    };
    let started = std::time::Instant::now();
    let (results, live, net) = if socket {
        let ring_cfg = RingConfig::new(ring, policy);
        let (results, (acked, net)) = serve(config, |engine| {
            let server = IngestServer::bind("127.0.0.1:0", engine.registrar(), move |_req| {
                SegmenterOperator::new(ClassSegmenter::new(base_cfg()))
            })
            .expect("binding a loopback ingest listener");
            let addr = server.addr();
            let mut threads = Vec::new();
            for p in 0..producers {
                let chunk: Vec<(usize, Vec<f64>)> = data
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| k % producers == p)
                    .map(|(k, v)| (k, v.clone()))
                    .collect();
                threads.push(std::thread::spawn(move || {
                    let mut client = NetClient::connect(addr, &format!("bench-producer-{p}"))
                        .expect("producer connects");
                    let streams: Vec<(u32, Vec<f64>)> = chunk
                        .into_iter()
                        .map(|(k, values)| {
                            let id = client
                                .register(&format!("net-{k}"), Some(ring_cfg))
                                .expect("producer registers");
                            (id, values)
                        })
                        .collect();
                    // One RECORDS frame in flight per stream per round:
                    // sends pipeline across this producer's streams, then
                    // the round's acks are collected together.
                    let mut cursors = vec![0usize; streams.len()];
                    loop {
                        let mut inflight = 0usize;
                        for (i, (id, values)) in streams.iter().enumerate() {
                            if cursors[i] >= values.len() {
                                continue;
                            }
                            let end = (cursors[i] + batch).min(values.len());
                            client
                                .send_records_nowait(*id, &values[cursors[i]..end])
                                .expect("producer sends");
                            cursors[i] = end;
                            inflight += 1;
                        }
                        if inflight == 0 {
                            break;
                        }
                        for _ in 0..inflight {
                            client.recv_ack().expect("producer collects acks");
                        }
                    }
                    let mut acked = 0u64;
                    for (id, _) in &streams {
                        acked += client.detach(*id).expect("producer detaches").received;
                    }
                    acked
                }));
            }
            let acked: u64 = threads
                .into_iter()
                .map(|t| t.join().expect("producer thread completes"))
                .sum();
            let net = server.net_stats().stats();
            drop(server); // releases the registrar before the body returns
            (acked, net)
        });
        if matches!(policy, Backpressure::Block) {
            let total: u64 = data.iter().map(|v| v.len() as u64).sum();
            assert_eq!(
                acked, total,
                "block policy delivers every record over the wire"
            );
        }
        let live = results.len();
        (results, live, Some(net))
    } else if mv_channels == 0 {
        let (results, live) = serve(config, |engine| {
            let handles: Vec<_> = (0..n_streams)
                .map(|_| {
                    engine.register(move || SegmenterOperator::new(ClassSegmenter::new(base_cfg())))
                })
                .collect();
            // All streams are registered and live before the first record
            // is fed: the engine is serving `n_streams` concurrent
            // streams on `shards` worker threads from here on.
            let live = engine.stats().active_streams();
            let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
            feed_all(handles, &slices).expect("load generator feed completes");
            live
        });
        (results, live, None)
    } else {
        let (results, live) = serve(config, |engine| {
            let handles: Vec<_> = (0..n_streams)
                .map(|_| {
                    engine.register(move || {
                        MultivariateSegmenterOperator::new(MultivariateClass::new(
                            MultivariateConfig::new(base_cfg(), mv_channels),
                            mv_channels,
                        ))
                    })
                })
                .collect();
            let live = engine.stats().active_streams();
            let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
            feed_all(handles, &slices).expect("load generator feed completes");
            live
        });
        (results, live, None)
    };
    let elapsed = started.elapsed().as_secs_f64();
    assert_eq!(live, n_streams, "every stream live before feeding");

    let mut latency = LatencyHistogram::new();
    let mut cps = 0usize;
    for r in &results {
        latency.merge(&r.latency);
        cps += r.output.len();
    }
    let records: u64 = results.iter().map(|r| r.records_in).sum();
    let drops: u64 = results.iter().map(|r| r.drops).sum();
    let rps = records as f64 / elapsed.max(1e-9);

    let json = match &net {
        Some(net) => render_net_json(
            preset.name,
            shards,
            producers,
            batch,
            policy_name,
            backend,
            jump_eff,
            elapsed,
            &results,
            &latency,
            net,
        ),
        None => render_serve_json(
            preset.name,
            shards,
            policy_name,
            backend,
            mv_channels,
            jump_eff,
            elapsed,
            &results,
            &latency,
        ),
    };
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));

    if let Some(path) = &bundle_out {
        let mut bundle = RunBundle::new(if socket {
            "net-throughput"
        } else {
            "serve-throughput"
        })
        .with_seed(seed);
        if socket {
            bundle.config("producers", producers);
            bundle.config("batch", batch);
        }
        bundle.config("preset", preset.name);
        bundle.config("shards", shards);
        bundle.config("streams", n_streams);
        bundle.config("points_per_stream", preset.points);
        bundle.config("ring", ring);
        bundle.config("policy", policy_name);
        bundle.config("mv_channels", mv_channels);
        bundle.config("jump", jump_eff);
        bundle.metric("records", records as f64);
        bundle.metric("drops", drops as f64);
        bundle.metric("change_points", cps as f64);
        bundle.metric("elapsed_s", elapsed);
        bundle.metric("records_per_sec", rps);
        bundle.metric("latency_p50_ns", latency.quantile(0.5).as_nanos() as f64);
        bundle.metric("latency_p99_ns", latency.quantile(0.99).as_nanos() as f64);
        bundle
            .write(path)
            .unwrap_or_else(|e| panic!("writing bundle {path}: {e}"));
        eprintln!("serve_throughput: bundle at {path}");
    }

    println!(
        "# serving engine throughput ({} preset{})",
        preset.name,
        if socket { ", wire path" } else { "" }
    );
    println!("concurrent streams:  {live} (on {shards} shard workers)");
    println!("records served:      {records} ({drops} dropped)");
    if let Some(net) = &net {
        println!(
            "wire path:           {} producers, {} frames, {} throttle events, {} protocol errors",
            net.accepted,
            net.frames(),
            net.throttle_events(),
            net.protocol_errors()
        );
    }
    println!("change points out:   {cps}");
    println!("wall time:           {elapsed:.3} s");
    println!("aggregate rate:      {rps:.0} records/s");
    println!(
        "operator latency:    p50 {:?}, p99 {:?}, max {:?}",
        latency.quantile(0.5),
        latency.quantile(0.99),
        latency.max()
    );
    eprintln!("wrote {out_path}");

    // Wire-path floor: the socket tier must deliver at least
    // `--floor-ratio` of the in-process feed's records/sec. Measured
    // against a fresh in-process document from the same machine, so it
    // gates the ingestion tier's overhead, not the hardware.
    if let Some(floor) = floor_doc {
        let floor_path = floor_of.as_deref().unwrap_or("");
        let floor_backend = json_string(&floor, "simd_backend").unwrap_or_default();
        if floor_backend != backend {
            eprintln!(
                "floor check SKIPPED: floor document backend {floor_backend:?} != fresh backend \
                 {backend:?}; records/sec are not comparable across kernel backends"
            );
        } else {
            let floor_preset = json_string(&floor, "preset").unwrap_or_default();
            assert_eq!(
                floor_preset, preset.name,
                "floor preset mismatch: cannot floor {} against {floor_preset}",
                preset.name
            );
            let floor_policy = json_string(&floor, "policy").unwrap_or_default();
            assert_eq!(
                floor_policy, policy_name,
                "floor backpressure policy mismatch: cannot floor {policy_name} vs {floor_policy}",
            );
            let floor_shards = json_number(&floor, "shards").unwrap_or(0.0) as usize;
            assert_eq!(
                floor_shards, shards,
                "floor shard-count mismatch: cannot floor {shards} vs {floor_shards}",
            );
            let floor_jump = json_number(&floor, "jump").unwrap_or(1.0) as usize;
            assert_eq!(
                floor_jump, jump_eff,
                "floor jump-cadence mismatch: cannot floor jump={jump_eff} vs jump={floor_jump}",
            );
            let floor_rps =
                json_number(&floor, "records_per_sec").expect("floor document records_per_sec");
            let need = floor_ratio * floor_rps;
            let ok = rps >= need;
            eprintln!(
                "floor check vs {floor_path}: in-process {floor_rps:.0} rec/s x {floor_ratio} = \
                 {need:.0} rec/s required, wire {rps:.0} rec/s  {}",
                if ok { "ok" } else { "BELOW FLOOR" }
            );
            if !ok {
                eprintln!(
                    "wire-path throughput fell below {:.0}% of the in-process feed",
                    floor_ratio * 100.0
                );
                std::process::exit(1);
            }
        }
    }

    if let Some(baseline) = baseline {
        // Operator cost (and therefore records/sec) depends on the
        // kernel backend; a scalar-vs-AVX2 comparison measures the
        // hardware, not the PR. Skip loudly rather than fail, matching
        // perf_trajectory's gate. (Pre-backend baselines skip too.)
        let base_backend = json_string(&baseline, "simd_backend").unwrap_or_default();
        if base_backend != backend {
            eprintln!(
                "regression check SKIPPED: baseline backend {base_backend:?} != fresh backend \
                 {backend:?}; records/sec are not comparable across kernel backends \
                 (re-commit {} from matching hardware to re-arm the gate)",
                check_path.as_deref().unwrap_or("")
            );
            return;
        }
        // A socket baseline measures the wire path, an in-process one
        // the direct feed; never gate one mode against the other.
        let want_schema = if socket {
            "class-net-throughput/v1"
        } else {
            "class-serve-throughput/v1"
        };
        let base_schema = json_string(&baseline, "schema").unwrap_or_default();
        assert_eq!(
            base_schema, want_schema,
            "baseline schema mismatch: cannot gate {want_schema} against {base_schema}",
        );
        if socket {
            let base_producers = json_number(&baseline, "producers").unwrap_or(0.0) as usize;
            assert_eq!(
                base_producers, producers,
                "baseline producer-count mismatch: cannot compare {base_producers} vs {producers}",
            );
            let base_batch = json_number(&baseline, "batch").unwrap_or(0.0) as usize;
            assert_eq!(
                base_batch, batch,
                "baseline batch-size mismatch: cannot compare {base_batch} vs {batch}",
            );
        }
        let base_preset = json_string(&baseline, "preset").unwrap_or_default();
        assert_eq!(
            base_preset, preset.name,
            "baseline preset mismatch: cannot compare {base_preset} vs {}",
            preset.name
        );
        // A lossy-policy baseline inflates records/sec; refuse to gate
        // one configuration against a document measuring another.
        let base_policy = json_string(&baseline, "policy").unwrap_or_default();
        assert_eq!(
            base_policy, policy_name,
            "baseline backpressure policy mismatch: cannot compare {base_policy} vs {policy_name}",
        );
        // Records/sec scales with the worker count, so a baseline from a
        // different --shards is not comparable either (CI pins --shards).
        let base_shards = json_number(&baseline, "shards").unwrap_or(0.0) as usize;
        assert_eq!(
            base_shards, shards,
            "baseline shard-count mismatch: cannot compare {base_shards} vs {shards} \
             (pass --shards {base_shards} to match the baseline)",
        );
        // The multivariate operator costs ~channels x a univariate step;
        // the two workloads are different experiments. (Pre-multivariate
        // baselines carry no `mv_channels` key and count as 0.)
        let base_mv = json_number(&baseline, "mv_channels").unwrap_or(0.0) as usize;
        assert_eq!(
            base_mv, mv_channels,
            "baseline mv-channel mismatch: cannot compare {base_mv} vs {mv_channels}",
        );
        // Evaluation cadence changes the per-record operator cost. A
        // pre-jump baseline carries no `jump` key: it measured the old
        // per-point behaviour, i.e. jump = 1.
        let base_jump = json_number(&baseline, "jump").unwrap_or(1.0) as usize;
        assert_eq!(
            base_jump, jump_eff,
            "baseline jump-cadence mismatch: cannot compare jump={base_jump} vs jump={jump_eff} \
             (pass --jump {base_jump} to match the baseline)",
        );
        let base_rps = json_number(&baseline, "records_per_sec").expect("baseline records_per_sec");
        let pairs = vec![("records_per_sec".to_string(), base_rps, rps)];
        let verdicts = regressions(&pairs, false, tolerance);
        let (_, base, fresh, regressed) = &verdicts[0];
        eprintln!(
            "regression check vs {}: baseline {base:.0} rec/s, fresh {fresh:.0} rec/s  {}",
            check_path.as_deref().unwrap_or(""),
            if *regressed { "REGRESSED" } else { "ok" }
        );
        if *regressed {
            eprintln!(
                "serving throughput regression beyond {:.0}%",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}
