//! Regenerates **Figure 7**: per-series scalability of ClaSS vs FLOSS —
//! runtime against Covering score, subsequence width, series length and
//! number of change points. Prints the scatter rows (TSV) plus binned
//! medians for the shape comparison.

use bench::{all_series, eval_group, Args};
use eval::AlgoSpec;

fn main() {
    let args = Args::parse();
    let series = all_series(&args);
    let algos = vec![
        AlgoSpec::Class(class_core::ClassConfig::with_window_size(args.window)),
        AlgoSpec::Baseline {
            kind: competitors::CompetitorKind::Floss,
            window_size: args.window,
        },
    ];
    eprintln!(
        "running {} series x 2 algos on {} threads...",
        series.len(),
        args.threads
    );
    let g = eval_group("all", &algos, &series, args.threads);

    println!("# Figure 7 — scalability of ClaSS vs FLOSS (per-series)");
    println!("\n## scatter rows\n");
    println!("algo\tseries\truntime_ms\tcovering\twidth\tlength\tn_cps");
    let widths: Vec<usize> = series.iter().map(|s| s.width).collect();
    let lens: Vec<usize> = series.iter().map(|s| s.len()).collect();
    let cps: Vec<usize> = series.iter().map(|s| s.change_points.len()).collect();
    let n = series.len();
    for (i, r) in g.results.iter().enumerate() {
        let s = i % n;
        println!(
            "{}\t{}\t{:.3}\t{:.3}\t{}\t{}\t{}",
            r.algo,
            r.series,
            r.runtime.as_secs_f64() * 1e3,
            r.covering,
            widths[s],
            lens[s],
            cps[s]
        );
    }

    // Binned medians of runtime vs length: the paper's headline shape is
    // "both grow with length; ClaSS consistently faster for large TS".
    println!("\n## runtime vs length (binned medians)\n");
    println!("| length bin | ClaSS median ms | FLOSS median ms | speedup |");
    println!("|---|---|---|---|");
    let max_len = *lens.iter().max().unwrap_or(&1);
    let bins = 6usize;
    for b in 0..bins {
        let lo = max_len * b / bins;
        let hi = max_len * (b + 1) / bins;
        let sel = |algo: &str| -> Vec<f64> {
            g.results
                .iter()
                .enumerate()
                .filter(|(i, r)| {
                    let s = i % n;
                    r.algo == algo && lens[s] > lo && lens[s] <= hi
                })
                .map(|(_, r)| r.runtime.as_secs_f64() * 1e3)
                .collect()
        };
        let med = |mut v: Vec<f64>| -> Option<f64> {
            if v.is_empty() {
                return None;
            }
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Some(v[v.len() / 2])
        };
        if let (Some(c), Some(f)) = (med(sel("ClaSS")), med(sel("FLOSS"))) {
            println!(
                "| ({lo}, {hi}] | {c:.1} | {f:.1} | {:.2}x |",
                f / c.max(1e-9)
            );
        }
    }

    // Totals (the paper: ClaSS 109 h vs FLOSS 1109 h on their testbed).
    let t_class: f64 = g
        .results
        .iter()
        .filter(|r| r.algo == "ClaSS")
        .map(|r| r.runtime.as_secs_f64())
        .sum();
    let t_floss: f64 = g
        .results
        .iter()
        .filter(|r| r.algo == "FLOSS")
        .map(|r| r.runtime.as_secs_f64())
        .sum();
    println!(
        "\ntotal runtime: ClaSS {t_class:.1} s, FLOSS {t_floss:.1} s (FLOSS/ClaSS = {:.2}x)",
        t_floss / t_class.max(1e-9)
    );
}
