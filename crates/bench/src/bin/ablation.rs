//! Regenerates the **§4.2 ablation study**: the seven major design choices
//! of ClaSS, each evaluated on the ~20% tuning split of the benchmark TS
//! while the others stay at their defaults.
//!
//! Choices: `window-size` (a), `wss` (b), `knn` (c, d: similarity and k),
//! `score` (e), `significance` (f, g: level and sample size), or `all`.

use bench::{benchmark_series, eval_group, mean_pct, tuning_split, Args};
use class_core::{ClassConfig, SampleSize, ScoreFn, Similarity, WidthSelection, WssMethod};
use eval::{summarize, AlgoSpec};

fn run_variant(
    label: String,
    cfg: ClassConfig,
    series: &[datasets::AnnotatedSeries],
    threads: usize,
) -> (String, f64, f64, usize) {
    let g = eval_group("ablation", &[AlgoSpec::Class(cfg)], series, threads);
    let scores = &g.methods[0].scores;
    let s = summarize(scores);
    // wins are counted against the other variants by the caller; store raw.
    (label, mean_pct(scores), s.std * 100.0, 0)
}

fn print_rows(title: &str, mut rows: Vec<(String, f64, f64, usize)>) {
    println!("\n## {title}\n");
    println!("| variant | mean Covering (%) | std (%) |");
    println!("|---|---|---|");
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (label, mean, std, _) in rows {
        println!("| {label} | {mean:.1} | {std:.1} |");
    }
}

fn main() {
    let args = Args::parse();
    let series = tuning_split(&benchmark_series(&args));
    let choice = args.choice.clone().unwrap_or_else(|| "all".into());
    eprintln!(
        "ablation '{choice}' on {} tuning series, {} threads",
        series.len(),
        args.threads
    );
    println!("# Ablation study (§4.2) on the 20% tuning split");
    let base = ClassConfig::with_window_size(args.window);

    if choice == "window-size" || choice == "all" {
        let mut rows = Vec::new();
        for mult in [2usize, 4, 6, 8, 10, 14, 20] {
            let d = args.window * mult / 10;
            let mut c = base.clone();
            c.window_size = d;
            rows.push(run_variant(format!("d={d}"), c, &series, args.threads));
        }
        print_rows("(a) sliding window size", rows);
    }
    if choice == "wss" || choice == "all" {
        let mut rows = Vec::new();
        for m in WssMethod::all() {
            let mut c = base.clone();
            c.width = WidthSelection::Learn(m);
            rows.push(run_variant(m.name().to_string(), c, &series, args.threads));
        }
        print_rows("(b) window size selection", rows);
    }
    if choice == "knn" || choice == "all" {
        let mut rows = Vec::new();
        for sim in [Similarity::Pearson, Similarity::Euclidean, Similarity::Cid] {
            for k in [1usize, 3, 5, 7] {
                let mut c = base.clone();
                c.similarity = sim;
                c.k = k;
                rows.push(run_variant(
                    format!("{} k={k}", sim.name()),
                    c,
                    &series,
                    args.threads,
                ));
            }
        }
        print_rows("(c, d) similarity measure and k", rows);
    }
    if choice == "score" || choice == "all" {
        let mut rows = Vec::new();
        for score in [ScoreFn::MacroF1, ScoreFn::BalancedAccuracy] {
            let mut c = base.clone();
            c.score = score;
            rows.push(run_variant(
                score.name().to_string(),
                c,
                &series,
                args.threads,
            ));
        }
        print_rows("(e) classification score", rows);
    }
    if choice == "significance" || choice == "all" {
        let mut rows = Vec::new();
        for log10_alpha in [-10.0, -30.0, -50.0, -70.0, -100.0] {
            for sample in [
                SampleSize::Variable,
                SampleSize::Fixed(100),
                SampleSize::Fixed1000,
            ] {
                let mut c = base.clone();
                c.log10_alpha = log10_alpha;
                c.sample_size = sample;
                rows.push(run_variant(
                    format!("alpha=1e{log10_alpha:.0} sample={}", sample.name()),
                    c,
                    &series,
                    args.threads,
                ));
            }
        }
        print_rows("(f, g) significance level and sample size", rows);
    }
}
