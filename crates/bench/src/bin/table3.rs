//! Regenerates **Table 3**: summary Covering performances of ClaSS and the
//! eight competitors on the benchmark group (TSSB + UTSA) and the
//! data-archive group, plus the §4.3 wins/ties and pairwise comparisons.

use bench::{archive_series, benchmark_series, eval_group, tuning_split, Args};
use competitors::CompetitorKind;
use eval::{mean_ranks, pairwise_wins, rank_matrix, wins_line, AlgoSpec};

fn main() {
    let args = Args::parse();
    let benchmarks = {
        let s = benchmark_series(&args);
        if args.quick {
            tuning_split(&s)
        } else {
            s
        }
    };
    let archives = {
        let s = archive_series(&args);
        if args.quick {
            tuning_split(&s)
        } else {
            s
        }
    };

    // Benchmarks: full line-up. Archives: no BOCD (as in the paper, where
    // it "did not finish within days").
    let algos_bench = AlgoSpec::default_lineup(args.window);
    let algos_arch: Vec<AlgoSpec> = algos_bench
        .iter()
        .filter(|a| a.name() != CompetitorKind::Bocd.name())
        .cloned()
        .collect();

    eprintln!(
        "running {} benchmark series x {} algos and {} archive series x {} algos on {} threads...",
        benchmarks.len(),
        algos_bench.len(),
        archives.len(),
        algos_arch.len(),
        args.threads
    );
    let gb = eval_group("benchmarks", &algos_bench, &benchmarks, args.threads);
    let ga = eval_group("archives", &algos_arch, &archives, args.threads);

    println!("# Table 3 — summary Covering performances (benchmarks / data archives)");
    println!("\n## Benchmarks ({} TS)\n", benchmarks.len());
    println!("{}", eval::summary_table(&gb.methods));
    println!("{}", wins_line(&gb.methods));
    println!(
        "\n## Data archives ({} TS, BOCD excluded as in the paper)\n",
        archives.len()
    );
    println!("{}", eval::summary_table(&ga.methods));
    println!("{}", wins_line(&ga.methods));

    // Per-archive ranking (paper §4.3: "ClaSS ranks first in 5 out of 6
    // data archives").
    println!("\n## Per-archive mean ranks (archives group)\n");
    let archive_names: Vec<&str> = {
        let mut names: Vec<&str> = ga.results.iter().map(|r| r.archive).collect();
        names.sort_unstable();
        names.dedup();
        names
    };
    let n_arch_series = archives.len();
    let mut firsts = 0;
    for aname in &archive_names {
        let idx: Vec<usize> = (0..n_arch_series)
            .filter(|&s| ga.results[s].archive == *aname)
            .collect();
        let scores: Vec<Vec<f64>> = ga
            .methods
            .iter()
            .map(|m| idx.iter().map(|&s| m.scores[s]).collect())
            .collect();
        let ranks = mean_ranks(&rank_matrix(&scores));
        let mut order: Vec<usize> = (0..ranks.len()).collect();
        order.sort_by(|&a, &b| ranks[a].partial_cmp(&ranks[b]).unwrap());
        let winner = &ga.methods[order[0]].name;
        if winner == "ClaSS" {
            firsts += 1;
        }
        println!(
            "  {:<10} ({:>3} TS): 1st {} (rank {:.2}), 2nd {} (rank {:.2})",
            aname,
            idx.len(),
            winner,
            ranks[order[0]],
            ga.methods[order[1]].name,
            ranks[order[1]]
        );
    }
    println!(
        "  -> ClaSS ranks first in {firsts} of {} archives (paper: 5 of 6)",
        archive_names.len()
    );

    // Pairwise: ClaSS vs every competitor (paper: >= 77% on benchmarks,
    // >= 69% on archives).
    for (label, group) in [("benchmarks", &gb), ("archives", &ga)] {
        let scores: Vec<Vec<f64>> = group.methods.iter().map(|m| m.scores.clone()).collect();
        let class_idx = group
            .methods
            .iter()
            .position(|m| m.name == "ClaSS")
            .expect("ClaSS present");
        println!("\npairwise win rate of ClaSS on {label}:");
        for (i, m) in group.methods.iter().enumerate() {
            if i != class_idx {
                println!(
                    "  vs {:<14} {:.0}%",
                    m.name,
                    pairwise_wins(&scores, class_idx, i) * 100.0
                );
            }
        }
    }
}
