//! `compare_bundles` — diff two provenance-stamped run bundles.
//!
//! The single comparison path for every `--bundle-out` artefact
//! (`serve_throughput`, `serve_soak`, `class-cli datasets run`): load
//! two `class-run-bundle/v1` documents, check that they are comparable
//! at all (same schema version, tool, and config — anything else errors
//! loudly instead of producing a meaningless diff), then judge each
//! shared metric against a per-metric relative tolerance.
//!
//! ```sh
//! compare_bundles A.json B.json \
//!     [--tolerance METRIC=F]... [--default-tolerance F]
//! ```
//!
//! Exit codes: `0` every metric within tolerance, `1` at least one
//! violation (each named on stderr), `2` usage / IO / incomparable
//! bundles.

use eval::bundle::{compare, RunBundle};

const USAGE: &str = "usage: compare_bundles A.json B.json \
     [--tolerance METRIC=F]... [--default-tolerance F]";

fn fail(msg: &str) -> ! {
    eprintln!("compare_bundles: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut overrides: Vec<(String, f64)> = Vec::new();
    let mut default_tolerance: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let spec = it
                    .next()
                    .unwrap_or_else(|| fail("--tolerance requires METRIC=F"));
                let (metric, value) = spec
                    .split_once('=')
                    .unwrap_or_else(|| fail(&format!("bad --tolerance {spec:?}: want METRIC=F")));
                let value: f64 = value
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad tolerance value {value:?}")));
                overrides.push((metric.to_string(), value));
            }
            "--default-tolerance" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| fail("--default-tolerance requires a value"));
                default_tolerance = Some(
                    v.parse()
                        .unwrap_or_else(|_| fail(&format!("bad --default-tolerance value {v:?}"))),
                );
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other if other.starts_with("--") => fail(&format!("unknown option {other}")),
            path => paths.push(path.to_string()),
        }
    }
    if paths.len() != 2 {
        fail(USAGE);
    }

    let a = RunBundle::load(&paths[0]).unwrap_or_else(|e| fail(&e));
    let b = RunBundle::load(&paths[1]).unwrap_or_else(|e| fail(&e));
    let report = compare(&a, &b, &overrides, default_tolerance).unwrap_or_else(|e| fail(&e));

    println!(
        "comparing {} ({} seed={:?} {}) vs {} ({} seed={:?} {})",
        paths[0],
        a.git_describe,
        a.seed,
        a.simd_backend,
        paths[1],
        b.git_describe,
        b.seed,
        b.simd_backend
    );
    for note in &report.notes {
        println!("note: {note}");
    }
    println!(
        "{:<28} {:>16} {:>16} {:>9} {:>9}  verdict",
        "metric", "a", "b", "delta%", "tol%"
    );
    for d in &report.diffs {
        println!(
            "{:<28} {:>16} {:>16} {:>8.2}% {:>8.0}%  {}",
            d.name,
            d.a,
            d.b,
            d.rel * 100.0,
            d.tolerance * 100.0,
            if d.beyond { "VIOLATION" } else { "ok" }
        );
    }

    let violations = report.violations();
    if violations.is_empty() {
        println!(
            "compare_bundles: OK — {} metrics within tolerance",
            report.diffs.len()
        );
    } else {
        for d in &violations {
            eprintln!(
                "compare_bundles: metric {} differs by {:.2}% (tolerance {:.0}%): {} vs {}",
                d.name,
                d.rel * 100.0,
                d.tolerance * 100.0,
                d.a,
                d.b
            );
        }
        std::process::exit(1);
    }
}
