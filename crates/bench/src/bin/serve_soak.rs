//! `serve_soak` — survivability proof for the fault-tolerant serving
//! engine (requires the `fault-inject` feature).
//!
//! The paper's §4.4 deployment argument is that ClaSS runs as an
//! always-on operator inside a stream processor; an always-on operator
//! meets faults. This binary serves a fleet of ClaSS streams under a
//! **seeded, deterministic fault plan** (operator panics, NaN bursts,
//! flatlined sensors, source stalls, ring-overflow storms) and asserts
//! the engine's fault-tolerance contract end to end:
//!
//! * **no deadlock** — the feeder completes even though streams panic
//!   and quarantine mid-run (quarantined rings keep draining);
//! * **exact accounting** — for every stream, faulted or not,
//!   `records_in + drops + quarantined_after == pushed`, and the
//!   feeder-side ledger `offered == accepted + rejected` matches;
//! * **survivability floor** — only streams the plan targets may end
//!   quarantined; every untargeted stream processes its full feed;
//! * **bounded memory** — peak RSS (`VmHWM`) stays under a fixed cap,
//!   and in timed mode the post-warmup *growth* is bounded too (the
//!   leak detector: dozens of rounds may not raise the high-water mark
//!   by more than an allocator-noise allowance).
//!
//! Two modes:
//!
//! * **single-shot** (default): one seeded fleet, as in PR 7.
//! * **timed** (`--minutes F`): repeat seeded fleets (round `r` runs
//!   under `seed ^ mix(r)`) until the deadline — the hours-scale soak;
//!   CI runs a short preset of the same loop. `--mv-channels C` makes
//!   every stream a fused multivariate stream (C channels interleaved
//!   through one ring, per-channel guards retiring bad channels, the
//!   `VoteFuser` re-quorumming over survivors).
//!
//! Observability rides along: `--metrics-addr HOST:PORT` serves live
//! Prometheus text at `/metrics` (and `/stats.json`) across all rounds,
//! `--stats-json PATH` writes periodic JSON snapshots for headless
//! runs, and `--bundle-out PATH` emits a provenance-stamped
//! `class-run-bundle/v1` for `compare_bundles`.
//!
//! ```sh
//! cargo run --release -p bench --features fault-inject --bin serve_soak -- \
//!     --preset quick --seed 20260809 --minutes 1.5 --mv-channels 3 \
//!     --metrics-addr 127.0.0.1:9599 --bundle-out BUNDLE_soak.json
//! ```
//!
//! The seed rotates per CI run (printed in the log); any failure is
//! replayable locally by passing the same `--seed`. The JSON report is
//! an uploaded artifact, not a committed baseline — a rotating seed
//! makes run-to-run numbers incomparable by design (the *bundle* of a
//! fixed-seed run is what `compare_bundles` diffs).

use class_core::{
    ChannelGuardConfig, ClassConfig, ClassSegmenter, MultivariateClass, MultivariateConfig,
    WidthSelection,
};
use datasets::{build_series, NoiseSpec, Regime};
use eval::bundle::RunBundle;
use stream_engine::{
    drive, interleave_channels, serve, silence_injected_panics, vm_hwm_kb, Backpressure,
    DriveOutcome, EngineConfig, FaultKind, FaultPlan, FaultingOperator, GuardConfig, MetricsServer,
    MultivariateSegmenterOperator, RetryPolicy, RingConfig, SegmenterOperator, SnapshotWriter,
    StreamOptions, StreamResult,
};

struct Preset {
    name: &'static str,
    streams: usize,
    points: usize,
    window: usize,
    width: usize,
}

const QUICK: Preset = Preset {
    name: "quick",
    streams: 48,
    points: 3_000,
    window: 500,
    width: 25,
};

const FULL: Preset = Preset {
    name: "full",
    streams: 256,
    points: 8_000,
    window: 1_000,
    width: 40,
};

/// Guard installed on every univariate stream: heal isolated NaNs,
/// quarantine on 8 consecutive NaNs or 16 identical values. The
/// synthetic feeds are noisy sines — no clean stream can trip either
/// detector, so any guard quarantine is attributable to the plan.
/// (Multivariate streams use per-channel guards instead: a data fault
/// retires the hit channel, it does not take down the fused stream.)
const GUARD: GuardConfig = GuardConfig {
    non_finite: stream_engine::GuardAction::Heal,
    nan_burst: 8,
    flatline: 16,
};

/// Peak-RSS cap. The quick fleet's data is ~1 MB and per-stream ClaSS
/// state is window-bounded; a leak under sustained faulting is the only
/// way past this.
const VM_HWM_CAP_KB: u64 = 1_536 * 1024;

/// Timed-mode leak bound: after the first round has warmed allocator
/// pools and per-stream state, dozens more identical rounds may not
/// raise the peak RSS by more than this allowance.
const SOAK_HWM_DELTA_KB: u64 = 128 * 1024;

fn stream_values(preset: &Preset, k: usize, channel: usize, seed: u64) -> Vec<f64> {
    let half = preset.points / 2;
    build_series(
        format!("soak/{k}.{channel}"),
        "soak",
        &[
            (
                Regime::Sine {
                    period: 25.0 + ((k + channel) % 7) as f64,
                    amp: 1.0,
                    phase: 0.3 * channel as f64,
                },
                half,
            ),
            (
                Regime::Sawtooth {
                    period: 40.0 + ((k + channel) % 5) as f64,
                    amp: 1.2,
                },
                preset.points - half,
            ),
        ],
        NoiseSpec::benchmark(),
        seed ^ (k as u64).wrapping_mul(1 + channel as u64),
    )
    .values
}

fn kind_name(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::PanicAt { .. } => "panic_at",
        FaultKind::PanicInFlush => "panic_in_flush",
        FaultKind::NanBurst { .. } => "nan_burst",
        FaultKind::Flatline { .. } => "flatline",
        FaultKind::Stall { .. } => "stall",
        FaultKind::OverflowStorm { .. } => "overflow_storm",
    }
}

/// One round's audited outcome.
struct RoundOutcome {
    records: u64,
    quarantined: usize,
    rejected: u64,
    faults: usize,
    faults_by_kind: Vec<(&'static str, usize)>,
    quarantines: Vec<(usize, u64, String)>,
}

/// Checks the fault-tolerance contract over one finished round: exact
/// per-stream ledgers, feeder-side accounting, and the survivability
/// floor (clean streams complete their full feed of `expected` records).
fn audit<Out>(
    results: &[StreamResult<Out>],
    outcome: &DriveOutcome,
    plan: &FaultPlan,
    expected: u64,
) -> RoundOutcome {
    let mut quarantined = 0usize;
    let mut records: u64 = 0;
    let mut quarantines = Vec::new();
    for (k, r) in results.iter().enumerate() {
        records += r.records_in;
        assert_eq!(
            r.accounted(),
            r.pushed,
            "stream {k}: records_in({}) + drops({}) + quarantined_after({}) != pushed({})",
            r.records_in,
            r.drops,
            r.quarantined_after,
            r.pushed
        );
        assert_eq!(
            outcome.accepted[k], r.pushed,
            "stream {k}: feeder-side accepted disagrees with the ring's pushed"
        );
        assert_eq!(
            outcome.offered[k],
            outcome.accepted[k] + outcome.rejected[k],
            "stream {k}: offered != accepted + rejected"
        );
        if r.is_quarantined() {
            quarantined += 1;
            let (cause, at_record) = r.quarantine().expect("checked is_quarantined");
            quarantines.push((r.stream, at_record, cause.to_string()));
            assert!(
                plan.fault_for(k).is_some(),
                "stream {k} quarantined but the plan never targeted it: {:?}",
                r.state
            );
        } else if plan.is_clean(k) {
            // Survivability floor: untargeted streams complete in full.
            assert_eq!(r.records_in, expected, "clean stream {k} lost records");
            assert_eq!(r.drops, 0, "clean stream {k} dropped records");
        }
    }
    let mut by_kind: Vec<(&'static str, usize)> = Vec::new();
    for f in &plan.faults {
        let name = kind_name(&f.kind);
        match by_kind.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => by_kind.push((name, 1)),
        }
    }
    RoundOutcome {
        records,
        quarantined,
        rejected: outcome.rejected.iter().sum(),
        faults: plan.faults.len(),
        faults_by_kind: by_kind,
        quarantines,
    }
}

/// The ring for stream `k`: overflow storms only reject under the
/// `error` policy; everything else rides the lossless default.
fn ring_for(plan: &FaultPlan, k: usize) -> RingConfig {
    if matches!(plan.fault_for(k), Some(FaultKind::OverflowStorm { .. })) {
        RingConfig::new(256, Backpressure::Error)
    } else {
        RingConfig::new(256, Backpressure::Block)
    }
}

struct RoundSpec<'a> {
    preset: &'a Preset,
    n_streams: usize,
    shards: usize,
    mv_channels: usize,
    seed: u64,
    density: f64,
}

/// Serves one seeded fleet to completion and audits it. Univariate
/// streams run `FaultingOperator<SegmenterOperator>` with the stream
/// guard; `mv_channels > 1` fuses that many channels per stream through
/// one ring with per-channel guards. If `stats_json` is set, a
/// [`SnapshotWriter`] follows this round's engine; its final write on
/// drop leaves the terminal snapshot for
/// `class-cli serve-status --snapshot`.
fn run_round(
    spec: &RoundSpec<'_>,
    metrics: Option<&MetricsServer>,
    stats_json: Option<&str>,
) -> RoundOutcome {
    let points = spec.preset.points;
    let records_per_stream = points * spec.mv_channels;
    let plan = FaultPlan::seeded(spec.seed, spec.n_streams, records_per_stream, spec.density);
    let mut data: Vec<Vec<f64>> = (0..spec.n_streams)
        .map(|k| {
            if spec.mv_channels > 1 {
                let channels: Vec<Vec<f64>> = (0..spec.mv_channels)
                    .map(|c| stream_values(spec.preset, k, c, spec.seed))
                    .collect();
                interleave_channels(&channels)
            } else {
                stream_values(spec.preset, k, 0, spec.seed)
            }
        })
        .collect();
    for (k, xs) in data.iter_mut().enumerate() {
        plan.corrupt(k, xs);
    }

    let window = spec.preset.window;
    let width = spec.preset.width;
    let base_cfg = move || {
        let mut cfg = ClassConfig::with_window_size(window);
        cfg.width = WidthSelection::Fixed(width);
        cfg.warmup = Some(window);
        cfg.log10_alpha = -15.0;
        cfg
    };

    let engine_cfg = EngineConfig::new(spec.shards);
    let retry = RetryPolicy::default();
    if spec.mv_channels > 1 {
        let channels = spec.mv_channels;
        let (results, outcome) = serve(engine_cfg, |engine| {
            if let Some(m) = metrics {
                m.attach(engine.stats_handle());
            }
            let _writer = stats_json.map(|path| {
                SnapshotWriter::start(
                    engine.stats_handle(),
                    path,
                    std::time::Duration::from_millis(500),
                )
            });
            let handles: Vec<_> = (0..spec.n_streams)
                .map(|k| {
                    let kind = plan.fault_for(k);
                    engine.register_with(
                        StreamOptions {
                            ring: ring_for(&plan, k),
                            name: Some(format!("soak-mv/{k}")),
                            ..StreamOptions::default()
                        },
                        move || {
                            let mut mcfg = MultivariateConfig::new(base_cfg(), channels);
                            mcfg.channel_guard = Some(ChannelGuardConfig::new(4, 16));
                            FaultingOperator::new(
                                MultivariateSegmenterOperator::new(MultivariateClass::new(
                                    mcfg, channels,
                                )),
                                kind,
                            )
                        },
                    )
                })
                .collect();
            drive(handles, &data, &plan, &retry)
        });
        let outcome = outcome.expect("no deadlock: the feeder must complete under faults");
        audit(&results, &outcome, &plan, records_per_stream as u64)
    } else {
        let (results, outcome) = serve(engine_cfg, |engine| {
            if let Some(m) = metrics {
                m.attach(engine.stats_handle());
            }
            let _writer = stats_json.map(|path| {
                SnapshotWriter::start(
                    engine.stats_handle(),
                    path,
                    std::time::Duration::from_millis(500),
                )
            });
            let handles: Vec<_> = (0..spec.n_streams)
                .map(|k| {
                    let kind = plan.fault_for(k);
                    engine.register_with(
                        StreamOptions {
                            ring: ring_for(&plan, k),
                            guard: Some(GUARD),
                            name: Some(format!("soak/{k}")),
                            ..StreamOptions::default()
                        },
                        move || {
                            FaultingOperator::new(
                                SegmenterOperator::new(ClassSegmenter::new(base_cfg())),
                                kind,
                            )
                        },
                    )
                })
                .collect();
            drive(handles, &data, &plan, &retry)
        });
        let outcome = outcome.expect("no deadlock: the feeder must complete under faults");
        audit(&results, &outcome, &plan, records_per_stream as u64)
    }
}

/// Mixes a round index into the base seed (SplitMix64 finalizer), so
/// every timed-mode round runs a distinct but replayable fault plan.
fn round_seed(seed: u64, round: u64) -> u64 {
    let mut x = seed.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn main() {
    let mut preset = &QUICK;
    let mut seed: u64 = 0x50A6_C0DE;
    let mut density = 0.25f64;
    let mut shards = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut streams_override: Option<usize> = None;
    let mut out_path = "BENCH_soak.json".to_string();
    let mut minutes: Option<f64> = None;
    let mut mv_channels: usize = 1;
    let mut metrics_addr: Option<String> = None;
    let mut stats_json: Option<String> = None;
    let mut bundle_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--preset" => {
                preset = match grab("--preset").as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => panic!("unknown preset {other} (quick|full)"),
                };
            }
            "--seed" => seed = grab("--seed").parse().expect("numeric --seed"),
            "--density" => density = grab("--density").parse().expect("numeric --density"),
            "--shards" => shards = grab("--shards").parse().expect("numeric --shards"),
            "--streams" => {
                streams_override = Some(grab("--streams").parse().expect("numeric --streams"))
            }
            "--minutes" => minutes = Some(grab("--minutes").parse().expect("numeric --minutes")),
            "--mv-channels" => {
                mv_channels = grab("--mv-channels")
                    .parse()
                    .expect("numeric --mv-channels");
                assert!(mv_channels >= 1, "--mv-channels must be >= 1");
            }
            "--metrics-addr" => metrics_addr = Some(grab("--metrics-addr")),
            "--stats-json" => stats_json = Some(grab("--stats-json")),
            "--bundle-out" => bundle_out = Some(grab("--bundle-out")),
            "--out" => out_path = grab("--out"),
            "--help" | "-h" => {
                eprintln!(
                    "options: --preset quick|full --seed N --density F --shards N \
                     --streams N --minutes F --mv-channels C --metrics-addr HOST:PORT \
                     --stats-json PATH --bundle-out PATH --out PATH"
                );
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    silence_injected_panics();

    let n_streams = streams_override.unwrap_or(preset.streams);
    let points = preset.points;
    let metrics = metrics_addr.map(|addr| {
        let server = MetricsServer::bind(&addr)
            .unwrap_or_else(|e| panic!("binding metrics endpoint {addr}: {e}"));
        eprintln!("serve_soak: metrics at http://{}/metrics", server.addr());
        server
    });
    eprintln!(
        "serve_soak: preset={} streams={n_streams} points/stream={points} mv_channels={mv_channels} \
         shards={shards} seed={seed} density={density} mode={}",
        preset.name,
        match minutes {
            Some(m) => format!("timed({m} min)"),
            None => "single-shot".to_string(),
        }
    );

    let started = std::time::Instant::now();
    let mut rounds = 0u64;
    let mut total = RoundOutcome {
        records: 0,
        quarantined: 0,
        rejected: 0,
        faults: 0,
        faults_by_kind: Vec::new(),
        quarantines: Vec::new(),
    };
    let mut hwm_after_first: Option<u64> = None;
    let deadline =
        minutes.map(|m| started + std::time::Duration::from_secs_f64((m * 60.0).max(1.0)));
    loop {
        let spec = RoundSpec {
            preset,
            n_streams,
            shards,
            mv_channels,
            seed: if minutes.is_some() {
                round_seed(seed, rounds)
            } else {
                seed
            },
            density,
        };
        let o = run_round(&spec, metrics.as_ref(), stats_json.as_deref());
        rounds += 1;
        total.records += o.records;
        total.quarantined += o.quarantined;
        total.rejected += o.rejected;
        total.faults += o.faults;
        for (name, count) in o.faults_by_kind {
            match total.faults_by_kind.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += count,
                None => total.faults_by_kind.push((name, count)),
            }
        }
        total.quarantines = o.quarantines; // keep the latest round's detail
        if hwm_after_first.is_none() {
            hwm_after_first = vm_hwm_kb();
        }
        match deadline {
            Some(d) if std::time::Instant::now() < d => {
                eprintln!(
                    "serve_soak: round {rounds} done — {} records, {} quarantined, \
                     {:.0}s to deadline",
                    o.records,
                    o.quarantined,
                    (d - std::time::Instant::now()).as_secs_f64()
                );
            }
            _ => break,
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    let hwm = vm_hwm_kb();
    if let Some(kb) = hwm {
        assert!(
            kb < VM_HWM_CAP_KB,
            "peak RSS {kb} kB exceeds the {VM_HWM_CAP_KB} kB soak cap"
        );
    }
    let hwm_delta = match (hwm_after_first, hwm) {
        (Some(first), Some(last)) if rounds > 1 => {
            let delta = last.saturating_sub(first);
            assert!(
                delta <= SOAK_HWM_DELTA_KB,
                "peak RSS grew {delta} kB over {rounds} rounds \
                 (> {SOAK_HWM_DELTA_KB} kB leak bound)"
            );
            Some(delta)
        }
        _ => None,
    };

    let records_per_sec = total.records as f64 / elapsed.max(1e-9);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"class-serve-soak/v1\",\n");
    json.push_str(&format!("  \"preset\": \"{}\",\n", preset.name));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"density\": {density},\n"));
    json.push_str(&format!("  \"shards\": {shards},\n"));
    json.push_str(&format!("  \"streams\": {n_streams},\n"));
    json.push_str(&format!("  \"points_per_stream\": {points},\n"));
    json.push_str(&format!("  \"mv_channels\": {mv_channels},\n"));
    json.push_str(&format!("  \"rounds\": {rounds},\n"));
    json.push_str(&format!("  \"faults\": {},\n", total.faults));
    json.push_str("  \"faults_by_kind\": {");
    for (i, (name, count)) in total.faults_by_kind.iter().enumerate() {
        json.push_str(&format!(
            "\"{name}\": {count}{}",
            if i + 1 < total.faults_by_kind.len() {
                ", "
            } else {
                ""
            }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!("  \"quarantined\": {},\n", total.quarantined));
    json.push_str(&format!("  \"records\": {},\n", total.records));
    json.push_str(&format!("  \"rejected_at_edge\": {},\n", total.rejected));
    json.push_str(&format!("  \"elapsed_s\": {elapsed:.3},\n"));
    json.push_str(&format!("  \"records_per_sec\": {records_per_sec:.1},\n"));
    match hwm {
        Some(kb) => json.push_str(&format!("  \"vm_hwm_kb\": {kb},\n")),
        None => json.push_str("  \"vm_hwm_kb\": null,\n"),
    }
    match hwm_delta {
        Some(kb) => json.push_str(&format!("  \"vm_hwm_delta_kb\": {kb},\n")),
        None => json.push_str("  \"vm_hwm_delta_kb\": null,\n"),
    }
    json.push_str("  \"last_round_quarantines\": [\n");
    for (i, (stream, at_record, cause)) in total.quarantines.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"stream\": {stream}, \"at_record\": {at_record}, \"cause\": \"{}\"}}{}\n",
            cause.replace('\\', "\\\\").replace('"', "\\\""),
            if i + 1 < total.quarantines.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));

    if let Some(path) = bundle_out {
        let mut bundle = RunBundle::new("serve-soak").with_seed(seed);
        bundle.config("preset", preset.name);
        bundle.config("density", density);
        bundle.config("shards", shards);
        bundle.config("streams", n_streams);
        bundle.config("points_per_stream", points);
        bundle.config("mv_channels", mv_channels);
        bundle.config(
            "mode",
            match minutes {
                Some(m) => format!("timed:{m}"),
                None => "single-shot".to_string(),
            },
        );
        bundle.metric("rounds", rounds as f64);
        bundle.metric("records", total.records as f64);
        bundle.metric("quarantined", total.quarantined as f64);
        bundle.metric(
            "survived_last_round",
            (n_streams - total.quarantines.len()) as f64,
        );
        bundle.metric("faults", total.faults as f64);
        bundle.metric("elapsed_s", elapsed);
        bundle.metric("records_per_sec", records_per_sec);
        if let Some(kb) = hwm {
            bundle.metric("vm_hwm_kb", kb as f64);
        }
        bundle
            .write(&path)
            .unwrap_or_else(|e| panic!("writing bundle {path}: {e}"));
        eprintln!("serve_soak: bundle at {path}");
    }

    if let Some(m) = &metrics {
        eprintln!(
            "serve_soak: metrics endpoint answered {} scrapes",
            m.scrapes()
        );
    }
    eprintln!(
        "serve_soak: OK — {} rounds, {}/{} streams quarantined in the last round \
         (all plan targets), {} records in {elapsed:.2}s, {} rejected at the edge, \
         report at {out_path}",
        rounds,
        total.quarantines.len(),
        n_streams,
        total.records,
        total.rejected
    );
    println!("{json}");
}
