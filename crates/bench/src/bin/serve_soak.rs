//! `serve_soak` — survivability proof for the fault-tolerant serving
//! engine (requires the `fault-inject` feature).
//!
//! The paper's §4.4 deployment argument is that ClaSS runs as an
//! always-on operator inside a stream processor; an always-on operator
//! meets faults. This binary serves a fleet of ClaSS streams under a
//! **seeded, deterministic fault plan** (operator panics, NaN bursts,
//! flatlined sensors, source stalls, ring-overflow storms) and asserts
//! the engine's fault-tolerance contract end to end:
//!
//! * **no deadlock** — the feeder completes even though streams panic
//!   and quarantine mid-run (quarantined rings keep draining);
//! * **exact accounting** — for every stream, faulted or not,
//!   `records_in + drops + quarantined_after == pushed`, and the
//!   feeder-side ledger `offered == accepted + rejected` matches;
//! * **survivability floor** — only streams the plan targets may end
//!   quarantined; every untargeted stream processes its full feed;
//! * **bounded memory** — peak RSS (`VmHWM`) stays under a fixed cap.
//!
//! ```sh
//! cargo run --release -p bench --features fault-inject --bin serve_soak -- \
//!     --preset quick --seed 20260809 --out BENCH_soak.json
//! ```
//!
//! The seed rotates per CI run (printed in the log); any failure is
//! replayable locally by passing the same `--seed`. The JSON report is
//! an uploaded artifact, not a committed baseline — a rotating seed
//! makes run-to-run numbers incomparable by design.

use class_core::{ClassConfig, ClassSegmenter, WidthSelection};
use datasets::{build_series, NoiseSpec, Regime};
use stream_engine::{
    drive, serve, silence_injected_panics, Backpressure, EngineConfig, FaultKind, FaultPlan,
    FaultingOperator, GuardConfig, RetryPolicy, RingConfig, SegmenterOperator, StreamOptions,
};

struct Preset {
    name: &'static str,
    streams: usize,
    points: usize,
    window: usize,
    width: usize,
}

const QUICK: Preset = Preset {
    name: "quick",
    streams: 48,
    points: 3_000,
    window: 500,
    width: 25,
};

const FULL: Preset = Preset {
    name: "full",
    streams: 256,
    points: 8_000,
    window: 1_000,
    width: 40,
};

/// Guard installed on every stream: heal isolated NaNs, quarantine on 8
/// consecutive NaNs or 16 identical values. The synthetic feeds are
/// noisy sines — no clean stream can trip either detector, so any guard
/// quarantine is attributable to the plan.
const GUARD: GuardConfig = GuardConfig {
    non_finite: stream_engine::GuardAction::Heal,
    nan_burst: 8,
    flatline: 16,
};

/// Peak-RSS cap. The quick fleet's data is ~1 MB and per-stream ClaSS
/// state is window-bounded; a leak under sustained faulting is the only
/// way past this.
const VM_HWM_CAP_KB: u64 = 1_536 * 1024;

fn stream_values(preset: &Preset, k: usize, seed: u64) -> Vec<f64> {
    let half = preset.points / 2;
    build_series(
        format!("soak/{k}"),
        "soak",
        &[
            (
                Regime::Sine {
                    period: 25.0 + (k % 7) as f64,
                    amp: 1.0,
                    phase: 0.0,
                },
                half,
            ),
            (
                Regime::Sawtooth {
                    period: 40.0 + (k % 5) as f64,
                    amp: 1.2,
                },
                preset.points - half,
            ),
        ],
        NoiseSpec::benchmark(),
        seed ^ k as u64,
    )
    .values
}

/// Peak resident set size in kB from `/proc/self/status`, if available.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn kind_name(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::PanicAt { .. } => "panic_at",
        FaultKind::PanicInFlush => "panic_in_flush",
        FaultKind::NanBurst { .. } => "nan_burst",
        FaultKind::Flatline { .. } => "flatline",
        FaultKind::Stall { .. } => "stall",
        FaultKind::OverflowStorm { .. } => "overflow_storm",
    }
}

fn main() {
    let mut preset = &QUICK;
    let mut seed: u64 = 0x50A6_C0DE;
    let mut density = 0.25f64;
    let mut shards = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut streams_override: Option<usize> = None;
    let mut out_path = "BENCH_soak.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--preset" => {
                preset = match grab("--preset").as_str() {
                    "quick" => &QUICK,
                    "full" => &FULL,
                    other => panic!("unknown preset {other} (quick|full)"),
                };
            }
            "--seed" => seed = grab("--seed").parse().expect("numeric --seed"),
            "--density" => density = grab("--density").parse().expect("numeric --density"),
            "--shards" => shards = grab("--shards").parse().expect("numeric --shards"),
            "--streams" => {
                streams_override = Some(grab("--streams").parse().expect("numeric --streams"))
            }
            "--out" => out_path = grab("--out"),
            "--help" | "-h" => {
                eprintln!(
                    "options: --preset quick|full --seed N --density F --shards N \
                     --streams N --out PATH"
                );
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    silence_injected_panics();

    let n_streams = streams_override.unwrap_or(preset.streams);
    let points = preset.points;
    let plan = FaultPlan::seeded(seed, n_streams, points, density);
    eprintln!(
        "serve_soak: preset={} streams={n_streams} points/stream={points} shards={shards} \
         seed={seed} density={density} faults={}",
        preset.name,
        plan.faults.len()
    );
    for f in &plan.faults {
        eprintln!("  fault: stream {} {:?}", f.stream, f.kind);
    }

    // Build the feeds, then let the plan corrupt the data-fault targets.
    let mut data: Vec<Vec<f64>> = (0..n_streams)
        .map(|k| stream_values(preset, k, seed))
        .collect();
    for (k, xs) in data.iter_mut().enumerate() {
        plan.corrupt(k, xs);
    }

    let window = preset.window;
    let width = preset.width;
    let base_cfg = move || {
        let mut cfg = ClassConfig::with_window_size(window);
        cfg.width = WidthSelection::Fixed(width);
        cfg.warmup = Some(window);
        cfg.log10_alpha = -15.0;
        cfg
    };

    let started = std::time::Instant::now();
    let (results, outcome) = serve(EngineConfig::new(shards), |engine| {
        let handles: Vec<_> = (0..n_streams)
            .map(|k| {
                let kind = plan.fault_for(k);
                // Overflow storms only reject under the `error` policy;
                // everything else rides the lossless default.
                let ring = if matches!(kind, Some(FaultKind::OverflowStorm { .. })) {
                    RingConfig::new(256, Backpressure::Error)
                } else {
                    RingConfig::new(256, Backpressure::Block)
                };
                engine.register_with(
                    StreamOptions {
                        ring,
                        guard: Some(GUARD),
                        ..StreamOptions::default()
                    },
                    move || {
                        FaultingOperator::new(
                            SegmenterOperator::new(ClassSegmenter::new(base_cfg())),
                            kind,
                        )
                    },
                )
            })
            .collect();
        drive(handles, &data, &plan, &RetryPolicy::default())
    });
    let elapsed = started.elapsed().as_secs_f64();
    let outcome = outcome.expect("no deadlock: the feeder must complete under faults");

    // Exact accounting, stream by stream.
    let mut quarantined = 0usize;
    let mut records: u64 = 0;
    for (k, r) in results.iter().enumerate() {
        records += r.records_in;
        assert_eq!(
            r.accounted(),
            r.pushed,
            "stream {k}: records_in({}) + drops({}) + quarantined_after({}) != pushed({})",
            r.records_in,
            r.drops,
            r.quarantined_after,
            r.pushed
        );
        assert_eq!(
            outcome.accepted[k], r.pushed,
            "stream {k}: feeder-side accepted disagrees with the ring's pushed"
        );
        assert_eq!(
            outcome.offered[k],
            outcome.accepted[k] + outcome.rejected[k],
            "stream {k}: offered != accepted + rejected"
        );
        if r.is_quarantined() {
            quarantined += 1;
            assert!(
                plan.fault_for(k).is_some(),
                "stream {k} quarantined but the plan never targeted it: {:?}",
                r.state
            );
        } else if plan.is_clean(k) {
            // Survivability floor: untargeted streams complete in full.
            assert_eq!(r.records_in, points as u64, "clean stream {k} lost records");
            assert_eq!(r.drops, 0, "clean stream {k} dropped records");
        }
    }
    let rejected: u64 = outcome.rejected.iter().sum();
    let hwm = vm_hwm_kb();
    if let Some(kb) = hwm {
        assert!(
            kb < VM_HWM_CAP_KB,
            "peak RSS {kb} kB exceeds the {VM_HWM_CAP_KB} kB soak cap"
        );
    }

    let mut by_kind: Vec<(&'static str, usize)> = Vec::new();
    for f in &plan.faults {
        let name = kind_name(&f.kind);
        match by_kind.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => by_kind.push((name, 1)),
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"class-serve-soak/v1\",\n");
    json.push_str(&format!("  \"preset\": \"{}\",\n", preset.name));
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str(&format!("  \"density\": {density},\n"));
    json.push_str(&format!("  \"shards\": {shards},\n"));
    json.push_str(&format!("  \"streams\": {n_streams},\n"));
    json.push_str(&format!("  \"points_per_stream\": {points},\n"));
    json.push_str(&format!("  \"faults\": {},\n", plan.faults.len()));
    json.push_str("  \"faults_by_kind\": {");
    for (i, (name, count)) in by_kind.iter().enumerate() {
        json.push_str(&format!(
            "\"{name}\": {count}{}",
            if i + 1 < by_kind.len() { ", " } else { "" }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!("  \"quarantined\": {quarantined},\n"));
    json.push_str(&format!("  \"survived\": {},\n", n_streams - quarantined));
    json.push_str(&format!("  \"records\": {records},\n"));
    json.push_str(&format!("  \"rejected_at_edge\": {rejected},\n"));
    json.push_str(&format!("  \"elapsed_s\": {elapsed:.3},\n"));
    json.push_str(&format!(
        "  \"records_per_sec\": {:.1},\n",
        records as f64 / elapsed.max(1e-9)
    ));
    match hwm {
        Some(kb) => json.push_str(&format!("  \"vm_hwm_kb\": {kb},\n")),
        None => json.push_str("  \"vm_hwm_kb\": null,\n"),
    }
    json.push_str("  \"quarantines\": [\n");
    let quarantined_results: Vec<_> = results.iter().filter(|r| r.is_quarantined()).collect();
    for (i, r) in quarantined_results.iter().enumerate() {
        let (cause, at_record) = r.quarantine().expect("filtered on is_quarantined");
        json.push_str(&format!(
            "    {{\"stream\": {}, \"at_record\": {at_record}, \"cause\": \"{cause}\"}}{}\n",
            r.stream,
            if i + 1 < quarantined_results.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!(
        "serve_soak: OK — {quarantined}/{n_streams} quarantined (all plan targets), \
         {records} records in {elapsed:.2}s, {rejected} rejected at the edge, report at {out_path}"
    );
    println!("{json}");
}
