//! Regenerates **Figure 6**: total runtime vs average Covering (top left),
//! standalone data throughput (bottom left), and the sliding-window-size
//! sweep of throughput and Covering for ClaSS (right).

use bench::{
    all_series, benchmark_series, eval_group, mean_pct, mean_throughput, total_runtime_secs,
    tuning_split, Args,
};
use class_core::ClassConfig;
use eval::AlgoSpec;

fn main() {
    let args = Args::parse();
    let series = {
        let s = all_series(&args);
        if args.quick {
            tuning_split(&s)
        } else {
            s
        }
    };
    // BOCD excluded: Figure 6 covers all 592 TS, where BOCD does not finish.
    let algos: Vec<AlgoSpec> = AlgoSpec::default_lineup(args.window)
        .into_iter()
        .filter(|a| a.name() != "BOCD")
        .collect();

    eprintln!(
        "running {} series x {} algos on {} threads...",
        series.len(),
        algos.len(),
        args.threads
    );
    let g = eval_group("all", &algos, &series, args.threads);

    println!("# Figure 6 — runtime vs quality and throughput");
    println!("\n## (top/bottom left) total runtime, avg Covering, mean throughput\n");
    println!("| Method | total runtime (s) | avg Covering (%) | mean throughput (pts/s) |");
    println!("|---|---|---|---|");
    let mut rows: Vec<(String, f64, f64, f64)> = g
        .methods
        .iter()
        .map(|m| {
            (
                m.name.clone(),
                total_runtime_secs(&g.results, &m.name),
                mean_pct(&m.scores),
                mean_throughput(&g.results, &m.name),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    for (name, rt, cov, tp) in rows {
        println!("| {name} | {rt:.2} | {cov:.1} | {tp:.0} |");
    }

    // Right panels: d-sweep for ClaSS on the tuning split (the paper
    // sweeps 1k..20k on the unscaled data; the laptop profile sweeps the
    // same 10 relative sizes around the scaled default).
    let sweep_series = tuning_split(&benchmark_series(&args));
    println!(
        "\n## (right) ClaSS sliding window size sweep ({} TS)\n",
        sweep_series.len()
    );
    println!("| d | avg Covering (%) | mean throughput (pts/s) |");
    println!("|---|---|---|");
    let base = args.window;
    for mult in [1usize, 2, 4, 6, 8, 10, 13, 16, 20] {
        let d = base * mult / 10;
        if d < 200 {
            continue;
        }
        let algo = vec![AlgoSpec::Class(ClassConfig::with_window_size(d))];
        let g = eval_group("sweep", &algo, &sweep_series, args.threads);
        println!(
            "| {d} | {:.1} | {:.0} |",
            mean_pct(&g.methods[0].scores),
            mean_throughput(&g.results, "ClaSS")
        );
    }
}
