//! Naive baseline implementations used to quantify the speedups of the
//! paper's two technical contributions (§4.4 "Recomputing dot products
//! increases this runtime to 212 hours; naive distance calculations take
//! 2513 hours", and the O(d^2) cross-validation of the original ClaSP).

use class_core::crossval::{naive_split_score, ScoreFn};
use class_core::knn::StreamingKnn;
use class_core::similarity::naive;

/// k-NN of the newest subsequence with *naive distance calculations*
/// (O(d·w) per update instead of the streaming O(d)). Returns the top-k
/// (sid, score) pairs for the window held by `knn` (used purely as a data
/// container here).
pub fn naive_knn_newest(knn: &StreamingKnn, k: usize) -> Vec<(i64, f64)> {
    let w = knn.width();
    let win = knn.window();
    let l = win.len();
    if l < w {
        return Vec::new();
    }
    let newest = &win[l - w..];
    let excl = knn.config().exclusion_radius();
    let n_subs = l - w + 1;
    let mut scored: Vec<(i64, f64)> = (0..n_subs.saturating_sub(excl))
        .map(|o| {
            let sub = &win[o..o + w];
            let score = naive::pearson(sub, newest);
            (knn.oldest_sid().unwrap() + o as i64, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    scored.truncate(k);
    scored
}

/// k-NN of the newest subsequence with *recomputed dot products*: means and
/// standard deviations come from O(1)-per-subsequence running sums (as in
/// the streaming algorithm), but the dot products are recomputed per pair —
/// the paper's intermediate baseline ("recomputing dot products increases
/// this runtime to 212 hours"). Costs O(d·w) per update instead of O(d).
pub fn recomputed_dot_knn_newest(knn: &StreamingKnn, k: usize) -> Vec<(i64, f64)> {
    let w = knn.width();
    let win = knn.window();
    let l = win.len();
    if l < w {
        return Vec::new();
    }
    let newest = &win[l - w..];
    let excl = knn.config().exclusion_radius();
    let n_subs = l - w + 1;
    // Prefix sums give O(1) moments per subsequence (Eq. 1-2).
    let mut csum = vec![0.0f64; l + 1];
    let mut csum2 = vec![0.0f64; l + 1];
    for (i, &v) in win.iter().enumerate() {
        csum[i + 1] = csum[i] + v;
        csum2[i + 1] = csum2[i] + v * v;
    }
    let moment_at = |o: usize| -> (f64, f64) {
        let sum = csum[o + w] - csum[o];
        let sq = csum2[o + w] - csum2[o];
        let mu = sum / w as f64;
        (mu, (sq / w as f64 - mu * mu).max(0.0).sqrt())
    };
    let (mu_b, sig_b) = moment_at(l - w);
    let mut scored: Vec<(i64, f64)> = (0..n_subs.saturating_sub(excl))
        .map(|o| {
            let sub = &win[o..o + w];
            // The recomputed part: a fresh O(w) dot product per pair.
            let dot: f64 = sub.iter().zip(newest).map(|(a, b)| a * b).sum();
            let (mu_a, sig_a) = moment_at(o);
            let denom = w as f64 * sig_a * sig_b;
            let score = if denom < 1e-8 {
                0.0
            } else {
                ((dot - w as f64 * mu_a * mu_b) / denom).clamp(-1.0, 1.0)
            };
            (knn.oldest_sid().unwrap() + o as i64, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    scored.truncate(k);
    scored
}

/// Full ClaSP profile evaluated with the naive O(d) *per split*
/// cross-validation (the original ClaSP approach, O(d^2) per stream
/// update).
pub fn naive_full_profile(knn: &StreamingKnn, start_slot: usize, score: ScoreFn) -> Vec<f64> {
    let nn = knn.max_subsequences() - start_slot;
    (0..nn)
        .map(|p| {
            if p == 0 {
                0.0
            } else {
                naive_split_score(knn, start_slot, p, score)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use class_core::knn::KnnConfig;
    use class_core::stats::SplitMix64;

    fn feed(n: usize, d: usize, w: usize) -> StreamingKnn {
        let mut rng = SplitMix64::new(5);
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, 3));
        for _ in 0..n {
            knn.update(rng.next_f64() * 2.0 - 1.0);
        }
        knn
    }

    #[test]
    fn naive_knn_matches_streaming_for_newest() {
        let knn = feed(400, 200, 8);
        let naive = naive_knn_newest(&knn, 3);
        let (sids, scores) = knn.neighbors(knn.max_subsequences() - 1);
        assert_eq!(naive.len(), sids.len());
        for (i, &(nsid, nscore)) in naive.iter().enumerate() {
            assert!((nscore - scores[i]).abs() < 1e-9, "score {i}");
            if (nscore - scores[i]).abs() < 1e-12 {
                // Ties may order differently; scores matching is the contract.
                let _ = nsid;
            }
        }
    }

    #[test]
    fn recomputed_dot_matches_naive() {
        let knn = feed(300, 150, 10);
        let a = naive_knn_newest(&knn, 3);
        let b = recomputed_dot_knn_newest(&knn, 3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.1 - y.1).abs() < 1e-9);
        }
    }

    #[test]
    fn naive_profile_matches_incremental() {
        let knn = feed(260, 160, 7);
        let mut cv = class_core::CrossVal::new(ScoreFn::MacroF1);
        let start = knn.qstart();
        cv.compute(&knn, start);
        let naive = naive_full_profile(&knn, start, ScoreFn::MacroF1);
        assert_eq!(naive.len(), cv.profile().len());
        for (p, (a, b)) in naive.iter().zip(cv.profile()).enumerate() {
            assert!((a - b).abs() < 1e-12, "p = {p}");
        }
    }
}
