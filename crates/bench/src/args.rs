//! Minimal command-line argument parsing for the experiment binaries
//! (kept dependency-free on purpose; see EXPERIMENTS.md).

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Multiplier on the laptop-profile dataset sizes.
    pub scale: f64,
    /// Use the paper's original (unscaled) dataset sizes.
    pub paper_sizes: bool,
    /// Sliding window size `d` for ClaSS/FLOSS.
    pub window: usize,
    /// Worker threads.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Free-form sub-command (used by the ablation binary's `--choice`).
    pub choice: Option<String>,
    /// Quick mode: 20% subsample of the series (the paper's tuning split).
    pub quick: bool,
    /// Real-archive directory (`--data-dir`, falling back to the
    /// `CLASS_DATA_DIR` environment variable); `None` = synthetic only.
    pub data_dir: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scale: 1.0,
            paper_sizes: false,
            window: eval::DEFAULT_WINDOW_SIZE,
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            seed: 0xC1A55,
            choice: None,
            quick: false,
            data_dir: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`; unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut grab = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--scale" => out.scale = grab("--scale").parse().expect("numeric --scale"),
                "--paper-sizes" => out.paper_sizes = true,
                "--window" => out.window = grab("--window").parse().expect("numeric --window"),
                "--threads" => out.threads = grab("--threads").parse().expect("numeric --threads"),
                "--seed" => out.seed = grab("--seed").parse().expect("numeric --seed"),
                "--choice" => out.choice = Some(grab("--choice")),
                "--quick" => out.quick = true,
                "--data-dir" => out.data_dir = Some(grab("--data-dir")),
                "--help" | "-h" => {
                    eprintln!(
                        "options: --scale F --paper-sizes --window N --threads N --seed N \
                         --choice NAME --quick --data-dir PATH"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        out
    }

    /// Dataset generation config derived from the arguments.
    pub fn gen_config(&self) -> datasets::GenConfig {
        datasets::GenConfig {
            scale: self.scale,
            paper_sizes: self.paper_sizes,
            seed: self.seed,
        }
    }

    /// The real-archive directory: `--data-dir` wins, then
    /// `CLASS_DATA_DIR`, else `None` (pure synthetic run).
    pub fn data_dir(&self) -> Option<datasets::DataDir> {
        match &self.data_dir {
            Some(p) => Some(datasets::DataDir::open(p)),
            None => datasets::DataDir::from_env(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse("");
        assert_eq!(a.scale, 1.0);
        assert!(!a.paper_sizes);
        let a = parse("--scale 0.5 --window 1500 --threads 2 --seed 7 --quick");
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.window, 1500);
        assert_eq!(a.threads, 2);
        assert_eq!(a.seed, 7);
        assert!(a.quick);
    }

    #[test]
    fn choice_flag() {
        let a = parse("--choice window-size");
        assert_eq!(a.choice.as_deref(), Some("window-size"));
    }

    #[test]
    fn data_dir_flag_overrides_default() {
        let a = parse("--data-dir /tmp/archives");
        assert_eq!(a.data_dir.as_deref(), Some("/tmp/archives"));
        assert_eq!(
            a.data_dir().map(|d| d.root().to_path_buf()),
            Some(std::path::PathBuf::from("/tmp/archives"))
        );
    }

    #[test]
    #[should_panic]
    fn unknown_flag_panics() {
        let _ = parse("--frobnicate");
    }
}
