//! # class-core — Classification Score Stream (ClaSS)
//!
//! A from-scratch Rust implementation of **ClaSS**, the streaming time
//! series segmentation (STSS) algorithm of Ermshaus, Schäfer and Leser,
//! *"Raising the ClaSS of Streaming Time Series Segmentation"* (VLDB 2024),
//! together with all algorithmic substrates it depends on:
//!
//! * an **exact streaming k-nearest-neighbour** index over sliding-window
//!   subsequences with O(k·d) updates ([`knn`], paper Algorithm 2),
//! * an **O(d) incremental cross-validation** of the self-supervised k-NN
//!   classifier ([`crossval`], paper Algorithm 3),
//! * a **resampled Wilcoxon rank-sum** change point validation that is
//!   numerically stable down to significance levels of 1e-100 ([`stats`]),
//! * **window size selection** (SuSS, FFT, ACF, MWF) to learn the
//!   subsequence width from the stream prefix ([`wss`]),
//! * **batch ClaSP** as a reference implementation built on the same
//!   primitives ([`clasp_batch`]).
//!
//! ## Quickstart
//!
//! ```
//! use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter};
//!
//! // A stream whose frequency doubles at t = 3000.
//! let series: Vec<f64> = (0..6000)
//!     .map(|i| if i < 3000 { (i as f64 * 0.2).sin() } else { (i as f64 * 0.5).sin() })
//!     .collect();
//!
//! let mut cfg = ClassConfig::with_window_size(2000);
//! cfg.warmup = Some(1000);    // learn the width from the first 1000 points
//! cfg.log10_alpha = -15.0;    // significance level 1e-15
//! let mut class = ClassSegmenter::new(cfg);
//!
//! let mut cps = Vec::new();
//! for &x in &series {
//!     class.step(x, &mut cps); // change points are reported on the fly
//! }
//! assert!(cps.iter().any(|&cp| (cp as i64 - 3000).abs() < 500));
//! ```

#![warn(missing_docs)]

pub mod buffer;
pub mod clasp_batch;
pub mod class;
pub mod crossval;
pub mod fft;
pub mod knn;
pub mod multivariate;
pub mod segmenter;
pub mod simd;
pub mod similarity;
pub mod stats;
pub mod wss;

pub use clasp_batch::{clasp_profile, clasp_segment, ClaspConfig};
pub use class::{ClassConfig, ClassSegmenter, WidthSelection};
pub use crossval::{CrossVal, ScoreFn};
pub use knn::{KnnConfig, KnnEvent, StreamingKnn};
pub use multivariate::{
    ChannelFault, ChannelGuardConfig, ChannelSelection, FusionStrategy, MultivariateClass,
    MultivariateConfig, VoteFuser,
};
pub use segmenter::StreamingSegmenter;
pub use similarity::Similarity;
pub use stats::{BinaryGroups, SampleSize, SplitMix64};
pub use wss::{select_width, WidthBounds, WssMethod};
