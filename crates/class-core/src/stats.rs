//! Statistical machinery for change point validation (paper §3.3).
//!
//! ClaSS validates the global maximum of the classification score profile
//! with a two-sided Wilcoxon rank-sum test on the predicted cross-validation
//! labels left and right of the candidate split. Because the labels are
//! binary, the rank-sum statistic has a closed form in the four group/label
//! counts, and the heavy tie correction is exact. Significance levels as
//! extreme as 1e-100 are supported by working with the *logarithm* of the
//! p-value (the asymptotic expansion of the normal tail), so no f64
//! underflow can occur.

/// Deterministic SplitMix64 RNG. Small, fast, and dependency-free; used for
/// the label resampling of the significance test so that runs are exactly
/// reproducible from a seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift; bias is negligible for our n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Number of successes among `n` Bernoulli(p) draws.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        let mut successes = 0;
        for _ in 0..n {
            if self.next_f64() < p {
                successes += 1;
            }
        }
        successes
    }
}

/// Natural logarithm of the standard normal survival function `P(Z > z)`.
///
/// Exact via `erfc` for moderate `z`; for `z > 12` the asymptotic expansion
/// `ln P = -z^2/2 - ln(z sqrt(2 pi)) + ln(1 - 1/z^2 + 3/z^4 - ...)` is used,
/// which stays accurate far beyond the range where `erfc` underflows.
pub fn ln_normal_sf(z: f64) -> f64 {
    if z.is_nan() {
        return f64::NAN;
    }
    if z < -8.0 {
        // Survival probability is essentially 1; ln(1 - tiny) ~ -tiny.
        return (-ln_normal_sf(-z).exp()).ln_1p();
    }
    if z <= 12.0 {
        let p = 0.5 * erfc(z / core::f64::consts::SQRT_2);
        return p.max(f64::MIN_POSITIVE).ln();
    }
    let z2 = z * z;
    // Asymptotic series for Mills ratio; 4 terms are ample for z > 12.
    let series = 1.0 - 1.0 / z2 + 3.0 / (z2 * z2) - 15.0 / (z2 * z2 * z2);
    -0.5 * z2 - (z * (2.0 * core::f64::consts::PI).sqrt()).ln() + series.ln()
}

/// Complementary error function (Numerical Recipes' rational Chebyshev
/// approximation, |error| < 1.2e-7 which is far below our decision noise).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Counts describing two groups of binary labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryGroups {
    /// Size of the left group.
    pub n_left: u64,
    /// Number of 1-labels in the left group.
    pub ones_left: u64,
    /// Size of the right group.
    pub n_right: u64,
    /// Number of 1-labels in the right group.
    pub ones_right: u64,
}

impl BinaryGroups {
    /// Total number of labels.
    pub fn total(&self) -> u64 {
        self.n_left + self.n_right
    }
}

/// Natural log of the two-sided p-value of the Wilcoxon rank-sum test for
/// two groups of binary labels, using the normal approximation with exact
/// tie correction. Returns `0.0` (p = 1) for degenerate inputs (empty
/// group, or all labels identical).
pub fn ln_p_ranksum_binary(g: BinaryGroups) -> f64 {
    let n1 = g.n_left as f64;
    let n2 = g.n_right as f64;
    let n = n1 + n2;
    if g.n_left == 0 || g.n_right == 0 {
        return 0.0;
    }
    let ones = (g.ones_left + g.ones_right) as f64;
    let zeros = n - ones;
    if ones == 0.0 || zeros == 0.0 {
        return 0.0; // no variation in labels
    }
    // Average ranks: all zeros tie at (zeros + 1)/2, all ones tie at
    // zeros + (ones + 1)/2.
    let rank_zero = (zeros + 1.0) / 2.0;
    let rank_one = zeros + (ones + 1.0) / 2.0;
    let zeros_left = n1 - g.ones_left as f64;
    let w1 = zeros_left * rank_zero + g.ones_left as f64 * rank_one;
    let mean_w1 = n1 * (n + 1.0) / 2.0;
    // Tie correction: sum over tie groups of (t^3 - t).
    let tie = (zeros * zeros * zeros - zeros) + (ones * ones * ones - ones);
    let var = n1 * n2 / 12.0 * ((n + 1.0) - tie / (n * (n - 1.0)));
    if var <= 0.0 {
        return 0.0;
    }
    let z = (w1 - mean_w1).abs() / var.sqrt();
    // Two-sided: p = 2 * P(Z > z), capped at 1.
    (core::f64::consts::LN_2 + ln_normal_sf(z)).min(0.0)
}

/// How many labels the significance test resamples (paper §3.3 / §4.2 f-g).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleSize {
    /// Use the full, variable-size label configuration (no resampling).
    Variable,
    /// Resample this many labels with replacement, preserving the group
    /// proportions and each group's label distribution. The paper's default
    /// is 1000.
    #[default]
    Fixed1000,
    /// Resample an arbitrary number of labels (for the ablation study).
    Fixed(u64),
}

impl SampleSize {
    /// Numeric sample size, if fixed.
    pub fn fixed(self) -> Option<u64> {
        match self {
            SampleSize::Variable => None,
            SampleSize::Fixed1000 => Some(1000),
            SampleSize::Fixed(n) => Some(n),
        }
    }

    /// Identifier for benchmark output.
    pub fn name(self) -> String {
        match self {
            SampleSize::Variable => "variable".to_string(),
            SampleSize::Fixed1000 => "1000".to_string(),
            SampleSize::Fixed(n) => n.to_string(),
        }
    }
}

/// Resamples the two binary groups down (or up) to `target` total labels
/// with replacement, keeping the group size proportions and, in
/// expectation, each group's class distribution (paper §3.3: "1k labels are
/// randomly chosen with replacement from the cross-validation labels,
/// maintaining the class distribution").
pub fn resample_groups(g: BinaryGroups, target: u64, rng: &mut SplitMix64) -> BinaryGroups {
    let total = g.total();
    if total == 0 || target == 0 {
        return BinaryGroups {
            n_left: 0,
            ones_left: 0,
            n_right: 0,
            ones_right: 0,
        };
    }
    let n_left = ((g.n_left as u128 * target as u128 + total as u128 / 2) / total as u128) as u64;
    let n_left = n_left.min(target);
    let n_right = target - n_left;
    let p_left = if g.n_left > 0 {
        g.ones_left as f64 / g.n_left as f64
    } else {
        0.0
    };
    let p_right = if g.n_right > 0 {
        g.ones_right as f64 / g.n_right as f64
    } else {
        0.0
    };
    BinaryGroups {
        n_left,
        ones_left: rng.binomial(n_left, p_left),
        n_right,
        ones_right: rng.binomial(n_right, p_right),
    }
}

/// Significance decision for a candidate change point: resamples the label
/// groups (if configured) and compares the rank-sum log p-value against
/// `ln(alpha)`. Returns the log p-value actually used.
pub fn significance_ln_p(g: BinaryGroups, sample: SampleSize, rng: &mut SplitMix64) -> f64 {
    match sample.fixed() {
        None => ln_p_ranksum_binary(g),
        Some(target) => ln_p_ranksum_binary(resample_groups(g, target, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn splitmix_below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn binomial_edge_probabilities() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(rng.binomial(100, 0.0), 0);
        assert_eq!(rng.binomial(100, 1.0), 100);
        let k = rng.binomial(10_000, 0.5);
        assert!((4000..6000).contains(&k), "k = {k}");
    }

    #[test]
    fn ln_normal_sf_matches_known_values() {
        // P(Z > 0) = 0.5
        assert!((ln_normal_sf(0.0) - 0.5f64.ln()).abs() < 1e-7);
        // P(Z > 1.96) ~ 0.0249979
        assert!((ln_normal_sf(1.96) - 0.0249979f64.ln()).abs() < 1e-4);
        // P(Z > 6) ~ 9.8659e-10
        assert!((ln_normal_sf(6.0) - 9.8659e-10f64.ln()).abs() < 1e-3);
    }

    #[test]
    fn ln_normal_sf_extreme_tail_is_finite_and_monotone() {
        let mut prev = ln_normal_sf(10.0);
        for z in [12.0, 15.0, 20.0, 30.0, 50.0, 100.0] {
            let v = ln_normal_sf(z);
            assert!(v.is_finite(), "z = {z}");
            assert!(v < prev, "not monotone at z = {z}");
            prev = v;
        }
        // ln P(Z > 20) ~ -0.5*400 - ln(20 sqrt(2pi)) ~ -203.9
        let v = ln_normal_sf(20.0);
        assert!((-205.0..-202.0).contains(&v), "v = {v}");
    }

    #[test]
    fn ranksum_identical_groups_not_significant() {
        let g = BinaryGroups {
            n_left: 500,
            ones_left: 250,
            n_right: 500,
            ones_right: 250,
        };
        let lp = ln_p_ranksum_binary(g);
        assert!(lp > (0.9f64).ln(), "lp = {lp}");
    }

    #[test]
    fn ranksum_separated_groups_highly_significant() {
        let g = BinaryGroups {
            n_left: 500,
            ones_left: 25,
            n_right: 500,
            ones_right: 475,
        };
        let lp = ln_p_ranksum_binary(g);
        assert!(lp < (1e-50f64).ln(), "lp = {lp}");
    }

    #[test]
    fn ranksum_degenerate_inputs_give_p_one() {
        assert_eq!(
            ln_p_ranksum_binary(BinaryGroups {
                n_left: 0,
                ones_left: 0,
                n_right: 10,
                ones_right: 5
            }),
            0.0
        );
        assert_eq!(
            ln_p_ranksum_binary(BinaryGroups {
                n_left: 10,
                ones_left: 10,
                n_right: 10,
                ones_right: 10
            }),
            0.0
        );
        assert_eq!(
            ln_p_ranksum_binary(BinaryGroups {
                n_left: 10,
                ones_left: 0,
                n_right: 10,
                ones_right: 0
            }),
            0.0
        );
    }

    #[test]
    fn ranksum_is_symmetric_in_groups() {
        let a = BinaryGroups {
            n_left: 300,
            ones_left: 30,
            n_right: 200,
            ones_right: 150,
        };
        let b = BinaryGroups {
            n_left: 200,
            ones_left: 150,
            n_right: 300,
            ones_right: 30,
        };
        assert!((ln_p_ranksum_binary(a) - ln_p_ranksum_binary(b)).abs() < 1e-9);
    }

    #[test]
    fn ranksum_more_data_more_significant() {
        let small = BinaryGroups {
            n_left: 50,
            ones_left: 10,
            n_right: 50,
            ones_right: 40,
        };
        let large = BinaryGroups {
            n_left: 5000,
            ones_left: 1000,
            n_right: 5000,
            ones_right: 4000,
        };
        assert!(ln_p_ranksum_binary(large) < ln_p_ranksum_binary(small));
    }

    #[test]
    fn resampling_caps_sample_size_bias() {
        // Same proportions, wildly different sizes: after resampling to 1000
        // the log p-values should be of comparable magnitude.
        let mut rng = SplitMix64::new(9);
        let small = BinaryGroups {
            n_left: 600,
            ones_left: 120,
            n_right: 400,
            ones_right: 320,
        };
        let large = BinaryGroups {
            n_left: 60_000,
            ones_left: 12_000,
            n_right: 40_000,
            ones_right: 32_000,
        };
        let lp_small = significance_ln_p(small, SampleSize::Fixed1000, &mut rng);
        let lp_large = significance_ln_p(large, SampleSize::Fixed1000, &mut rng);
        let ratio = lp_small / lp_large;
        assert!((0.4..2.5).contains(&ratio), "ratio = {ratio}");
        // While without resampling the larger sample is vastly more extreme.
        let lp_small_v = ln_p_ranksum_binary(small);
        let lp_large_v = ln_p_ranksum_binary(large);
        assert!(lp_large_v < 10.0 * lp_small_v);
    }

    #[test]
    fn resample_preserves_proportions_roughly() {
        let mut rng = SplitMix64::new(11);
        let g = BinaryGroups {
            n_left: 800,
            ones_left: 80,
            n_right: 200,
            ones_right: 180,
        };
        let r = resample_groups(g, 1000, &mut rng);
        assert_eq!(r.total(), 1000);
        assert_eq!(r.n_left, 800);
        assert!((r.ones_left as f64 - 80.0).abs() < 40.0);
        assert!((r.ones_right as f64 - 180.0).abs() < 30.0);
    }

    #[test]
    fn sample_size_names() {
        assert_eq!(SampleSize::Variable.name(), "variable");
        assert_eq!(SampleSize::Fixed1000.name(), "1000");
        assert_eq!(SampleSize::Fixed(10).name(), "10");
        assert_eq!(SampleSize::Fixed(10).fixed(), Some(10));
        assert_eq!(SampleSize::Variable.fixed(), None);
    }
}
