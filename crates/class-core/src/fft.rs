//! A small self-contained radix-2 FFT.
//!
//! Used by the window size selection methods (dominant Fourier frequency and
//! FFT-based autocorrelation, §3.4) so that no external FFT crate is needed.
//! The implementation is an iterative in-place Cooley-Tukey transform over
//! interleaved `(re, im)` pairs.

use core::f64::consts::PI;

/// In-place complex FFT of `buf` (interleaved `re, im` pairs).
///
/// `inverse = true` computes the unscaled inverse transform; divide by `n`
/// afterwards to invert exactly (done by [`ifft`]).
///
/// # Panics
/// Panics if the number of complex points is not a power of two.
pub fn fft_inplace(buf: &mut [f64], inverse: bool) {
    assert_eq!(buf.len() % 2, 0, "interleaved complex buffer");
    let n = buf.len() / 2;
    assert!(
        n.is_power_of_two(),
        "FFT size must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            buf.swap(2 * i, 2 * j);
            buf.swap(2 * i + 1, 2 * j + 1);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (w_re, w_im) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = 2 * (i + k);
                let b = 2 * (i + k + len / 2);
                let (br, bi) = (buf[b], buf[b + 1]);
                let tr = br * cur_re - bi * cur_im;
                let ti = br * cur_im + bi * cur_re;
                let (ar, ai) = (buf[a], buf[a + 1]);
                buf[b] = ar - tr;
                buf[b + 1] = ai - ti;
                buf[a] = ar + tr;
                buf[a + 1] = ai + ti;
                let nr = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = nr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two that
/// is at least `min_len`. Returns the interleaved complex spectrum.
pub fn rfft_padded(x: &[f64], min_len: usize) -> Vec<f64> {
    let n = min_len.max(x.len()).max(1).next_power_of_two();
    let mut buf = vec![0.0; 2 * n];
    for (i, &v) in x.iter().enumerate() {
        buf[2 * i] = v;
    }
    fft_inplace(&mut buf, false);
    buf
}

/// Exact inverse FFT (in place, including the `1/n` scaling).
pub fn ifft(buf: &mut [f64]) {
    fft_inplace(buf, true);
    let n = (buf.len() / 2) as f64;
    for v in buf.iter_mut() {
        *v /= n;
    }
}

/// Biased sample autocorrelation of `x` for lags `0..max_lag`, computed via
/// FFT of the mean-centred signal in O(n log n). `acf[0]` is normalised
/// to 1 unless the signal is constant (then all entries are 0).
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Vec<f64> {
    let n = x.len();
    if n == 0 || max_lag == 0 {
        return vec![];
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let centred: Vec<f64> = x.iter().map(|&v| v - mean).collect();
    // Pad to >= 2n to make the circular convolution linear.
    let mut spec = rfft_padded(&centred, 2 * n);
    // Power spectrum.
    let m = spec.len() / 2;
    for i in 0..m {
        let (re, im) = (spec[2 * i], spec[2 * i + 1]);
        spec[2 * i] = re * re + im * im;
        spec[2 * i + 1] = 0.0;
    }
    ifft(&mut spec);
    let c0 = spec[0];
    let lags = max_lag.min(n);
    let mut acf = Vec::with_capacity(lags);
    if c0 <= 1e-12 {
        acf.resize(lags, 0.0);
        return acf;
    }
    for lag in 0..lags {
        acf.push(spec[2 * lag] / c0);
    }
    acf
}

/// Naive O(n^2) DFT reference used by tests.
#[cfg(test)]
pub fn naive_dft(x: &[f64]) -> Vec<(f64, f64)> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut re = 0.0;
            let mut im = 0.0;
            for (t, &v) in x.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f64 / n as f64;
                re += v * ang.cos();
                im += v * ang.sin();
            }
            (re, im)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_matches_naive_dft() {
        let x = [1.0, 2.0, -1.0, 0.5, 3.0, -2.0, 0.0, 1.5];
        let mut buf = vec![0.0; 16];
        for (i, &v) in x.iter().enumerate() {
            buf[2 * i] = v;
        }
        fft_inplace(&mut buf, false);
        let want = naive_dft(&x);
        for (k, &(re, im)) in want.iter().enumerate() {
            assert!((buf[2 * k] - re).abs() < 1e-9, "re[{k}]");
            assert!((buf[2 * k + 1] - im).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn fft_roundtrip_is_identity() {
        let x: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut buf = vec![0.0; 128];
        for (i, &v) in x.iter().enumerate() {
            buf[2 * i] = v;
        }
        fft_inplace(&mut buf, false);
        ifft(&mut buf);
        for (i, &v) in x.iter().enumerate() {
            assert!((buf[2 * i] - v).abs() < 1e-9);
            assert!(buf[2 * i + 1].abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn fft_rejects_non_power_of_two() {
        let mut buf = vec![0.0; 6];
        fft_inplace(&mut buf, false);
    }

    #[test]
    fn autocorrelation_of_sine_peaks_at_period() {
        let period = 25usize;
        let x: Vec<f64> = (0..500)
            .map(|i| (2.0 * PI * i as f64 / period as f64).sin())
            .collect();
        let acf = autocorrelation(&x, 100);
        assert!((acf[0] - 1.0).abs() < 1e-9);
        // Find the highest ACF value for lag >= 2: should be near the period.
        let best = (2..acf.len())
            .max_by(|&a, &b| acf[a].partial_cmp(&acf[b]).unwrap())
            .unwrap();
        assert!(
            (best as i64 - period as i64).abs() <= 1,
            "peak at {best}, expected ~{period}"
        );
    }

    #[test]
    fn autocorrelation_matches_naive() {
        let x = [0.5, 1.0, -0.5, 2.0, 0.0, -1.0, 1.5, 0.25, -0.75, 1.0];
        let n = x.len();
        let mean = x.iter().sum::<f64>() / n as f64;
        let c: Vec<f64> = x.iter().map(|v| v - mean).collect();
        let c0: f64 = c.iter().map(|v| v * v).sum();
        let acf = autocorrelation(&x, n);
        for lag in 0..n {
            let mut s = 0.0;
            for i in 0..n - lag {
                s += c[i] * c[i + lag];
            }
            assert!((acf[lag] - s / c0).abs() < 1e-9, "lag {lag}");
        }
    }

    #[test]
    fn autocorrelation_constant_signal_is_zero() {
        let x = [5.0; 32];
        let acf = autocorrelation(&x, 10);
        assert!(acf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn autocorrelation_empty_and_zero_lag() {
        assert!(autocorrelation(&[], 5).is_empty());
        assert!(autocorrelation(&[1.0, 2.0], 0).is_empty());
    }
}
