//! Spectral window size selection: most dominant Fourier frequency and
//! highest autocorrelation offset (paper §4.2 (b), "whole-series" methods).

use super::WidthBounds;
use crate::fft::{autocorrelation, rfft_padded};

/// Width from the most dominant Fourier frequency: the period of the
/// spectral bin with the largest magnitude, restricted to periods within
/// the bounds.
pub fn fft_dominant_width(x: &[f64], bounds: WidthBounds) -> usize {
    let n = x.len();
    if n < 4 {
        return bounds.min;
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let centred: Vec<f64> = x.iter().map(|&v| v - mean).collect();
    let spec = rfft_padded(&centred, n);
    let n_pad = spec.len() / 2;
    // Bin k corresponds to period n_pad / k. Restrict k so the period lies
    // within the admissible width range.
    let k_min = (n_pad as f64 / bounds.max as f64).ceil().max(1.0) as usize;
    let k_max = (n_pad as f64 / bounds.min as f64).floor() as usize;
    let k_max = k_max.min(n_pad / 2);
    if k_min > k_max {
        return bounds.min;
    }
    let mut best_k = k_min;
    let mut best_mag = f64::MIN;
    for k in k_min..=k_max {
        let (re, im) = (spec[2 * k], spec[2 * k + 1]);
        let mag = re * re + im * im;
        if mag > best_mag {
            best_mag = mag;
            best_k = k;
        }
    }
    bounds.clamp((n_pad as f64 / best_k as f64).round() as usize)
}

/// Width from the autocorrelation function: the lag with the highest ACF
/// value among local maxima within the bounds (falls back to the plain
/// argmax when the ACF has no interior local maximum).
pub fn acf_width(x: &[f64], bounds: WidthBounds) -> usize {
    let n = x.len();
    if n < 4 {
        return bounds.min;
    }
    let max_lag = bounds.max.min(n - 1) + 1;
    let acf = autocorrelation(x, max_lag + 1);
    if acf.len() <= bounds.min + 1 {
        return bounds.min;
    }
    let lo = bounds.min.max(2);
    let hi = (acf.len() - 2).min(bounds.max);
    if lo > hi {
        return bounds.min;
    }
    let mut best: Option<(usize, f64)> = None;
    for lag in lo..=hi {
        if acf[lag] > acf[lag - 1]
            && acf[lag] >= acf[lag + 1]
            && best.is_none_or(|(_, v)| acf[lag] > v)
        {
            best = Some((lag, acf[lag]));
        }
    }
    let lag = match best {
        Some((lag, _)) => lag,
        None => (lo..=hi)
            .max_by(|&a, &b| acf[a].partial_cmp(&acf[b]).unwrap())
            .unwrap_or(bounds.min),
    };
    bounds.clamp(lag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    fn two_tone(n: usize, p1: usize, p2: usize, a2: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (2.0 * PI * i as f64 / p1 as f64).sin()
                    + a2 * (2.0 * PI * i as f64 / p2 as f64).sin()
            })
            .collect()
    }

    #[test]
    fn fft_picks_the_stronger_tone() {
        let bounds = WidthBounds { min: 10, max: 300 };
        // Strong 80-period tone with a weak 23-period tone on top.
        let x = two_tone(4000, 80, 23, 0.2);
        let w = fft_dominant_width(&x, bounds);
        assert!((w as i64 - 80).unsigned_abs() <= 4, "w = {w}");
        // Flip the amplitudes: the 23-period tone must win.
        let x = two_tone(4000, 80, 23, 6.0);
        let w = fft_dominant_width(&x, bounds);
        assert!((w as i64 - 23).unsigned_abs() <= 2, "w = {w}");
    }

    #[test]
    fn acf_prefers_local_maximum_over_slow_trend() {
        // Random walk plus periodicity: the ACF decays slowly (trend) but
        // has a local bump at the period.
        let period = 60;
        let mut rng = crate::stats::SplitMix64::new(5);
        let mut level = 0.0;
        let x: Vec<f64> = (0..4000)
            .map(|i| {
                level += 0.01 * (rng.next_f64() - 0.5);
                (2.0 * PI * i as f64 / period as f64).sin() + level
            })
            .collect();
        let w = acf_width(&x, WidthBounds { min: 10, max: 300 });
        assert!((w as i64 - period as i64).unsigned_abs() <= 3, "w = {w}");
    }

    #[test]
    fn spectral_methods_handle_tiny_inputs() {
        let bounds = WidthBounds { min: 10, max: 50 };
        assert_eq!(fft_dominant_width(&[1.0, 2.0], bounds), 10);
        assert_eq!(acf_width(&[1.0, 2.0], bounds), 10);
    }
}
