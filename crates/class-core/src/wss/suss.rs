//! SuSS — Summary Statistics Subsequence window size selection
//! (Ermshaus et al., AALTD 2022; the ClaSS default, §3.4).
//!
//! Idea: a window size is large enough once windowed summary statistics
//! (mean, standard deviation, value range) of the min-max-normalised series
//! closely match the global statistics. SuSS exponentially searches for the
//! first width whose normalised score exceeds a threshold (0.89 in the
//! reference implementation) and then binary-searches the exact width,
//! giving the expected-linear / worst-case log-linear runtime quoted in the
//! paper (§3.6).

use super::{rolling_mean_std, rolling_min_max, WidthBounds};

const SUSS_THRESHOLD: f64 = 0.89;

/// Raw SuSS score of window size `w` on the min-max normalised series:
/// the mean Euclidean distance between windowed and global summary
/// statistics, scaled by `sqrt(w)` (lower = statistics better matched).
pub fn suss_score(x: &[f64], w: usize, global: (f64, f64, f64)) -> f64 {
    let (g_mean, g_std, g_range) = global;
    let (means, stds) = rolling_mean_std(x, w);
    let (mins, maxs) = rolling_min_max(x, w);
    let mut acc = 0.0;
    for i in 0..means.len() {
        let dm = means[i] - g_mean;
        let ds = stds[i] - g_std;
        let dr = (maxs[i] - mins[i]) - g_range;
        acc += (dm * dm + ds * ds + dr * dr).sqrt();
    }
    acc / means.len() as f64 / (w as f64).sqrt()
}

fn global_stats(x: &[f64]) -> (f64, f64, f64) {
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let (lo, hi) = x
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    (mean, var.sqrt(), hi - lo)
}

/// Learns a subsequence width with SuSS. The input is min-max normalised
/// internally; callers should pre-validate degenerate inputs (constant or
/// NaN series), as [`super::select_width`] does.
pub fn suss_width(x: &[f64], bounds: WidthBounds) -> usize {
    let n = x.len();
    let max_w = bounds.max.min(n.saturating_sub(1)).max(bounds.min);
    if n < 2 * bounds.min || max_w <= bounds.min {
        return bounds.min;
    }
    // Min-max normalise.
    let (lo, hi) = x
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = (hi - lo).max(1e-12);
    let norm: Vec<f64> = x.iter().map(|&v| (v - lo) / span).collect();
    let global = global_stats(&norm);

    // Normalised acceptance score in [0, 1]: 1 at the full-series scale,
    // 0 at the single-point scale.
    let hi_score = suss_score(&norm, bounds.min.max(1), global);
    let lo_score = suss_score(&norm, max_w, global);
    let denom = hi_score - lo_score;
    if denom.abs() < 1e-12 {
        return bounds.min;
    }
    let accept = |w: usize, score: f64| -> bool {
        let normed = 1.0 - (score - lo_score) / denom;
        normed >= SUSS_THRESHOLD || w >= max_w
    };

    // Exponential search for the first accepted width...
    let mut prev = bounds.min;
    let mut cur = bounds.min * 2;
    loop {
        let w = cur.min(max_w);
        if accept(w, suss_score(&norm, w, global)) {
            cur = w;
            break;
        }
        if w == max_w {
            return max_w;
        }
        prev = w;
        cur = w * 2;
    }
    // ...then binary search inside (prev, cur].
    let (mut lo_w, mut hi_w) = (prev, cur);
    while lo_w + 1 < hi_w {
        let mid = (lo_w + hi_w) / 2;
        if accept(mid, suss_score(&norm, mid, global)) {
            hi_w = mid;
        } else {
            lo_w = mid;
        }
    }
    hi_w.clamp(bounds.min, max_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    #[test]
    fn suss_score_decreases_with_window_size_on_periodic_data() {
        let x: Vec<f64> = (0..1000)
            .map(|i| (2.0 * PI * i as f64 / 30.0).sin())
            .collect();
        let (lo, hi) = x
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        let norm: Vec<f64> = x.iter().map(|&v| (v - lo) / (hi - lo)).collect();
        let g = global_stats(&norm);
        let s_small = suss_score(&norm, 5, g);
        let s_period = suss_score(&norm, 30, g);
        let s_large = suss_score(&norm, 120, g);
        assert!(s_small > s_period, "{s_small} vs {s_period}");
        assert!(s_period > s_large * 0.5, "sanity: {s_period} vs {s_large}");
    }

    #[test]
    fn suss_width_finds_period_scale_window() {
        let period = 36;
        let x: Vec<f64> = (0..2000)
            .map(|i| (2.0 * PI * i as f64 / period as f64).sin())
            .collect();
        let w = suss_width(&x, WidthBounds { min: 10, max: 500 });
        assert!(
            (period / 4..=3 * period).contains(&w),
            "suss width {w} for period {period}"
        );
    }

    #[test]
    fn suss_scales_with_period() {
        // Larger periods should generally yield larger widths.
        let make = |p: usize| -> Vec<f64> {
            (0..3000)
                .map(|i| (2.0 * PI * i as f64 / p as f64).sin())
                .collect()
        };
        let b = WidthBounds { min: 10, max: 600 };
        let w_small = suss_width(&make(20), b);
        let w_large = suss_width(&make(120), b);
        assert!(
            w_large > w_small,
            "expected monotone scale: {w_small} vs {w_large}"
        );
    }

    #[test]
    fn suss_short_input_returns_min() {
        let x = [0.0, 1.0, 0.5, 0.25];
        assert_eq!(suss_width(&x, WidthBounds { min: 10, max: 100 }), 10);
    }
}
