//! Multi-Window-Finder (Imani & Keogh, MileTS 2021) window size selection.
//!
//! MWF scores candidate window sizes by how well the moving-average curve
//! repeats after one window length: for the true period, averages taken one
//! period apart are nearly identical, so the displacement cost has a sharp
//! local minimum there. We scan the candidate range (with subsampling for
//! large ranges), pick the most prominent local minimum of the cost curve,
//! and refine it at full resolution. This is a faithful variant of MWF's
//! "moving average periodicity" principle; see EXPERIMENTS.md for the mapping.

use super::{rolling_mean_std, WidthBounds};

/// Displacement cost of window size `w`: mean absolute difference between
/// moving-average values spaced `w` apart (lower = better periodic match).
fn displacement_cost(x: &[f64], w: usize) -> f64 {
    let (means, _) = rolling_mean_std(x, w);
    if means.len() <= w {
        return f64::MAX;
    }
    let mut acc = 0.0;
    let cnt = means.len() - w;
    for i in 0..cnt {
        acc += (means[i + w] - means[i]).abs();
    }
    acc / cnt as f64
}

/// Learns a subsequence width with the Multi-Window-Finder cost.
pub fn mwf_width(x: &[f64], bounds: WidthBounds) -> usize {
    let n = x.len();
    let max_w = bounds.max.min(n / 3).max(bounds.min);
    if n < 3 * bounds.min || max_w <= bounds.min {
        return bounds.min;
    }
    // Coarse scan.
    let range = max_w - bounds.min;
    let step = (range / 200).max(1);
    let mut costs: Vec<(usize, f64)> = Vec::with_capacity(range / step + 1);
    let mut w = bounds.min;
    while w <= max_w {
        costs.push((w, displacement_cost(x, w)));
        w += step;
    }
    if costs.len() < 3 {
        return bounds.min;
    }
    // The displacement cost has minima at every multiple of the period, so
    // take the *first* local minimum whose cost is close to the global
    // minimum (the fundamental period); fall back to the global argmin.
    let cmin = costs.iter().map(|&(_, c)| c).fold(f64::MAX, f64::min);
    let cmax = costs.iter().map(|&(_, c)| c).fold(f64::MIN, f64::max);
    let thresh = cmin + 0.15 * (cmax - cmin);
    let mut first_good: Option<usize> = None;
    for i in 1..costs.len() - 1 {
        let (wc, c) = costs[i];
        if c <= costs[i - 1].1 && c <= costs[i + 1].1 && c <= thresh {
            first_good = Some(wc);
            break;
        }
    }
    let coarse = first_good.unwrap_or_else(|| {
        costs
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|&(w, _)| w)
            .unwrap_or(bounds.min)
    });
    // Refine around the coarse optimum at step 1.
    let lo = coarse.saturating_sub(step).max(bounds.min);
    let hi = (coarse + step).min(max_w);
    let refined = (lo..=hi)
        .map(|w| (w, displacement_cost(x, w)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(w, _)| w)
        .unwrap_or(coarse);
    bounds.clamp(refined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    #[test]
    fn cost_minimal_near_period() {
        let period = 48;
        let x: Vec<f64> = (0..3000)
            .map(|i| (2.0 * PI * i as f64 / period as f64).sin())
            .collect();
        let at_period = displacement_cost(&x, period);
        let off_period = displacement_cost(&x, period + period / 2);
        assert!(at_period < off_period, "{at_period} vs {off_period}");
    }

    #[test]
    fn mwf_finds_period_for_clean_sine() {
        let period = 64;
        let x: Vec<f64> = (0..4000)
            .map(|i| (2.0 * PI * i as f64 / period as f64).sin())
            .collect();
        let w = mwf_width(&x, WidthBounds { min: 10, max: 400 });
        // MWF may lock onto the period or a small multiple/fraction.
        assert!(
            w % period <= 4 || period % w <= 4 || (w as i64 - period as i64).unsigned_abs() <= 4,
            "w = {w}"
        );
    }

    #[test]
    fn mwf_short_input_returns_min() {
        assert_eq!(
            mwf_width(&[1.0, 2.0, 3.0], WidthBounds { min: 10, max: 50 }),
            10
        );
    }
}
