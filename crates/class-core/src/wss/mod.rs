//! Window size selection (WSS): learning the subsequence width `w` from the
//! first `d` stream observations (paper §3.4 and ablation study §4.2 (b)).
//!
//! Four methods are provided, mirroring the paper's ablation:
//! * [`WssMethod::Suss`] — Summary Statistics Subsequence (the ClaSS
//!   default; expected linear, worst-case log-linear runtime),
//! * [`WssMethod::FftDominant`] — most dominant Fourier frequency,
//! * [`WssMethod::Acf`] — highest autocorrelation offset,
//! * [`WssMethod::Mwf`] — Multi-Window-Finder (moving-average periodicity
//!   cost; see EXPERIMENTS.md for the approximation notes).

mod mwf;
mod spectral;
mod suss;

pub use mwf::mwf_width;
pub use spectral::{acf_width, fft_dominant_width};
pub use suss::{suss_score, suss_width};

/// Inclusive bounds for the learned subsequence width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthBounds {
    /// Smallest admissible width (default 10, as in the reference
    /// implementation of SuSS).
    pub min: usize,
    /// Largest admissible width.
    pub max: usize,
}

impl WidthBounds {
    /// Default bounds for a warm-up buffer of `n` points inside a sliding
    /// window of size `d`: widths from 10 up to `min(n / 4, d / 8, 1000)`.
    /// The cap keeps `w << d` so that the window covers the "10 to 100
    /// temporal patterns" the paper recommends (§3.5).
    pub fn for_stream(n: usize, d: usize) -> Self {
        let max = (n / 4).min(d / 8).clamp(11, 1000);
        Self { min: 10, max }
    }

    /// Clamps a width into the bounds.
    pub fn clamp(&self, w: usize) -> usize {
        w.clamp(self.min, self.max)
    }
}

/// Window size selection method (ablation study §4.2 (b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WssMethod {
    /// Summary Statistics Subsequence (paper default).
    #[default]
    Suss,
    /// Most dominant Fourier frequency.
    FftDominant,
    /// Highest autocorrelation offset.
    Acf,
    /// Multi-Window-Finder.
    Mwf,
}

impl WssMethod {
    /// Identifier used by the ablation harness.
    pub fn name(self) -> &'static str {
        match self {
            WssMethod::Suss => "suss",
            WssMethod::FftDominant => "fft",
            WssMethod::Acf => "acf",
            WssMethod::Mwf => "mwf",
        }
    }

    /// All methods, in ablation order.
    pub fn all() -> [WssMethod; 4] {
        [
            WssMethod::Suss,
            WssMethod::FftDominant,
            WssMethod::Acf,
            WssMethod::Mwf,
        ]
    }
}

/// Learns a subsequence width from `x` with the chosen method. Returns a
/// width within `bounds`; degenerate inputs (too short, constant, NaN) fall
/// back to `bounds.min`.
pub fn select_width(method: WssMethod, x: &[f64], bounds: WidthBounds) -> usize {
    if x.len() < 2 * bounds.min || !x.iter().all(|v| v.is_finite()) {
        return bounds.min;
    }
    let range = x
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    if range.1 - range.0 < 1e-12 {
        return bounds.min;
    }
    let w = match method {
        WssMethod::Suss => suss_width(x, bounds),
        WssMethod::FftDominant => fft_dominant_width(x, bounds),
        WssMethod::Acf => acf_width(x, bounds),
        WssMethod::Mwf => mwf_width(x, bounds),
    };
    bounds.clamp(w)
}

/// Rolling minimum and maximum over windows of size `w` (monotonic deque,
/// O(n)). Returns `(mins, maxs)`, each of length `n - w + 1`.
pub(crate) fn rolling_min_max(x: &[f64], w: usize) -> (Vec<f64>, Vec<f64>) {
    let n = x.len();
    assert!(w >= 1 && w <= n);
    let m = n - w + 1;
    let mut mins = Vec::with_capacity(m);
    let mut maxs = Vec::with_capacity(m);
    let mut dq_min: Vec<usize> = Vec::new();
    let mut dq_max: Vec<usize> = Vec::new();
    for i in 0..n {
        while let Some(&b) = dq_min.last() {
            if x[b] >= x[i] {
                dq_min.pop();
            } else {
                break;
            }
        }
        dq_min.push(i);
        while let Some(&b) = dq_max.last() {
            if x[b] <= x[i] {
                dq_max.pop();
            } else {
                break;
            }
        }
        dq_max.push(i);
        if i + 1 >= w {
            let lo = i + 1 - w;
            if dq_min[0] < lo {
                dq_min.remove(0);
            }
            if dq_max[0] < lo {
                dq_max.remove(0);
            }
            mins.push(x[dq_min[0]]);
            maxs.push(x[dq_max[0]]);
        }
    }
    (mins, maxs)
}

/// Rolling mean and standard deviation over windows of size `w` via prefix
/// sums, O(n). Returns `(means, stds)`, each of length `n - w + 1`.
pub(crate) fn rolling_mean_std(x: &[f64], w: usize) -> (Vec<f64>, Vec<f64>) {
    let n = x.len();
    assert!(w >= 1 && w <= n);
    let m = n - w + 1;
    let mut means = Vec::with_capacity(m);
    let mut stds = Vec::with_capacity(m);
    let mut sum = 0.0;
    let mut ssq = 0.0;
    for i in 0..n {
        sum += x[i];
        ssq += x[i] * x[i];
        if i + 1 > w {
            let out = x[i - w];
            sum -= out;
            ssq -= out * out;
        }
        if i + 1 >= w {
            let mu = sum / w as f64;
            means.push(mu);
            stds.push((ssq / w as f64 - mu * mu).max(0.0).sqrt());
        }
    }
    (means, stds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    pub(crate) fn sine_with_noise(n: usize, period: usize, seed: u64) -> Vec<f64> {
        let mut rng = crate::stats::SplitMix64::new(seed);
        (0..n)
            .map(|i| (2.0 * PI * i as f64 / period as f64).sin() + 0.05 * (rng.next_f64() - 0.5))
            .collect()
    }

    #[test]
    fn rolling_min_max_matches_naive() {
        let x: Vec<f64> = (0..60).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        for w in [1usize, 2, 5, 13, 60] {
            let (mins, maxs) = rolling_min_max(&x, w);
            for i in 0..x.len() - w + 1 {
                let win = &x[i..i + w];
                let lo = win.iter().cloned().fold(f64::MAX, f64::min);
                let hi = win.iter().cloned().fold(f64::MIN, f64::max);
                assert_eq!(mins[i], lo, "w={w} i={i}");
                assert_eq!(maxs[i], hi, "w={w} i={i}");
            }
        }
    }

    #[test]
    fn rolling_mean_std_matches_naive() {
        let x: Vec<f64> = (0..50).map(|i| ((i * 7) % 11) as f64 * 0.3 - 1.0).collect();
        for w in [1usize, 3, 10, 50] {
            let (means, stds) = rolling_mean_std(&x, w);
            for i in 0..x.len() - w + 1 {
                let win = &x[i..i + w];
                let mu = win.iter().sum::<f64>() / w as f64;
                let var = win.iter().map(|v| (v - mu) * (v - mu)).sum::<f64>() / w as f64;
                assert!((means[i] - mu).abs() < 1e-9);
                assert!((stds[i] - var.sqrt()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn spectral_methods_recover_sine_period() {
        let period = 50;
        let x = sine_with_noise(2000, period, 1);
        let bounds = WidthBounds { min: 10, max: 400 };
        let w_fft = select_width(WssMethod::FftDominant, &x, bounds);
        let w_acf = select_width(WssMethod::Acf, &x, bounds);
        assert!(
            (w_fft as i64 - period as i64).unsigned_abs() <= 3,
            "fft width {w_fft}"
        );
        assert!(
            (w_acf as i64 - period as i64).unsigned_abs() <= 3,
            "acf width {w_acf}"
        );
    }

    #[test]
    fn suss_and_mwf_are_period_scale() {
        let period = 40;
        let x = sine_with_noise(2000, period, 2);
        let bounds = WidthBounds { min: 10, max: 400 };
        let w_suss = select_width(WssMethod::Suss, &x, bounds);
        let w_mwf = select_width(WssMethod::Mwf, &x, bounds);
        // SuSS and MWF do not return the exact period but must land on the
        // right scale (a fraction to a small multiple of the period).
        assert!(
            (period / 4..=period * 4).contains(&w_suss),
            "suss width {w_suss}"
        );
        assert!(
            (period / 4..=period * 4).contains(&w_mwf),
            "mwf width {w_mwf}"
        );
    }

    #[test]
    fn degenerate_inputs_fall_back_to_min() {
        let bounds = WidthBounds { min: 10, max: 100 };
        for m in WssMethod::all() {
            assert_eq!(select_width(m, &[], bounds), 10, "{:?} empty", m);
            assert_eq!(select_width(m, &[1.0; 500], bounds), 10, "{:?} const", m);
            let with_nan: Vec<f64> = (0..200)
                .map(|i| if i == 77 { f64::NAN } else { i as f64 })
                .collect();
            assert_eq!(select_width(m, &with_nan, bounds), 10, "{:?} nan", m);
        }
    }

    #[test]
    fn bounds_are_respected() {
        let x = sine_with_noise(3000, 200, 3);
        let bounds = WidthBounds { min: 16, max: 64 };
        for m in WssMethod::all() {
            let w = select_width(m, &x, bounds);
            assert!((16..=64).contains(&w), "{:?} returned {w}", m);
        }
    }

    #[test]
    fn for_stream_bounds_are_sane() {
        let b = WidthBounds::for_stream(10_000, 10_000);
        assert_eq!(b.min, 10);
        assert_eq!(b.max, 1000);
        let b = WidthBounds::for_stream(100, 10_000);
        assert_eq!(b.max, 25);
        let b = WidthBounds::for_stream(8, 16);
        assert!(b.max >= b.min || b.max == 11);
    }
}
