//! Incremental self-supervised cross-validation (paper §3.2, Algorithm 3).
//!
//! For every hypothetical split of the scored sliding-window range into a
//! left (label 0) and right (label 1) part, a leave-one-out k-NN classifier
//! is evaluated: each subsequence's prediction is the majority label of its
//! k nearest neighbours. The resulting classification score per split forms
//! the ClaSP profile.
//!
//! A naive evaluation costs O(d) per split and O(d^2) per stream update.
//! Two observations bring this down to O(changes + d) per evaluation:
//!
//! 1. **Predictions flip at most once** (a sharpening of the paper's
//!    Algorithm 3). A neighbour with subsequence id `q` votes class 1 at
//!    split sid `s` exactly when `q >= s` — this covers in-range and
//!    pre-range neighbours uniformly ("negative offsets belong to class
//!    zero by design" is just `q < s`). The number of class-1 votes a row
//!    receives is therefore non-increasing in `s`, so its majority
//!    prediction flips from 1 to 0 at most once: at its **flip sid** — one
//!    past its majority-rank neighbour sid, a closed-form per-row threshold
//!    that replaces Algorithm 3's reverse-k-NN adjacency walk outright.
//!    Given all flip sids, one full profile is three linear passes: a
//!    histogram of flip offsets (suffix-summed into the per-split totals),
//!    a difference array (prefix-summed into the per-split left counts),
//!    and an elementwise score computation.
//!
//! 2. **Flip sids are persistent** (this engine is stateful across calls).
//!    A flip sid is an *absolute* stream position: advancing the scored
//!    range does not change it, and only rows whose neighbour list changed
//!    since the previous evaluation need theirs recomputed. Those rows are
//!    exactly the owners named by the [`StreamingKnn`] change journal of
//!    new rows, inserted edges and evicted edges (see
//!    [`crate::knn::KnnEvent`]), so a warm re-evaluation costs
//!    O(journalled changes + d_sweep) instead of re-reading all `n·k`
//!    neighbour lists — competitive with the k-NN update itself.

use crate::knn::{KnnEvent, StreamingKnn};
use crate::stats::BinaryGroups;

/// Classification score derived from the running confusion matrix
/// (paper ablation (e): macro F1 is the default, macro/balanced accuracy the
/// alternative; both are computable in O(1) from the confusion matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreFn {
    /// Macro-averaged F1 over both classes (paper default).
    #[default]
    MacroF1,
    /// Balanced (macro-averaged) accuracy.
    BalancedAccuracy,
}

impl ScoreFn {
    /// Identifier used by the ablation harness.
    pub fn name(self) -> &'static str {
        match self {
            ScoreFn::MacroF1 => "macro-f1",
            ScoreFn::BalancedAccuracy => "balanced-accuracy",
        }
    }

    /// Score from a 2x2 confusion matrix `m[true][pred]`.
    ///
    /// [`CrossVal`]'s sweep evaluates the same arithmetic in
    /// [`CrossVal::score_pass`] on `i32` counts (the scored range is far
    /// below `i32::MAX`); the conversions are exact for both widths, so the
    /// two paths are bit-identical.
    #[inline]
    pub fn score(self, m: &[[i64; 2]; 2]) -> f64 {
        match self {
            ScoreFn::MacroF1 => {
                let f1 = |c: usize| {
                    let tp = m[c][c];
                    let fp = m[1 - c][c];
                    let fn_ = m[c][1 - c];
                    let denom = 2 * tp + fp + fn_;
                    if denom == 0 {
                        0.0
                    } else {
                        2.0 * tp as f64 / denom as f64
                    }
                };
                0.5 * (f1(0) + f1(1))
            }
            ScoreFn::BalancedAccuracy => {
                let rec = |c: usize| {
                    let denom = m[c][0] + m[c][1];
                    if denom == 0 {
                        0.0
                    } else {
                        m[c][c] as f64 / denom as f64
                    }
                };
                0.5 * (rec(0) + rec(1))
            }
        }
    }
}

/// Ring slot of an absolute sid under capacity `cap`.
#[inline(always)]
fn ring(sid: i64, cap: usize) -> usize {
    debug_assert!(sid >= 0);
    (sid as u64 % cap as u64) as usize
}

/// Absolute flip sid of a row from its neighbour sid list: the smallest
/// split sid at which the row's majority prediction is class 0 (the
/// prediction is class 1 for every split sid strictly below it). A majority
/// needs `floor(m/2) + 1` of the `m` neighbours at or past the split, so
/// the threshold is one past the `(floor(m/2) + 1)`-th largest neighbour
/// sid; with no neighbours the prediction is always 0.
#[inline]
fn flip_sid_of(sel: &mut Vec<i64>, sids: &[i64]) -> i64 {
    let m = sids.len();
    if m == 0 {
        return i64::MIN;
    }
    sel.clear();
    sel.extend_from_slice(sids);
    sel.sort_unstable();
    sel[(m - 1) / 2] + 1
}

/// Bookkeeping that ties the persisted flip sids to one specific index
/// history; any mismatch on the next call triggers a cold rebuild.
#[derive(Debug, Clone)]
struct WarmState {
    /// [`StreamingKnn::instance_id`] of the index the state was built from.
    knn_id: u64,
    /// `m_max` of that index (sizes the flip ring).
    cap: usize,
    /// Journal cursor: [`StreamingKnn::events_total`] at the last sync.
    seen_seq: u64,
}

/// Reusable cross-validation engine, stateful across calls.
///
/// [`CrossVal::compute`] transparently chooses between a cold rebuild (first
/// call, different index, journal overrun) and a warm delta-sync against the
/// index's change journal; both paths produce bit-identical profiles. All
/// buffers are kept between calls, so the per-evaluation hot path performs
/// no allocation once warmed up.
#[derive(Debug, Clone)]
pub struct CrossVal {
    score_fn: ScoreFn,
    /// Validity ticket for the incremental state below.
    warm: Option<WarmState>,
    /// Absolute flip sid per live row, ring-indexed by `sid % cap` over the
    /// *whole window* (the scored range may start anywhere at or past the
    /// window start, and may move freely between calls).
    flip: Vec<i64>,
    /// Scratch for the rank selection in [`flip_sid_of`].
    sel: Vec<i64>,
    profile: Vec<f64>,
    /// During the sweep: difference array, then (in place) its prefix sums
    /// `left_ones[p] = #{rows j < p predicted 1 at split p}`.
    left_ones: Vec<u32>,
    /// During the sweep: flip-offset histogram, then (in place) its suffix
    /// counts `tot_ones[p] = #{rows predicted 1 at split p}`.
    tot_ones: Vec<u32>,
    nn: usize,
    start_sid: i64,
}

impl CrossVal {
    /// Creates an engine with the given split score.
    pub fn new(score_fn: ScoreFn) -> Self {
        Self {
            score_fn,
            warm: None,
            flip: Vec::new(),
            sel: Vec::new(),
            profile: Vec::new(),
            left_ones: Vec::new(),
            tot_ones: Vec::new(),
            nn: 0,
            start_sid: 0,
        }
    }

    /// Score function in use.
    pub fn score_fn(&self) -> ScoreFn {
        self.score_fn
    }

    /// Number of subsequences scored by the last [`CrossVal::compute`].
    pub fn len(&self) -> usize {
        self.nn
    }

    /// Whether the last computation scored nothing.
    pub fn is_empty(&self) -> bool {
        self.nn == 0
    }

    /// The ClaSP profile of the last computation: `profile()[p]` is the
    /// cross-validation score of the split placing the first `p` scored
    /// subsequences into class 0. Valid for `p` in `1..len()`; index 0 is 0.
    pub fn profile(&self) -> &[f64] {
        &self.profile[..self.nn]
    }

    /// Absolute sid of the first subsequence scored by the last
    /// [`CrossVal::compute`] — i.e. `profile()[p]` splits at absolute sid
    /// `range_start_sid() + p`. Under jump-ahead evaluation this may lag
    /// the index's live range start by up to `jump - 1` positions.
    pub fn range_start_sid(&self) -> i64 {
        self.start_sid
    }

    /// Drops all persisted incremental state; the next
    /// [`CrossVal::compute`] performs a full cold rebuild.
    pub fn reset(&mut self) {
        self.warm = None;
    }

    /// Predicted-label group counts at split `p`, as needed by the
    /// significance test (paper §3.3).
    pub fn groups_at(&self, p: usize) -> BinaryGroups {
        debug_assert!(p >= 1 && p < self.nn);
        let left = self.left_ones[p] as u64;
        let tot = self.tot_ones[p] as u64;
        BinaryGroups {
            n_left: p as u64,
            ones_left: left,
            n_right: (self.nn - p) as u64,
            ones_right: tot - left,
        }
    }

    /// Computes the profile over the k-NN slots `[start_slot, m_max)`.
    /// Returns the number of scored subsequences `nn` (0 if fewer than two
    /// subsequences are in range).
    ///
    /// Warm path: when called repeatedly against the same index, only the
    /// rows named by the index's change journal since the previous call
    /// have their flip sid recomputed before the sweep. Both paths are
    /// bit-identical.
    pub fn compute(&mut self, knn: &StreamingKnn, start_slot: usize) -> usize {
        let m_max = knn.max_subsequences();
        debug_assert!(start_slot >= knn.qstart());
        let nn = m_max.saturating_sub(start_slot);
        if nn == 0 {
            self.nn = 0;
            self.warm = None;
            return 0;
        }
        let start_sid = knn.sid_of_slot(start_slot);
        debug_assert_eq!(Some(start_sid + nn as i64 - 1), knn.newest_sid());
        let cap = m_max;

        let warm_ok = match &self.warm {
            Some(w) => {
                w.knn_id == knn.instance_id()
                    && w.cap == cap
                    && knn.events_since(w.seen_seq).is_some()
            }
            None => false,
        };
        if warm_ok {
            self.sync_warm(knn);
        } else {
            self.rebuild_cold(knn);
        }
        self.warm = Some(WarmState {
            knn_id: knn.instance_id(),
            cap,
            seen_seq: knn.events_total(),
        });
        self.start_sid = start_sid;

        if nn < 2 {
            // State is synced (so the next call can still be warm), but
            // there is nothing to score.
            self.nn = 0;
            return 0;
        }
        self.nn = nn;
        self.sweep(start_sid, nn, cap);
        nn
    }

    /// Recomputes every live row's flip sid from the index's neighbour
    /// lists (the former per-evaluation cost, now only paid on the first
    /// call against an index or after a journal overrun).
    fn rebuild_cold(&mut self, knn: &StreamingKnn) {
        let cap = knn.max_subsequences();
        self.flip.clear();
        self.flip.resize(cap, i64::MIN);
        for slot in knn.qstart()..cap {
            let sid = knn.sid_of_slot(slot);
            let (sids, _) = knn.neighbors(slot);
            let f = flip_sid_of(&mut self.sel, sids);
            self.flip[ring(sid, cap)] = f;
        }
    }

    /// Recomputes the flip sid of every row whose neighbour list the
    /// journal reports as changed since the previous sync. Recomputing from
    /// the index's *current* list is idempotent, so replay order and
    /// repeated owners are harmless; owners already evicted from the window
    /// are skipped (their ring slot is rewritten by the `RowCreated` of
    /// whichever sid reuses it).
    fn sync_warm(&mut self, knn: &StreamingKnn) {
        let w = self.warm.as_ref().expect("warm guard checked");
        let (cap, seen_seq) = (w.cap, w.seen_seq);
        let oldest = knn.oldest_sid().expect("journalled index has rows");
        let events = knn.events_since(seen_seq).expect("warm guard checked");
        let mut last = i64::MIN;
        for ev in events {
            let owner = match ev {
                KnnEvent::RowCreated { sid } => sid,
                KnnEvent::EdgeAdded { owner, .. } | KnnEvent::EdgeReplaced { owner, .. } => owner,
            };
            // A row's creation and its initial edges arrive back to back;
            // skipping consecutive repeats avoids most duplicate work.
            if owner == last || owner < oldest {
                continue;
            }
            last = owner;
            let (sids, _) = knn.neighbors(knn.slot_of_sid(owner));
            let f = flip_sid_of(&mut self.sel, sids);
            self.flip[ring(owner, cap)] = f;
        }
    }

    /// The split sweep: three linear passes over the scored range.
    ///
    /// With `g(j)` the flip sid of row `j` clamped into split-offset range,
    /// row `j` is predicted 1 at split `p` iff `g(j) > p`, so
    /// `tot_ones[p] = #{j : g(j) > p}` falls out of a histogram of `g` and
    /// `left_ones[p] = #{j < p : g(j) > p}` out of a difference array (row
    /// `j` contributes to exactly the splits `j < p < g(j)`).
    fn sweep(&mut self, start_sid: i64, nn: usize, cap: usize) {
        self.profile.clear();
        self.profile.resize(nn, 0.0);
        self.left_ones.clear();
        self.left_ones.resize(nn + 1, 0);
        self.tot_ones.clear();
        self.tot_ones.resize(nn + 1, 0);

        // Pass 1: histogram + difference array, over the (at most two)
        // contiguous ring spans of the scored range. Counts are exact in
        // `u32` modulo arithmetic: the final sums are small non-negatives.
        let dl = &mut self.left_ones;
        let dt = &mut self.tot_ones;
        let s0 = ring(start_sid, cap);
        let len1 = (cap - s0).min(nn);
        let nn_i = nn as i64;
        for (span, j0) in [
            (&self.flip[s0..s0 + len1], 0),
            (&self.flip[..nn - len1], len1),
        ] {
            for (i, &f) in span.iter().enumerate() {
                let j = j0 + i;
                let g = f.saturating_sub(start_sid).clamp(0, nn_i) as usize;
                dt[g] = dt[g].wrapping_add(1);
                let a = j + 1;
                if g > a {
                    dl[a] = dl[a].wrapping_add(1);
                    dl[g] = dl[g].wrapping_sub(1);
                }
            }
        }

        // Pass 2: in-place histogram -> suffix counts, diffs -> prefix sums.
        let mut c = 0u32;
        let mut l = 0u32;
        for p in 0..nn {
            c = c.wrapping_add(dt[p]);
            dt[p] = nn as u32 - c;
            l = l.wrapping_add(dl[p]);
            dl[p] = l;
        }

        // Pass 3: scores. The dispatch is hoisted so each arm is a
        // branch-free elementwise loop.
        self.profile[0] = 0.0;
        match self.score_fn {
            ScoreFn::MacroF1 => Self::score_pass(ScoreFn::MacroF1, &mut self.profile, dl, dt, nn),
            ScoreFn::BalancedAccuracy => {
                Self::score_pass(ScoreFn::BalancedAccuracy, &mut self.profile, dl, dt, nn)
            }
        }
    }

    /// Elementwise score pass over the per-split counts, evaluating exactly
    /// the arithmetic of [`ScoreFn::score`] on the reconstructed confusion
    /// matrix (in `i32`, whose `f64` conversions are as exact as `i64`'s —
    /// see there). `score_fn` must be a literal at every call site so the
    /// per-split dispatch disappears and the loop vectorizes.
    #[inline(always)]
    fn score_pass(score_fn: ScoreFn, profile: &mut [f64], left: &[u32], tot: &[u32], nn: usize) {
        debug_assert!(nn <= i32::MAX as usize);
        for p in 1..nn {
            let l = left[p] as i32;
            let t = tot[p] as i32;
            // m[true][pred]: all rows left of `p` are truth 0, the rest
            // truth 1.
            let m00 = p as i32 - l;
            let m01 = l;
            let m11 = t - l;
            let m10 = (nn - p) as i32 - m11;
            profile[p] = match score_fn {
                ScoreFn::MacroF1 => {
                    let d0 = 2 * m00 + m10 + m01;
                    let f0 = if d0 == 0 {
                        0.0
                    } else {
                        2.0 * m00 as f64 / d0 as f64
                    };
                    let d1 = 2 * m11 + m01 + m10;
                    let f1 = if d1 == 0 {
                        0.0
                    } else {
                        2.0 * m11 as f64 / d1 as f64
                    };
                    0.5 * (f0 + f1)
                }
                ScoreFn::BalancedAccuracy => {
                    let d0 = m00 + m01;
                    let r0 = if d0 == 0 { 0.0 } else { m00 as f64 / d0 as f64 };
                    let d1 = m10 + m11;
                    let r1 = if d1 == 0 { 0.0 } else { m11 as f64 / d1 as f64 };
                    0.5 * (r0 + r1)
                }
            };
        }
    }
}

/// Naive reference: evaluates one split from scratch in O(k·n). Used by
/// tests and the benchmark harness to validate and time the incremental
/// algorithm against the paper's O(d^2) baseline.
pub fn naive_split_score(
    knn: &StreamingKnn,
    start_slot: usize,
    p: usize,
    score_fn: ScoreFn,
) -> f64 {
    let m_max = knn.max_subsequences();
    let nn = m_max - start_slot;
    let start_sid = knn.sid_of_slot(start_slot);
    let split_sid = start_sid + p as i64;
    let mut m = [[0i64; 2]; 2];
    for j in 0..nn {
        let (sids, _) = knn.neighbors(start_slot + j);
        let mut zeros = 0;
        let mut ones = 0;
        for &nsid in sids {
            if nsid < split_sid {
                zeros += 1;
            } else {
                ones += 1;
            }
        }
        let pred = usize::from(zeros < ones);
        let truth = usize::from(j >= p);
        m[truth][pred] += 1;
    }
    score_fn.score(&m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{KnnConfig, StreamingKnn};
    use crate::stats::SplitMix64;

    fn feed(n: usize, d: usize, w: usize, k: usize, seed: u64) -> StreamingKnn {
        let mut rng = SplitMix64::new(seed);
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, k));
        for _ in 0..n {
            knn.update(rng.next_f64() * 2.0 - 1.0);
        }
        knn
    }

    fn feed_two_regimes(n: usize, d: usize, w: usize, k: usize, seed: u64) -> StreamingKnn {
        let mut rng = SplitMix64::new(seed);
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, k));
        for i in 0..n {
            let base = if i < n / 2 {
                (i as f64 * 0.7).sin()
            } else {
                ((i as f64 * 0.1).sin() * 3.0).tanh() * 2.0
            };
            knn.update(base + 0.05 * (rng.next_f64() - 0.5));
        }
        knn
    }

    #[test]
    fn incremental_matches_naive_random() {
        let knn = feed(180, 120, 6, 3, 21);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let start = knn.qstart();
        let nn = cv.compute(&knn, start);
        assert!(nn > 2);
        for p in 1..nn {
            let want = naive_split_score(&knn, start, p, ScoreFn::MacroF1);
            let got = cv.profile()[p];
            assert!((got - want).abs() < 1e-12, "p = {p}: {got} vs {want}");
        }
    }

    #[test]
    fn incremental_matches_naive_with_eviction_and_offsets() {
        // Long stream so neighbours expire; also score a sub-range.
        let knn = feed(500, 150, 8, 3, 22);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let start = knn.qstart() + 37;
        let nn = cv.compute(&knn, start);
        assert!(nn > 2);
        for p in 1..nn {
            let want = naive_split_score(&knn, start, p, ScoreFn::MacroF1);
            let got = cv.profile()[p];
            assert!((got - want).abs() < 1e-12, "p = {p}: {got} vs {want}");
        }
    }

    #[test]
    fn incremental_matches_naive_balanced_accuracy() {
        let knn = feed(260, 130, 7, 5, 23);
        let mut cv = CrossVal::new(ScoreFn::BalancedAccuracy);
        let start = knn.qstart();
        let nn = cv.compute(&knn, start);
        for p in 1..nn {
            let want = naive_split_score(&knn, start, p, ScoreFn::BalancedAccuracy);
            let got = cv.profile()[p];
            assert!((got - want).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    fn group_counts_match_direct_recount() {
        let knn = feed(300, 140, 6, 3, 24);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let start = knn.qstart();
        let nn = cv.compute(&knn, start);
        // Recount ypred at a few splits by replaying naive predictions.
        let start_sid = knn.sid_of_slot(start);
        for &p in &[1usize, nn / 3, nn / 2, nn - 1] {
            let split_sid = start_sid + p as i64;
            let mut ones_left = 0u64;
            let mut ones_right = 0u64;
            for j in 0..nn {
                let (sids, _) = knn.neighbors(start + j);
                let zeros = sids.iter().filter(|&&s| s < split_sid).count();
                let pred = zeros * 2 < sids.len();
                if pred {
                    if j < p {
                        ones_left += 1;
                    } else {
                        ones_right += 1;
                    }
                }
            }
            let g = cv.groups_at(p);
            assert_eq!(g.n_left, p as u64);
            assert_eq!(g.ones_left, ones_left, "p = {p}");
            assert_eq!(g.ones_right, ones_right, "p = {p}");
        }
    }

    #[test]
    fn profile_peaks_near_true_change_point() {
        // Two clearly different regimes; the best split should fall near the
        // middle of the scored range.
        let n = 400;
        let knn = feed_two_regimes(n, 400, 10, 3, 25);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let nn = cv.compute(&knn, knn.qstart());
        assert!(nn > 10);
        let margin = 30;
        let best = (margin..nn - margin)
            .max_by(|&a, &b| cv.profile()[a].partial_cmp(&cv.profile()[b]).unwrap())
            .unwrap();
        let true_split = nn / 2;
        assert!(
            (best as i64 - true_split as i64).unsigned_abs() < 40,
            "best split {best}, expected ~{true_split}"
        );
        assert!(
            cv.profile()[best] > 0.85,
            "peak score {}",
            cv.profile()[best]
        );
    }

    #[test]
    fn too_small_range_returns_zero() {
        let knn = feed(40, 60, 6, 3, 26);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let nn = cv.compute(&knn, knn.max_subsequences() - 1);
        assert_eq!(nn, 0);
        assert!(cv.is_empty());
    }

    #[test]
    fn engine_is_reusable_across_different_sizes() {
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        for (n, d, w) in [(150usize, 100usize, 6usize), (260, 130, 9), (90, 80, 4)] {
            let knn = feed(n, d, w, 3, 27);
            let start = knn.qstart();
            let nn = cv.compute(&knn, start);
            for p in (1..nn).step_by(7) {
                let want = naive_split_score(&knn, start, p, ScoreFn::MacroF1);
                assert!((cv.profile()[p] - want).abs() < 1e-12);
            }
        }
    }

    /// Asserts that a warm engine and a fresh cold engine agree bit-exactly
    /// on the profile and the group counts of `warm`'s last computation.
    fn assert_warm_equals_cold(warm: &CrossVal, knn: &StreamingKnn, start_slot: usize) {
        let mut cold = CrossVal::new(warm.score_fn());
        let nn = cold.compute(knn, start_slot);
        assert_eq!(warm.len(), nn, "scored length diverged");
        for p in 0..nn {
            assert!(
                warm.profile()[p].to_bits() == cold.profile()[p].to_bits(),
                "profile diverged at p = {p}: {} vs {}",
                warm.profile()[p],
                cold.profile()[p]
            );
        }
        for p in 1..nn {
            assert_eq!(warm.groups_at(p), cold.groups_at(p), "groups at p = {p}");
        }
    }

    #[test]
    fn warm_reevaluation_is_bit_exact_every_step() {
        // Persistent engine, evaluated after every single update, through
        // growth, steady state and eviction.
        let mut rng = SplitMix64::new(31);
        let mut knn = StreamingKnn::new(KnnConfig::new(100, 6, 3));
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        for _ in 0..320 {
            if !knn.update(rng.next_f64() * 2.0 - 1.0) {
                continue;
            }
            cv.compute(&knn, knn.qstart());
            if cv.len() >= 2 {
                assert_warm_equals_cold(&cv, &knn, knn.qstart());
            }
        }
    }

    #[test]
    fn warm_reevaluation_with_jump_and_range_advance() {
        // Evaluate only every 5th update (jump-ahead) while the range start
        // leaps forward in chunks, as after detected change points.
        let mut rng = SplitMix64::new(32);
        let mut knn = StreamingKnn::new(KnnConfig::new(140, 7, 3));
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let mut extra_start = 0usize; // simulated cpl offset
        let mut since = 0usize;
        for i in 0..600 {
            if !knn.update(rng.next_f64() * 2.0 - 1.0) {
                continue;
            }
            since += 1;
            if since < 5 {
                continue;
            }
            since = 0;
            if i % 150 == 0 && knn.n_subsequences() > extra_start + 40 {
                extra_start += 23;
            }
            let start = knn.qstart() + extra_start.min(knn.n_subsequences() - 1);
            cv.compute(&knn, start);
            if cv.len() >= 2 {
                assert_warm_equals_cold(&cv, &knn, start);
            }
        }
    }

    #[test]
    fn warm_reevaluation_with_nans_is_bit_exact() {
        // Non-finite values shorten neighbour lists and later heal; the
        // journal must keep the warm state exact throughout.
        let mut rng = SplitMix64::new(33);
        let mut knn = StreamingKnn::new(KnnConfig::new(90, 6, 3));
        let mut cv = CrossVal::new(ScoreFn::BalancedAccuracy);
        for i in 0..420 {
            let x = if i % 97 == 41 {
                f64::NAN
            } else {
                rng.next_f64() * 2.0 - 1.0
            };
            if !knn.update(x) {
                continue;
            }
            if i % 3 != 0 {
                continue;
            }
            cv.compute(&knn, knn.qstart());
            if cv.len() >= 2 {
                assert_warm_equals_cold(&cv, &knn, knn.qstart());
            }
        }
    }

    #[test]
    fn journal_overrun_falls_back_to_cold_rebuild() {
        // Leave the engine behind for far more events than the journal
        // holds; the next compute must detect the overrun and still be
        // exact.
        let mut rng = SplitMix64::new(34);
        let mut knn = StreamingKnn::new(KnnConfig::new(80, 5, 3));
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        for _ in 0..120 {
            knn.update(rng.next_f64() * 2.0 - 1.0);
        }
        cv.compute(&knn, knn.qstart());
        // >> JOURNAL_CAP events: each update emits at least one.
        for _ in 0..2500 {
            knn.update(rng.next_f64() * 2.0 - 1.0);
        }
        cv.compute(&knn, knn.qstart());
        assert_warm_equals_cold(&cv, &knn, knn.qstart());
    }

    #[test]
    fn cloned_knn_does_not_warm_poison_the_engine() {
        // A clone has a fresh identity: the engine warmed on the original
        // must cold-rebuild against the clone (whose journal diverges), and
        // stay exact on both.
        let mut rng = SplitMix64::new(35);
        let mut knn = StreamingKnn::new(KnnConfig::new(90, 6, 3));
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        for _ in 0..150 {
            knn.update(rng.next_f64() * 2.0 - 1.0);
        }
        cv.compute(&knn, knn.qstart());
        let mut fork = knn.clone();
        for _ in 0..30 {
            knn.update(rng.next_f64() * 2.0 - 1.0);
            fork.update(-(rng.next_f64() * 2.0 - 1.0));
        }
        cv.compute(&fork, fork.qstart());
        assert_warm_equals_cold(&cv, &fork, fork.qstart());
        cv.compute(&knn, knn.qstart());
        assert_warm_equals_cold(&cv, &knn, knn.qstart());
    }

    #[test]
    fn reset_forces_cold_rebuild_with_identical_results() {
        let mut rng = SplitMix64::new(36);
        let mut knn = StreamingKnn::new(KnnConfig::new(100, 6, 3));
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        for _ in 0..200 {
            knn.update(rng.next_f64() * 2.0 - 1.0);
        }
        cv.compute(&knn, knn.qstart());
        let warm_profile = cv.profile().to_vec();
        cv.reset();
        cv.compute(&knn, knn.qstart());
        assert_eq!(warm_profile.len(), cv.profile().len());
        for (a, b) in warm_profile.iter().zip(cv.profile()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn score_fn_confusion_matrix_basics() {
        // Perfect prediction.
        let m = [[10, 0], [0, 10]];
        assert!((ScoreFn::MacroF1.score(&m) - 1.0).abs() < 1e-12);
        assert!((ScoreFn::BalancedAccuracy.score(&m) - 1.0).abs() < 1e-12);
        // All predicted 1 with balanced truth: F1(0) = 0, F1(1) = 2/3.
        let m = [[0, 10], [0, 10]];
        assert!((ScoreFn::MacroF1.score(&m) - (2.0 / 3.0) / 2.0).abs() < 1e-12);
        assert!((ScoreFn::BalancedAccuracy.score(&m) - 0.5).abs() < 1e-12);
        // Empty matrix must not divide by zero.
        let m = [[0, 0], [0, 0]];
        assert_eq!(ScoreFn::MacroF1.score(&m), 0.0);
        assert_eq!(ScoreFn::BalancedAccuracy.score(&m), 0.0);
    }

    #[test]
    fn score_fn_all_one_class_edges_stay_finite_and_bounded() {
        // The matrices that arise at the extreme evaluation points reached
        // under jump-ahead: a split right after the range start (almost no
        // truth-0 rows) or right before its end (almost no truth-1 rows),
        // possibly with a degenerate all-one-sided prediction.
        for m in [
            [[0, 0], [0, 25]], // all truth 1, all predicted 1
            [[0, 0], [25, 0]], // all truth 1, all predicted 0
            [[25, 0], [0, 0]], // all truth 0, all predicted 0
            [[0, 25], [0, 0]], // all truth 0, all predicted 1
            [[1, 0], [24, 0]], // first split, everything predicted 0
            [[0, 1], [0, 24]], // first split, everything predicted 1
        ] {
            for sf in [ScoreFn::MacroF1, ScoreFn::BalancedAccuracy] {
                let s = sf.score(&m);
                assert!(s.is_finite(), "{sf:?} on {m:?} -> {s}");
                assert!((0.0..=1.0).contains(&s), "{sf:?} on {m:?} -> {s}");
            }
        }
    }

    #[test]
    fn groups_at_consistent_at_first_and_last_split() {
        // Pin the profile-index-0 convention and the boundary splits that
        // jump scheduling lands on: groups_at(p) must tile the scored range
        // exactly at p = 1 and p = nn - 1, matching the profile scores.
        let knn = feed(220, 120, 6, 3, 37);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let start = knn.qstart();
        let nn = cv.compute(&knn, start);
        assert!(nn > 2);
        assert_eq!(cv.profile()[0], 0.0, "index 0 is by convention 0");
        for p in [1, nn - 1] {
            let g = cv.groups_at(p);
            assert_eq!(g.n_left + g.n_right, nn as u64);
            assert!(g.ones_left <= g.n_left);
            assert!(g.ones_right <= g.n_right);
            let want = naive_split_score(&knn, start, p, ScoreFn::MacroF1);
            assert!((cv.profile()[p] - want).abs() < 1e-12, "p = {p}");
        }
    }
}
