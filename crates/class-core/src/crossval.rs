//! Incremental self-supervised cross-validation (paper §3.2, Algorithm 3).
//!
//! For every hypothetical split of the scored sliding-window range into a
//! left (label 0) and right (label 1) part, a leave-one-out k-NN classifier
//! is evaluated: each subsequence's prediction is the majority label of its
//! k nearest neighbours. The resulting classification score per split forms
//! the ClaSP profile.
//!
//! A naive evaluation costs O(d) per split and O(d^2) per stream update.
//! The incremental algorithm exploits that consecutive splits differ in the
//! ground-truth label of exactly one subsequence: flipping that label only
//! affects the predictions of subsequences having it among their k-NN
//! (found via the reverse-NN adjacency), and the confusion matrix is patched
//! in O(1) per affected prediction. Because the total reverse-NN degree is
//! exactly `k * n`, the full profile costs O(k·d).
//!
//! Neighbours whose subsequence id lies *before* the scored range (including
//! ids that already left the sliding window) are permanent class-0 votes —
//! the paper's "negative offsets belong to class zero by design".

use crate::knn::StreamingKnn;
use crate::stats::BinaryGroups;

/// Classification score derived from the running confusion matrix
/// (paper ablation (e): macro F1 is the default, macro/balanced accuracy the
/// alternative; both are computable in O(1) from the confusion matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreFn {
    /// Macro-averaged F1 over both classes (paper default).
    #[default]
    MacroF1,
    /// Balanced (macro-averaged) accuracy.
    BalancedAccuracy,
}

impl ScoreFn {
    /// Identifier used by the ablation harness.
    pub fn name(self) -> &'static str {
        match self {
            ScoreFn::MacroF1 => "macro-f1",
            ScoreFn::BalancedAccuracy => "balanced-accuracy",
        }
    }

    /// Score from a 2x2 confusion matrix `m[true][pred]`.
    #[inline]
    pub fn score(self, m: &[[i64; 2]; 2]) -> f64 {
        match self {
            ScoreFn::MacroF1 => {
                let f1 = |c: usize| {
                    let tp = m[c][c];
                    let fp = m[1 - c][c];
                    let fn_ = m[c][1 - c];
                    let denom = 2 * tp + fp + fn_;
                    if denom == 0 {
                        0.0
                    } else {
                        2.0 * tp as f64 / denom as f64
                    }
                };
                0.5 * (f1(0) + f1(1))
            }
            ScoreFn::BalancedAccuracy => {
                let rec = |c: usize| {
                    let denom = m[c][0] + m[c][1];
                    if denom == 0 {
                        0.0
                    } else {
                        m[c][c] as f64 / denom as f64
                    }
                };
                0.5 * (rec(0) + rec(1))
            }
        }
    }
}

/// Reusable cross-validation engine. All scratch buffers are kept between
/// calls so the per-update hot path performs no allocation once warmed up.
#[derive(Debug, Clone)]
pub struct CrossVal {
    score_fn: ScoreFn,
    zeros: Vec<i32>,
    ones: Vec<i32>,
    ypred: Vec<u8>,
    r_off: Vec<u32>,
    r_dat: Vec<u32>,
    profile: Vec<f64>,
    left_ones: Vec<u32>,
    tot_ones: Vec<u32>,
    nn: usize,
}

impl CrossVal {
    /// Creates an engine with the given split score.
    pub fn new(score_fn: ScoreFn) -> Self {
        Self {
            score_fn,
            zeros: Vec::new(),
            ones: Vec::new(),
            ypred: Vec::new(),
            r_off: Vec::new(),
            r_dat: Vec::new(),
            profile: Vec::new(),
            left_ones: Vec::new(),
            tot_ones: Vec::new(),
            nn: 0,
        }
    }

    /// Score function in use.
    pub fn score_fn(&self) -> ScoreFn {
        self.score_fn
    }

    /// Number of subsequences scored by the last [`CrossVal::compute`].
    pub fn len(&self) -> usize {
        self.nn
    }

    /// Whether the last computation scored nothing.
    pub fn is_empty(&self) -> bool {
        self.nn == 0
    }

    /// The ClaSP profile of the last computation: `profile()[p]` is the
    /// cross-validation score of the split placing the first `p` scored
    /// subsequences into class 0. Valid for `p` in `1..len()`; index 0 is 0.
    pub fn profile(&self) -> &[f64] {
        &self.profile[..self.nn]
    }

    /// Predicted-label group counts at split `p`, as needed by the
    /// significance test (paper §3.3).
    pub fn groups_at(&self, p: usize) -> BinaryGroups {
        debug_assert!(p >= 1 && p < self.nn);
        let left = self.left_ones[p] as u64;
        let tot = self.tot_ones[p] as u64;
        BinaryGroups {
            n_left: p as u64,
            ones_left: left,
            n_right: (self.nn - p) as u64,
            ones_right: tot - left,
        }
    }

    /// Computes the profile over the k-NN slots `[start_slot, m_max)`.
    /// Returns the number of scored subsequences `nn` (0 if fewer than two
    /// subsequences are in range).
    pub fn compute(&mut self, knn: &StreamingKnn, start_slot: usize) -> usize {
        let m_max = knn.max_subsequences();
        debug_assert!(start_slot >= knn.qstart());
        let nn = m_max.saturating_sub(start_slot);
        self.nn = nn;
        if nn < 2 {
            self.nn = 0;
            return 0;
        }
        let start_sid = knn.sid_of_slot(start_slot);
        let k = knn.config().k;

        // --- Resize scratch (no-ops once warmed up). ---
        self.zeros.clear();
        self.zeros.resize(nn, 0);
        self.ones.clear();
        self.ones.resize(nn, 0);
        self.ypred.clear();
        self.ypred.resize(nn, 0);
        self.r_off.clear();
        self.r_off.resize(nn + 1, 0);
        self.r_dat.clear();
        self.r_dat.resize(nn * k, 0);
        self.profile.clear();
        self.profile.resize(nn, 0.0);
        self.left_ones.clear();
        self.left_ones.resize(nn, 0);
        self.tot_ones.clear();
        self.tot_ones.resize(nn, 0);

        // --- Initial label counts & reverse-NN degrees. ---
        for j in 0..nn {
            let (sids, _) = knn.neighbors(start_slot + j);
            let mut z = 0i32;
            for &nsid in sids {
                if nsid < start_sid {
                    z += 1; // permanent class-0 vote
                } else {
                    let t = (nsid - start_sid) as usize;
                    debug_assert!(t < nn);
                    self.r_off[t + 1] += 1;
                }
            }
            self.zeros[j] = z;
            self.ones[j] = sids.len() as i32 - z;
        }
        for t in 0..nn {
            self.r_off[t + 1] += self.r_off[t];
        }
        // Fill the CSR adjacency (owners per in-range target).
        {
            let mut cursor: Vec<u32> = self.r_off[..nn].to_vec();
            for j in 0..nn {
                let (sids, _) = knn.neighbors(start_slot + j);
                for &nsid in sids {
                    if nsid >= start_sid {
                        let t = (nsid - start_sid) as usize;
                        self.r_dat[cursor[t] as usize] = j as u32;
                        cursor[t] += 1;
                    }
                }
            }
        }

        // --- Initial predictions and confusion matrix (all true = 1). ---
        let mut m = [[0i64; 2]; 2];
        let mut tot_ones_run: i64 = 0;
        for j in 0..nn {
            let pred = u8::from(self.zeros[j] < self.ones[j]);
            self.ypred[j] = pred;
            m[1][pred as usize] += 1;
            tot_ones_run += i64::from(pred);
        }

        // --- Sweep all splits, patching labels incrementally. ---
        let mut left_ones_run: i64 = 0;
        self.profile[0] = 0.0;
        self.left_ones[0] = 0;
        self.tot_ones[0] = tot_ones_run as u32;
        for p in 1..nn {
            let jf = p - 1; // subsequence whose true label flips 1 -> 0
            let pf = self.ypred[jf] as usize;
            m[1][pf] -= 1;
            m[0][pf] += 1;
            left_ones_run += i64::from(self.ypred[jf]);
            let (lo, hi) = (self.r_off[jf] as usize, self.r_off[jf + 1] as usize);
            for di in lo..hi {
                let j = self.r_dat[di] as usize;
                self.zeros[j] += 1;
                self.ones[j] -= 1;
                let newpred = u8::from(self.zeros[j] < self.ones[j]);
                let oldpred = self.ypred[j];
                if newpred != oldpred {
                    let yt = usize::from(j >= p);
                    m[yt][oldpred as usize] -= 1;
                    m[yt][newpred as usize] += 1;
                    let delta = i64::from(newpred) - i64::from(oldpred);
                    tot_ones_run += delta;
                    if j < p {
                        left_ones_run += delta;
                    }
                    self.ypred[j] = newpred;
                }
            }
            self.profile[p] = self.score_fn.score(&m);
            self.left_ones[p] = left_ones_run as u32;
            self.tot_ones[p] = tot_ones_run as u32;
        }
        nn
    }
}

/// Naive reference: evaluates one split from scratch in O(k·n). Used by
/// tests and the benchmark harness to validate and time the incremental
/// algorithm against the paper's O(d^2) baseline.
pub fn naive_split_score(
    knn: &StreamingKnn,
    start_slot: usize,
    p: usize,
    score_fn: ScoreFn,
) -> f64 {
    let m_max = knn.max_subsequences();
    let nn = m_max - start_slot;
    let start_sid = knn.sid_of_slot(start_slot);
    let split_sid = start_sid + p as i64;
    let mut m = [[0i64; 2]; 2];
    for j in 0..nn {
        let (sids, _) = knn.neighbors(start_slot + j);
        let mut zeros = 0;
        let mut ones = 0;
        for &nsid in sids {
            if nsid < split_sid {
                zeros += 1;
            } else {
                ones += 1;
            }
        }
        let pred = usize::from(zeros < ones);
        let truth = usize::from(j >= p);
        m[truth][pred] += 1;
    }
    score_fn.score(&m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{KnnConfig, StreamingKnn};
    use crate::stats::SplitMix64;

    fn feed(n: usize, d: usize, w: usize, k: usize, seed: u64) -> StreamingKnn {
        let mut rng = SplitMix64::new(seed);
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, k));
        for _ in 0..n {
            knn.update(rng.next_f64() * 2.0 - 1.0);
        }
        knn
    }

    fn feed_two_regimes(n: usize, d: usize, w: usize, k: usize, seed: u64) -> StreamingKnn {
        let mut rng = SplitMix64::new(seed);
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, k));
        for i in 0..n {
            let base = if i < n / 2 {
                (i as f64 * 0.7).sin()
            } else {
                ((i as f64 * 0.1).sin() * 3.0).tanh() * 2.0
            };
            knn.update(base + 0.05 * (rng.next_f64() - 0.5));
        }
        knn
    }

    #[test]
    fn incremental_matches_naive_random() {
        let knn = feed(180, 120, 6, 3, 21);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let start = knn.qstart();
        let nn = cv.compute(&knn, start);
        assert!(nn > 2);
        for p in 1..nn {
            let want = naive_split_score(&knn, start, p, ScoreFn::MacroF1);
            let got = cv.profile()[p];
            assert!((got - want).abs() < 1e-12, "p = {p}: {got} vs {want}");
        }
    }

    #[test]
    fn incremental_matches_naive_with_eviction_and_offsets() {
        // Long stream so neighbours expire; also score a sub-range.
        let knn = feed(500, 150, 8, 3, 22);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let start = knn.qstart() + 37;
        let nn = cv.compute(&knn, start);
        assert!(nn > 2);
        for p in 1..nn {
            let want = naive_split_score(&knn, start, p, ScoreFn::MacroF1);
            let got = cv.profile()[p];
            assert!((got - want).abs() < 1e-12, "p = {p}: {got} vs {want}");
        }
    }

    #[test]
    fn incremental_matches_naive_balanced_accuracy() {
        let knn = feed(260, 130, 7, 5, 23);
        let mut cv = CrossVal::new(ScoreFn::BalancedAccuracy);
        let start = knn.qstart();
        let nn = cv.compute(&knn, start);
        for p in 1..nn {
            let want = naive_split_score(&knn, start, p, ScoreFn::BalancedAccuracy);
            let got = cv.profile()[p];
            assert!((got - want).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    fn group_counts_match_direct_recount() {
        let knn = feed(300, 140, 6, 3, 24);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let start = knn.qstart();
        let nn = cv.compute(&knn, start);
        // Recount ypred at a few splits by replaying naive predictions.
        let start_sid = knn.sid_of_slot(start);
        for &p in &[1usize, nn / 3, nn / 2, nn - 1] {
            let split_sid = start_sid + p as i64;
            let mut ones_left = 0u64;
            let mut ones_right = 0u64;
            for j in 0..nn {
                let (sids, _) = knn.neighbors(start + j);
                let zeros = sids.iter().filter(|&&s| s < split_sid).count();
                let pred = zeros * 2 < sids.len();
                if pred {
                    if j < p {
                        ones_left += 1;
                    } else {
                        ones_right += 1;
                    }
                }
            }
            let g = cv.groups_at(p);
            assert_eq!(g.n_left, p as u64);
            assert_eq!(g.ones_left, ones_left, "p = {p}");
            assert_eq!(g.ones_right, ones_right, "p = {p}");
        }
    }

    #[test]
    fn profile_peaks_near_true_change_point() {
        // Two clearly different regimes; the best split should fall near the
        // middle of the scored range.
        let n = 400;
        let knn = feed_two_regimes(n, 400, 10, 3, 25);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let nn = cv.compute(&knn, knn.qstart());
        assert!(nn > 10);
        let margin = 30;
        let best = (margin..nn - margin)
            .max_by(|&a, &b| cv.profile()[a].partial_cmp(&cv.profile()[b]).unwrap())
            .unwrap();
        let true_split = nn / 2;
        assert!(
            (best as i64 - true_split as i64).unsigned_abs() < 40,
            "best split {best}, expected ~{true_split}"
        );
        assert!(
            cv.profile()[best] > 0.85,
            "peak score {}",
            cv.profile()[best]
        );
    }

    #[test]
    fn too_small_range_returns_zero() {
        let knn = feed(40, 60, 6, 3, 26);
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let nn = cv.compute(&knn, knn.max_subsequences() - 1);
        assert_eq!(nn, 0);
        assert!(cv.is_empty());
    }

    #[test]
    fn engine_is_reusable_across_different_sizes() {
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        for (n, d, w) in [(150usize, 100usize, 6usize), (260, 130, 9), (90, 80, 4)] {
            let knn = feed(n, d, w, 3, 27);
            let start = knn.qstart();
            let nn = cv.compute(&knn, start);
            for p in (1..nn).step_by(7) {
                let want = naive_split_score(&knn, start, p, ScoreFn::MacroF1);
                assert!((cv.profile()[p] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn score_fn_confusion_matrix_basics() {
        // Perfect prediction.
        let m = [[10, 0], [0, 10]];
        assert!((ScoreFn::MacroF1.score(&m) - 1.0).abs() < 1e-12);
        assert!((ScoreFn::BalancedAccuracy.score(&m) - 1.0).abs() < 1e-12);
        // All predicted 1 with balanced truth: F1(0) = 0, F1(1) = 2/3.
        let m = [[0, 10], [0, 10]];
        assert!((ScoreFn::MacroF1.score(&m) - (2.0 / 3.0) / 2.0).abs() < 1e-12);
        assert!((ScoreFn::BalancedAccuracy.score(&m) - 0.5).abs() < 1e-12);
        // Empty matrix must not divide by zero.
        let m = [[0, 0], [0, 0]];
        assert_eq!(ScoreFn::MacroF1.score(&m), 0.0);
        assert_eq!(ScoreFn::BalancedAccuracy.score(&m), 0.0);
    }
}
