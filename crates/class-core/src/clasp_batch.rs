//! Batch ClaSP (paper §2.2) built on the streaming primitives.
//!
//! When the sliding window spans the entire series (`d = n`), nothing is
//! ever evicted and the insert-only neighbour maintenance of the streaming
//! k-NN considers every admissible subsequence pair exactly once — i.e. it
//! produces the *exact* batch k-NN. Batch ClaSP is therefore a thin wrapper:
//! one pass to build the k-NN, one incremental cross-validation sweep for
//! the profile, and (for segmentation) recursive splitting with the same
//! significance test ClaSS uses online. This also backs the paper's remark
//! that ClaSS "can also be used for very long TS in the batch scenario".

use crate::crossval::{CrossVal, ScoreFn};
use crate::knn::{KnnConfig, StreamingKnn};
use crate::similarity::Similarity;
use crate::stats::{significance_ln_p, SampleSize, SplitMix64};

/// Configuration for batch ClaSP.
#[derive(Debug, Clone)]
pub struct ClaspConfig {
    /// Subsequence width `w`.
    pub width: usize,
    /// Number of nearest neighbours (default 3).
    pub k: usize,
    /// Similarity measure (default Pearson).
    pub similarity: Similarity,
    /// Split score (default macro F1).
    pub score: ScoreFn,
    /// Significance level as `log10(alpha)` for recursive segmentation.
    pub log10_alpha: f64,
    /// Label sample size for the significance test.
    pub sample_size: SampleSize,
    /// Minimum segment length as a multiple of `w`.
    pub cp_margin_factor: f64,
    /// Minimum cross-validation score for a split to qualify as a CP.
    pub min_score: f64,
    /// RNG seed for the resampled significance test.
    pub seed: u64,
}

impl ClaspConfig {
    /// Paper-default configuration for a given width.
    pub fn new(width: usize) -> Self {
        Self {
            width,
            k: 3,
            similarity: Similarity::Pearson,
            score: ScoreFn::MacroF1,
            log10_alpha: -50.0,
            sample_size: SampleSize::Fixed1000,
            cp_margin_factor: 5.0,
            min_score: 0.75,
            seed: 0x5EED,
        }
    }
}

/// Computes the full classification score profile of `ts` (Definition 6).
///
/// `profile[p]` scores the split placing subsequences `0..p` left; the
/// profile has `n - w + 1` entries (entry 0 is 0 by convention).
///
/// Runs in O(k·n) per profile after the O(n·(n/k?))-free exact k-NN pass;
/// overall O(n^2 / ...) work is avoided entirely compared to the original
/// O(n^2) formulation — the pass is O(n) per arriving point, O(n^2) total
/// for the k-NN as in any exact all-pairs method, but the cross-validation
/// itself is O(k·n).
pub fn clasp_profile(ts: &[f64], cfg: &ClaspConfig) -> Vec<f64> {
    let n = ts.len();
    assert!(
        cfg.width >= 2 && n >= 2 * cfg.width,
        "series too short for width {}",
        cfg.width
    );
    let knn_cfg = KnnConfig {
        window_size: n,
        width: cfg.width,
        k: cfg.k,
        similarity: cfg.similarity,
        exclusion: None,
        update_existing: true,
    };
    let mut knn = StreamingKnn::new(knn_cfg);
    for &x in ts {
        knn.update(x);
    }
    let mut cv = CrossVal::new(cfg.score);
    cv.compute(&knn, knn.qstart());
    cv.profile().to_vec()
}

/// Recursive batch segmentation with ClaSP: finds the most significant
/// split, then recurses into both halves (the standard batch ClaSP
/// procedure). Returns change point positions in ascending order.
pub fn clasp_segment(ts: &[f64], cfg: &ClaspConfig) -> Vec<usize> {
    let mut cps = Vec::new();
    let margin = ((cfg.cp_margin_factor * cfg.width as f64) as usize).max(2);
    let mut rng = SplitMix64::new(cfg.seed);
    segment_rec(ts, cfg, 0, margin, &mut rng, &mut cps);
    cps.sort_unstable();
    cps
}

fn segment_rec(
    ts: &[f64],
    cfg: &ClaspConfig,
    offset: usize,
    margin: usize,
    rng: &mut SplitMix64,
    cps: &mut Vec<usize>,
) {
    let n = ts.len();
    if n < 2 * cfg.width || n < 2 * margin + 2 + cfg.width {
        return;
    }
    let profile = clasp_profile(ts, cfg);
    let nn = profile.len();
    if nn < 2 * margin + 2 {
        return;
    }
    // Rebuild the label groups at the best split with a one-shot CrossVal,
    // reusing the same machinery as the online path.
    let knn_cfg = KnnConfig {
        window_size: n,
        width: cfg.width,
        k: cfg.k,
        similarity: cfg.similarity,
        exclusion: None,
        update_existing: true,
    };
    let mut knn = StreamingKnn::new(knn_cfg);
    for &x in ts {
        knn.update(x);
    }
    let mut cv = CrossVal::new(cfg.score);
    cv.compute(&knn, knn.qstart());
    let (lo, hi) = (margin, nn - margin);
    let mut best_p = lo;
    let mut best_v = f64::MIN;
    for p in lo..hi {
        if cv.profile()[p] > best_v {
            best_v = cv.profile()[p];
            best_p = p;
        }
    }
    if best_v < cfg.min_score {
        return;
    }
    let ln_p = significance_ln_p(cv.groups_at(best_p), cfg.sample_size, rng);
    if ln_p > cfg.log10_alpha * core::f64::consts::LN_10 {
        return;
    }
    let cp = best_p; // split position in local coordinates (subsequence start)
    cps.push(offset + cp);
    segment_rec(&ts[..cp], cfg, offset, margin, rng, cps);
    segment_rec(&ts[cp..], cfg, offset + cp, margin, rng, cps);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SplitMix64;

    fn regimes(lens: &[usize], freqs: &[f64], seed: u64) -> (Vec<f64>, Vec<usize>) {
        let mut rng = SplitMix64::new(seed);
        let mut xs = Vec::new();
        let mut cps = Vec::new();
        for (i, (&len, &f)) in lens.iter().zip(freqs).enumerate() {
            if i > 0 {
                cps.push(xs.len());
            }
            for t in 0..len {
                xs.push((t as f64 * f).sin() + 0.05 * (rng.next_f64() - 0.5));
            }
        }
        (xs, cps)
    }

    #[test]
    fn profile_peaks_at_change_point() {
        let (xs, cps) = regimes(&[1500, 1500], &[0.15, 0.4], 1);
        let cfg = ClaspConfig::new(40);
        let profile = clasp_profile(&xs, &cfg);
        let margin = 200;
        let best = (margin..profile.len() - margin)
            .max_by(|&a, &b| profile[a].partial_cmp(&profile[b]).unwrap())
            .unwrap();
        assert!(
            (best as i64 - cps[0] as i64).unsigned_abs() < 200,
            "peak at {best}, cp at {}",
            cps[0]
        );
    }

    #[test]
    fn segment_recovers_two_change_points() {
        let (xs, cps) = regimes(&[2000, 2000, 2000], &[0.12, 0.35, 0.7], 2);
        let mut cfg = ClaspConfig::new(45);
        cfg.log10_alpha = -15.0;
        let found = clasp_segment(&xs, &cfg);
        for &want in &cps {
            assert!(
                found
                    .iter()
                    .any(|&f| (f as i64 - want as i64).unsigned_abs() < 300),
                "missing cp near {want}: {found:?}"
            );
        }
    }

    #[test]
    fn segment_returns_empty_on_homogeneous_series() {
        let (xs, _) = regimes(&[4000], &[0.2], 3);
        let mut cfg = ClaspConfig::new(40);
        cfg.log10_alpha = -15.0;
        let found = clasp_segment(&xs, &cfg);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    #[should_panic]
    fn profile_rejects_too_short_series() {
        let xs = vec![0.0; 30];
        let cfg = ClaspConfig::new(20);
        let _ = clasp_profile(&xs, &cfg);
    }
}
