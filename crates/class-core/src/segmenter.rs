//! The common interface implemented by ClaSS and all competitor algorithms.

/// A streaming time series segmentation algorithm.
///
/// Implementations consume one observation at a time and report change
/// points (absolute 0-based stream positions) as soon as they are detected.
/// `step` may report zero, one, or (rarely, e.g. during ClaSS's warm-up
/// replay) several change points for a single observation; positions are
/// appended to `cps`.
pub trait StreamingSegmenter {
    /// Ingests one observation, appending any detected change points.
    fn step(&mut self, x: f64, cps: &mut Vec<u64>);

    /// Signals the end of a finite stream, allowing implementations that
    /// buffer (e.g. ClaSS during width learning) to flush pending output.
    fn finalize(&mut self, _cps: &mut Vec<u64>) {}

    /// Human-readable algorithm name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Convenience driver: feeds an entire finite series and returns all
    /// reported change points in ascending order, deduplicated.
    fn segment_series(&mut self, xs: &[f64]) -> Vec<u64> {
        let mut cps = Vec::new();
        for &x in xs {
            self.step(x, &mut cps);
        }
        self.finalize(&mut cps);
        cps.sort_unstable();
        cps.dedup();
        cps
    }
}

/// Boxed segmenters forward the trait, so heterogeneous line-ups
/// (`Box<dyn StreamingSegmenter>`) compose with generic operators like
/// the stream engine's `SegmenterOperator`.
impl<S: StreamingSegmenter + ?Sized> StreamingSegmenter for Box<S> {
    fn step(&mut self, x: f64, cps: &mut Vec<u64>) {
        (**self).step(x, cps);
    }

    fn finalize(&mut self, cps: &mut Vec<u64>) {
        (**self).finalize(cps);
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct EveryN {
        n: u64,
        seen: u64,
    }

    impl StreamingSegmenter for EveryN {
        fn step(&mut self, _x: f64, cps: &mut Vec<u64>) {
            self.seen += 1;
            if self.seen % self.n == 0 {
                cps.push(self.seen - 1);
            }
        }
        fn name(&self) -> &'static str {
            "every-n"
        }
    }

    #[test]
    fn segment_series_collects_sorted_unique_cps() {
        let mut s = EveryN { n: 3, seen: 0 };
        let xs = vec![0.0; 10];
        let cps = s.segment_series(&xs);
        assert_eq!(cps, vec![2, 5, 8]);
        assert_eq!(s.name(), "every-n");
    }
}
