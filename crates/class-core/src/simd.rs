//! Portable SIMD kernels for the streaming hot paths.
//!
//! The per-update cost of ClaSS is dominated by three straight-line f64
//! loops over contiguous slices (see `cargo bench -p bench --bench
//! core_speedups` and ROADMAP.md): the Q-recursion + scoring sweep of
//! [`crate::knn::StreamingKnn::update`], the subsequence-moment sums, and
//! the explicit dot products that seed the recursion. This module provides
//! fused kernels for all of them in three layers that share one semantics:
//!
//! * [`scalar`] — the plain-Rust reference implementation and the single
//!   source of truth: every other backend must produce the same values
//!   (bit-identical for the element-wise Q-step kernels, within rounding
//!   reassociation for the reductions).
//! * [`autovec`] — the same loops restructured into 4-wide `[f64; 4]`
//!   lane blocks with branchless selects, written so stable-Rust LLVM
//!   autovectorizes them on any target.
//! * [`avx2`] (x86-64 only) — explicit 256-bit `core::arch` intrinsics,
//!   selected at runtime via CPU feature detection with [`autovec`] as the
//!   portable fallback.
//!
//! The free functions at the top level ([`dot`], [`sum_sumsq`],
//! [`diff_sumsq`], [`qstep_pearson`], [`qstep_euclidean`], [`qstep_cid`])
//! dispatch to the best available backend, resolved once per process.
//! The `CLASS_SIMD` environment variable (`scalar` | `autovec` | `avx2`)
//! overrides the choice for A/B measurements; an unavailable request
//! falls back to [`Backend::Autovec`].
//!
//! NaN semantics are part of the contract: dirty stream values must
//! propagate (or be floored/zeroed) exactly as the scalar reference does,
//! so the differential tests in `tests/simd_differential.rs` exercise
//! NaN-containing inputs across all remainder lengths.

use crate::similarity::{
    pearson_from_dot, sq_cid_from_dot, sq_euclidean_from_dot, CE_FLOOR, SIGMA_FLOOR,
};
use std::sync::OnceLock;

/// Lane width of the vectorized kernels (4 × f64 = 256 bit).
pub const LANES: usize = 4;

/// Which kernel implementation services the dispatching free functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Plain-Rust reference loops (semantics source of truth).
    Scalar,
    /// 4-wide lane blocks autovectorized by LLVM on stable Rust.
    Autovec,
    /// Explicit AVX2 `core::arch` intrinsics (x86-64, runtime-detected).
    Avx2,
}

impl Backend {
    /// Short lowercase identifier, used by benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Autovec => "autovec",
            Backend::Avx2 => "avx2",
        }
    }
}

/// The backend servicing the dispatching free functions, resolved once per
/// process from CPU feature detection and the `CLASS_SIMD` override.
pub fn active_backend() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detect() -> Backend {
    match std::env::var("CLASS_SIMD").ok().as_deref() {
        Some("scalar") => return Backend::Scalar,
        Some("autovec") => return Backend::Autovec,
        Some("avx2") => {
            return if avx2_available() {
                Backend::Avx2
            } else {
                Backend::Autovec
            };
        }
        _ => {}
    }
    if avx2_available() {
        Backend::Avx2
    } else {
        Backend::Autovec
    }
}

/// In/out state of one fused Q-recursion + score + Q-shift pass.
///
/// For every slot `i` the kernels compute, in a single traversal,
///
/// ```text
/// dot       = q[i] + tail[i] * last     // complete the w-length dot
/// scores[i] = similarity(dot, ...)      // measure-specific, see kernels
/// q[i]      = dot - head[i] * first     // shift to the next step's state
/// ```
///
/// replacing the previous load → dot → score → store sequence of
/// `StreamingKnn::update` (paper Eq. 3–5, Algorithm 2).
#[derive(Debug)]
pub struct QStepIo<'a> {
    /// Maintained (w-1)-length dot products; rewritten in place to the
    /// next step's value.
    pub q: &'a mut [f64],
    /// Output: similarity score of each slot vs. the newest subsequence.
    pub scores: &'a mut [f64],
    /// `win[i + w - 1]` per slot — the value completing each dot product.
    pub tail: &'a [f64],
    /// `win[i]` per slot — the value leaving each dot for the next step.
    pub head: &'a [f64],
    /// Newest window value (multiplies `tail`).
    pub last: f64,
    /// First value of the newest subsequence (multiplies `head`).
    pub first: f64,
}

impl QStepIo<'_> {
    #[inline]
    fn check(&self) {
        let n = self.q.len();
        assert_eq!(self.scores.len(), n, "scores length mismatch");
        assert_eq!(self.tail.len(), n, "tail length mismatch");
        assert_eq!(self.head.len(), n, "head length mismatch");
    }
}

/// Dot product of two equal-length slices via the active backend.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot operand length mismatch");
    match active_backend() {
        Backend::Scalar => scalar::dot(a, b),
        Backend::Autovec => autovec::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => avx2::dot(a, b),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => autovec::dot(a, b),
    }
}

/// Fused `(sum, sum of squares)` of a slice via the active backend.
#[inline]
pub fn sum_sumsq(a: &[f64]) -> (f64, f64) {
    match active_backend() {
        Backend::Scalar => scalar::sum_sumsq(a),
        Backend::Autovec => autovec::sum_sumsq(a),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => avx2::sum_sumsq(a),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => autovec::sum_sumsq(a),
    }
}

/// Sum of squared consecutive differences (`CE(x)^2`, the complexity
/// estimate of the CID measure) via the active backend.
#[inline]
pub fn diff_sumsq(a: &[f64]) -> f64 {
    match active_backend() {
        Backend::Scalar => scalar::diff_sumsq(a),
        Backend::Autovec => autovec::diff_sumsq(a),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => avx2::diff_sumsq(a),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => autovec::diff_sumsq(a),
    }
}

/// Fused Q-step scoring with the Pearson measure (paper Eq. 4).
/// `mu`/`sig` are the per-slot moments, `mu_n`/`sig_n` the newest
/// subsequence's, `w` the subsequence width as f64.
#[inline]
pub fn qstep_pearson(io: QStepIo<'_>, mu: &[f64], sig: &[f64], w: f64, mu_n: f64, sig_n: f64) {
    io.check();
    assert_eq!(mu.len(), io.q.len(), "mu length mismatch");
    assert_eq!(sig.len(), io.q.len(), "sig length mismatch");
    match active_backend() {
        Backend::Scalar => scalar::qstep_pearson(io, mu, sig, w, mu_n, sig_n),
        Backend::Autovec => autovec::qstep_pearson(io, mu, sig, w, mu_n, sig_n),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => avx2::qstep_pearson(io, mu, sig, w, mu_n, sig_n),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => autovec::qstep_pearson(io, mu, sig, w, mu_n, sig_n),
    }
}

/// Fused Q-step scoring with the (negated squared) Euclidean measure.
/// `ssq` are the per-slot sums of squares, `ssq_n` the newest one's.
#[inline]
pub fn qstep_euclidean(io: QStepIo<'_>, ssq: &[f64], ssq_n: f64) {
    io.check();
    assert_eq!(ssq.len(), io.q.len(), "ssq length mismatch");
    match active_backend() {
        Backend::Scalar => scalar::qstep_euclidean(io, ssq, ssq_n),
        Backend::Autovec => autovec::qstep_euclidean(io, ssq, ssq_n),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => avx2::qstep_euclidean(io, ssq, ssq_n),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => autovec::qstep_euclidean(io, ssq, ssq_n),
    }
}

/// Fused Q-step scoring with the (negated squared) complexity-invariant
/// distance. `ssq`/`ce2` are per-slot, `ssq_n`/`ce2_n` the newest one's.
#[inline]
pub fn qstep_cid(io: QStepIo<'_>, ssq: &[f64], ce2: &[f64], ssq_n: f64, ce2_n: f64) {
    io.check();
    assert_eq!(ssq.len(), io.q.len(), "ssq length mismatch");
    assert_eq!(ce2.len(), io.q.len(), "ce2 length mismatch");
    match active_backend() {
        Backend::Scalar => scalar::qstep_cid(io, ssq, ce2, ssq_n, ce2_n),
        Backend::Autovec => autovec::qstep_cid(io, ssq, ce2, ssq_n, ce2_n),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => avx2::qstep_cid(io, ssq, ce2, ssq_n, ce2_n),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => autovec::qstep_cid(io, ssq, ce2, ssq_n, ce2_n),
    }
}

/// Plain-Rust reference kernels — the single source of truth for the
/// semantics (including NaN propagation) of every other backend.
pub mod scalar {
    use super::*;

    /// Dot product, sequential accumulation.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            acc += x * y;
        }
        acc
    }

    /// `(sum, sum of squares)`, sequential accumulation.
    pub fn sum_sumsq(a: &[f64]) -> (f64, f64) {
        let mut s = 0.0;
        let mut q = 0.0;
        for &v in a {
            s += v;
            q += v * v;
        }
        (s, q)
    }

    /// Sum of squared consecutive differences, sequential accumulation.
    pub fn diff_sumsq(a: &[f64]) -> f64 {
        let mut acc = 0.0;
        for p in a.windows(2) {
            let d = p[1] - p[0];
            acc += d * d;
        }
        acc
    }

    /// Fused Q-step, Pearson scoring (see [`QStepIo`]).
    pub fn qstep_pearson(io: QStepIo<'_>, mu: &[f64], sig: &[f64], w: f64, mu_n: f64, sig_n: f64) {
        let QStepIo {
            q,
            scores,
            tail,
            head,
            last,
            first,
        } = io;
        for i in 0..q.len() {
            let dot = q[i] + tail[i] * last;
            scores[i] = pearson_from_dot(dot, w, mu[i], sig[i], mu_n, sig_n);
            q[i] = dot - head[i] * first;
        }
    }

    /// Fused Q-step, negated squared Euclidean scoring.
    pub fn qstep_euclidean(io: QStepIo<'_>, ssq: &[f64], ssq_n: f64) {
        let QStepIo {
            q,
            scores,
            tail,
            head,
            last,
            first,
        } = io;
        for i in 0..q.len() {
            let dot = q[i] + tail[i] * last;
            scores[i] = -sq_euclidean_from_dot(dot, ssq[i], ssq_n);
            q[i] = dot - head[i] * first;
        }
    }

    /// Fused Q-step, negated squared CID scoring.
    pub fn qstep_cid(io: QStepIo<'_>, ssq: &[f64], ce2: &[f64], ssq_n: f64, ce2_n: f64) {
        let QStepIo {
            q,
            scores,
            tail,
            head,
            last,
            first,
        } = io;
        for i in 0..q.len() {
            let dot = q[i] + tail[i] * last;
            scores[i] = -sq_cid_from_dot(dot, ssq[i], ssq_n, ce2[i], ce2_n);
            q[i] = dot - head[i] * first;
        }
    }
}

/// 4-wide lane-block kernels written so stable-Rust LLVM autovectorizes
/// them: fixed-size `[f64; 4]` blocks, independent accumulators for the
/// reductions, branchless selects for the element-wise kernels. The
/// element-wise Q-step kernels are value-identical to [`scalar`]; the
/// reductions differ only by summation order.
pub mod autovec {
    use super::*;

    /// Dot product with 4 independent lane accumulators.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let m = a.len() - a.len() % LANES;
        let mut acc = [0.0f64; LANES];
        for (ca, cb) in a[..m].chunks_exact(LANES).zip(b[..m].chunks_exact(LANES)) {
            for l in 0..LANES {
                acc[l] += ca[l] * cb[l];
            }
        }
        let mut s = (acc[0] + acc[2]) + (acc[1] + acc[3]);
        for (&x, &y) in a[m..].iter().zip(&b[m..]) {
            s += x * y;
        }
        s
    }

    /// `(sum, sum of squares)` with 4 independent lane accumulators.
    pub fn sum_sumsq(a: &[f64]) -> (f64, f64) {
        let m = a.len() - a.len() % LANES;
        let mut acc_s = [0.0f64; LANES];
        let mut acc_q = [0.0f64; LANES];
        for c in a[..m].chunks_exact(LANES) {
            for l in 0..LANES {
                acc_s[l] += c[l];
                acc_q[l] += c[l] * c[l];
            }
        }
        let mut s = (acc_s[0] + acc_s[2]) + (acc_s[1] + acc_s[3]);
        let mut q = (acc_q[0] + acc_q[2]) + (acc_q[1] + acc_q[3]);
        for &v in &a[m..] {
            s += v;
            q += v * v;
        }
        (s, q)
    }

    /// Sum of squared consecutive differences, 4 lane accumulators over
    /// the `n - 1` difference pairs.
    pub fn diff_sumsq(a: &[f64]) -> f64 {
        if a.len() < 2 {
            return 0.0;
        }
        let nd = a.len() - 1;
        let m = nd - nd % LANES;
        let mut acc = [0.0f64; LANES];
        let mut i = 0;
        while i < m {
            for l in 0..LANES {
                let d = a[i + l + 1] - a[i + l];
                acc[l] += d * d;
            }
            i += LANES;
        }
        let mut s = (acc[0] + acc[2]) + (acc[1] + acc[3]);
        for j in m..nd {
            let d = a[j + 1] - a[j];
            s += d * d;
        }
        s
    }

    /// Branchless floor at zero that preserves NaN, matching the scalar
    /// `sq_euclidean_from_dot` clamp (the select compares false on NaN).
    #[inline(always)]
    fn floor0(x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            x
        }
    }

    /// Branchless clamp into `[-1, 1]` that, like `f64::clamp`, leaves NaN
    /// untouched (both selects compare false on NaN).
    #[inline(always)]
    fn clamp1(c: f64) -> f64 {
        let lo = if c < -1.0 { -1.0 } else { c };
        if lo > 1.0 {
            1.0
        } else {
            lo
        }
    }

    /// Fused Q-step, Pearson scoring; value-identical to the scalar kernel.
    pub fn qstep_pearson(io: QStepIo<'_>, mu: &[f64], sig: &[f64], w: f64, mu_n: f64, sig_n: f64) {
        let QStepIo {
            q,
            scores,
            tail,
            head,
            last,
            first,
        } = io;
        let n = q.len();
        let m = n - n % LANES;
        let flat_n = sig_n < SIGMA_FLOOR;
        let blocks = q[..m]
            .chunks_exact_mut(LANES)
            .zip(scores[..m].chunks_exact_mut(LANES))
            .zip(
                tail[..m]
                    .chunks_exact(LANES)
                    .zip(head[..m].chunks_exact(LANES)),
            )
            .zip(
                mu[..m]
                    .chunks_exact(LANES)
                    .zip(sig[..m].chunks_exact(LANES)),
            );
        for (((qb, sb), (tb, hb)), (mb, gb)) in blocks {
            for l in 0..LANES {
                let dot = qb[l] + tb[l] * last;
                let c = clamp1((dot - w * mb[l] * mu_n) / (w * gb[l] * sig_n));
                sb[l] = if flat_n || gb[l] < SIGMA_FLOOR {
                    0.0
                } else {
                    c
                };
                qb[l] = dot - hb[l] * first;
            }
        }
        scalar::qstep_pearson(
            QStepIo {
                q: &mut q[m..],
                scores: &mut scores[m..],
                tail: &tail[m..],
                head: &head[m..],
                last,
                first,
            },
            &mu[m..],
            &sig[m..],
            w,
            mu_n,
            sig_n,
        );
    }

    /// Fused Q-step, negated squared Euclidean scoring; value-identical to
    /// the scalar kernel.
    pub fn qstep_euclidean(io: QStepIo<'_>, ssq: &[f64], ssq_n: f64) {
        let QStepIo {
            q,
            scores,
            tail,
            head,
            last,
            first,
        } = io;
        let n = q.len();
        let m = n - n % LANES;
        let blocks = q[..m]
            .chunks_exact_mut(LANES)
            .zip(scores[..m].chunks_exact_mut(LANES))
            .zip(
                tail[..m]
                    .chunks_exact(LANES)
                    .zip(head[..m].chunks_exact(LANES)),
            )
            .zip(ssq[..m].chunks_exact(LANES));
        for (((qb, sb), (tb, hb)), cb) in blocks {
            for l in 0..LANES {
                let dot = qb[l] + tb[l] * last;
                let ed2 = floor0(cb[l] + ssq_n - 2.0 * dot);
                sb[l] = -ed2;
                qb[l] = dot - hb[l] * first;
            }
        }
        scalar::qstep_euclidean(
            QStepIo {
                q: &mut q[m..],
                scores: &mut scores[m..],
                tail: &tail[m..],
                head: &head[m..],
                last,
                first,
            },
            &ssq[m..],
            ssq_n,
        );
    }

    /// Fused Q-step, negated squared CID scoring; value-identical to the
    /// scalar kernel.
    pub fn qstep_cid(io: QStepIo<'_>, ssq: &[f64], ce2: &[f64], ssq_n: f64, ce2_n: f64) {
        let QStepIo {
            q,
            scores,
            tail,
            head,
            last,
            first,
        } = io;
        let n = q.len();
        let m = n - n % LANES;
        let blocks = q[..m]
            .chunks_exact_mut(LANES)
            .zip(scores[..m].chunks_exact_mut(LANES))
            .zip(
                tail[..m]
                    .chunks_exact(LANES)
                    .zip(head[..m].chunks_exact(LANES)),
            )
            .zip(
                ssq[..m]
                    .chunks_exact(LANES)
                    .zip(ce2[..m].chunks_exact(LANES)),
            );
        for (((qb, sb), (tb, hb)), (cb, eb)) in blocks {
            for l in 0..LANES {
                let dot = qb[l] + tb[l] * last;
                let ed2 = floor0(cb[l] + ssq_n - 2.0 * dot);
                let (hi, lo) = if eb[l] >= ce2_n {
                    (eb[l], ce2_n)
                } else {
                    (ce2_n, eb[l])
                };
                sb[l] = -(ed2 * (hi / lo.max(CE_FLOOR)));
                qb[l] = dot - hb[l] * first;
            }
        }
        scalar::qstep_cid(
            QStepIo {
                q: &mut q[m..],
                scores: &mut scores[m..],
                tail: &tail[m..],
                head: &head[m..],
                last,
                first,
            },
            &ssq[m..],
            &ce2[m..],
            ssq_n,
            ce2_n,
        );
    }
}

/// Explicit AVX2 kernels (`core::arch::x86_64` intrinsics). Every public
/// function asserts [`avx2::available`] and falls through to [`scalar`]
/// for the `n % 4` remainder. NaN handling replicates the scalar kernels
/// exactly: clamps blend the unordered lanes back, and `maxpd`'s
/// returns-second-operand-on-NaN rule matches `f64::max`.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // raw intrinsics behind runtime feature detection
pub mod avx2 {
    use super::*;
    use core::arch::x86_64::*;

    /// Whether the running CPU supports these kernels.
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    #[inline(always)]
    fn assert_available() {
        assert!(available(), "AVX2 kernels called on a CPU without AVX2");
    }

    /// Dot product; lane-accumulation order matches [`autovec::dot`].
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_available();
        // Hard assert: the impl reads raw pointers sized by `a.len()`, so a
        // shorter `b` would be an out-of-bounds read, not a panic.
        assert_eq!(a.len(), b.len(), "dot operand length mismatch");
        unsafe { dot_impl(a, b) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot_impl(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let m = n - n % LANES;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < m {
            let va = _mm256_loadu_pd(a.as_ptr().add(i));
            let vb = _mm256_loadu_pd(b.as_ptr().add(i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
            i += LANES;
        }
        let mut s = hsum(acc);
        for j in m..n {
            s += a[j] * b[j];
        }
        s
    }

    /// `(sum, sum of squares)`; lane order matches [`autovec::sum_sumsq`].
    pub fn sum_sumsq(a: &[f64]) -> (f64, f64) {
        assert_available();
        unsafe { sum_sumsq_impl(a) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn sum_sumsq_impl(a: &[f64]) -> (f64, f64) {
        let n = a.len();
        let m = n - n % LANES;
        let mut acc_s = _mm256_setzero_pd();
        let mut acc_q = _mm256_setzero_pd();
        let mut i = 0;
        while i < m {
            let v = _mm256_loadu_pd(a.as_ptr().add(i));
            acc_s = _mm256_add_pd(acc_s, v);
            acc_q = _mm256_add_pd(acc_q, _mm256_mul_pd(v, v));
            i += LANES;
        }
        let mut s = hsum(acc_s);
        let mut q = hsum(acc_q);
        for &v in &a[m..] {
            s += v;
            q += v * v;
        }
        (s, q)
    }

    /// Sum of squared consecutive differences via overlapping loads.
    pub fn diff_sumsq(a: &[f64]) -> f64 {
        assert_available();
        unsafe { diff_sumsq_impl(a) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn diff_sumsq_impl(a: &[f64]) -> f64 {
        if a.len() < 2 {
            return 0.0;
        }
        let nd = a.len() - 1;
        let m = nd - nd % LANES;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < m {
            let lo = _mm256_loadu_pd(a.as_ptr().add(i));
            let hi = _mm256_loadu_pd(a.as_ptr().add(i + 1));
            let d = _mm256_sub_pd(hi, lo);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            i += LANES;
        }
        let mut s = hsum(acc);
        for j in m..nd {
            let d = a[j + 1] - a[j];
            s += d * d;
        }
        s
    }

    /// Horizontal sum in the `(0 + 2) + (1 + 3)` order the lane-block
    /// backends use.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let mut lanes = [0.0f64; LANES];
        _mm256_storeu_pd(lanes.as_mut_ptr(), v);
        (lanes[0] + lanes[2]) + (lanes[1] + lanes[3])
    }

    /// Fused Q-step, Pearson scoring; value-identical to the scalar kernel
    /// (flat-σ zeroing and NaN propagation included).
    pub fn qstep_pearson(io: QStepIo<'_>, mu: &[f64], sig: &[f64], w: f64, mu_n: f64, sig_n: f64) {
        assert_available();
        // Hard asserts: the impl reads raw pointers sized by `q.len()`.
        io.check();
        assert_eq!(mu.len(), io.q.len(), "mu length mismatch");
        assert_eq!(sig.len(), io.q.len(), "sig length mismatch");
        unsafe { qstep_pearson_impl(io, mu, sig, w, mu_n, sig_n) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn qstep_pearson_impl(
        io: QStepIo<'_>,
        mu: &[f64],
        sig: &[f64],
        w: f64,
        mu_n: f64,
        sig_n: f64,
    ) {
        let QStepIo {
            q,
            scores,
            tail,
            head,
            last,
            first,
        } = io;
        let n = q.len();
        let m = n - n % LANES;
        let vlast = _mm256_set1_pd(last);
        let vfirst = _mm256_set1_pd(first);
        let vw = _mm256_set1_pd(w);
        let vmun = _mm256_set1_pd(mu_n);
        let vsign = _mm256_set1_pd(sig_n);
        let vfloor = _mm256_set1_pd(SIGMA_FLOOR);
        let vneg1 = _mm256_set1_pd(-1.0);
        let vpos1 = _mm256_set1_pd(1.0);
        let vzero = _mm256_setzero_pd();
        // sig_n < floor zeroes every lane (scalar checks it per call).
        let flat_n = _mm256_cmp_pd::<_CMP_LT_OQ>(vsign, vfloor);
        let mut i = 0;
        while i < m {
            let vq = _mm256_loadu_pd(q.as_ptr().add(i));
            let vt = _mm256_loadu_pd(tail.as_ptr().add(i));
            let vh = _mm256_loadu_pd(head.as_ptr().add(i));
            let vmu = _mm256_loadu_pd(mu.as_ptr().add(i));
            let vsig = _mm256_loadu_pd(sig.as_ptr().add(i));
            let dot = _mm256_add_pd(vq, _mm256_mul_pd(vt, vlast));
            // Same association as the scalar kernel: (w*mu_a)*mu_n etc.
            let num = _mm256_sub_pd(dot, _mm256_mul_pd(_mm256_mul_pd(vw, vmu), vmun));
            let den = _mm256_mul_pd(_mm256_mul_pd(vw, vsig), vsign);
            let c = _mm256_div_pd(num, den);
            // clamp to [-1, 1] but keep NaN lanes NaN, like f64::clamp.
            let clamped = _mm256_min_pd(_mm256_max_pd(c, vneg1), vpos1);
            let unord = _mm256_cmp_pd::<_CMP_UNORD_Q>(c, c);
            let val = _mm256_blendv_pd(clamped, c, unord);
            let flat = _mm256_or_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(vsig, vfloor), flat_n);
            let score = _mm256_blendv_pd(val, vzero, flat);
            _mm256_storeu_pd(scores.as_mut_ptr().add(i), score);
            let qn = _mm256_sub_pd(dot, _mm256_mul_pd(vh, vfirst));
            _mm256_storeu_pd(q.as_mut_ptr().add(i), qn);
            i += LANES;
        }
        scalar::qstep_pearson(
            QStepIo {
                q: &mut q[m..],
                scores: &mut scores[m..],
                tail: &tail[m..],
                head: &head[m..],
                last,
                first,
            },
            &mu[m..],
            &sig[m..],
            w,
            mu_n,
            sig_n,
        );
    }

    /// Fused Q-step, negated squared Euclidean scoring; value-identical to
    /// the scalar kernel (NaN-preserving floor at zero included).
    pub fn qstep_euclidean(io: QStepIo<'_>, ssq: &[f64], ssq_n: f64) {
        assert_available();
        io.check();
        assert_eq!(ssq.len(), io.q.len(), "ssq length mismatch");
        unsafe { qstep_euclidean_impl(io, ssq, ssq_n) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn qstep_euclidean_impl(io: QStepIo<'_>, ssq: &[f64], ssq_n: f64) {
        let QStepIo {
            q,
            scores,
            tail,
            head,
            last,
            first,
        } = io;
        let n = q.len();
        let m = n - n % LANES;
        let vlast = _mm256_set1_pd(last);
        let vfirst = _mm256_set1_pd(first);
        let vssqn = _mm256_set1_pd(ssq_n);
        let vtwo = _mm256_set1_pd(2.0);
        let vzero = _mm256_setzero_pd();
        let vsign = _mm256_set1_pd(-0.0);
        let mut i = 0;
        while i < m {
            let vq = _mm256_loadu_pd(q.as_ptr().add(i));
            let vt = _mm256_loadu_pd(tail.as_ptr().add(i));
            let vh = _mm256_loadu_pd(head.as_ptr().add(i));
            let vssq = _mm256_loadu_pd(ssq.as_ptr().add(i));
            let dot = _mm256_add_pd(vq, _mm256_mul_pd(vt, vlast));
            let inner = _mm256_sub_pd(_mm256_add_pd(vssq, vssqn), _mm256_mul_pd(vtwo, dot));
            // maxpd returns the *second* operand on NaN, so this order
            // preserves a NaN `inner` like the scalar floor does.
            let ed2 = _mm256_max_pd(vzero, inner);
            _mm256_storeu_pd(scores.as_mut_ptr().add(i), _mm256_xor_pd(ed2, vsign));
            let qn = _mm256_sub_pd(dot, _mm256_mul_pd(vh, vfirst));
            _mm256_storeu_pd(q.as_mut_ptr().add(i), qn);
            i += LANES;
        }
        scalar::qstep_euclidean(
            QStepIo {
                q: &mut q[m..],
                scores: &mut scores[m..],
                tail: &tail[m..],
                head: &head[m..],
                last,
                first,
            },
            &ssq[m..],
            ssq_n,
        );
    }

    /// Fused Q-step, negated squared CID scoring; value-identical to the
    /// scalar kernel (hi/lo selection via an ordered `>=` mask so NaN
    /// complexity estimates land exactly where the scalar branch puts
    /// them).
    pub fn qstep_cid(io: QStepIo<'_>, ssq: &[f64], ce2: &[f64], ssq_n: f64, ce2_n: f64) {
        assert_available();
        io.check();
        assert_eq!(ssq.len(), io.q.len(), "ssq length mismatch");
        assert_eq!(ce2.len(), io.q.len(), "ce2 length mismatch");
        unsafe { qstep_cid_impl(io, ssq, ce2, ssq_n, ce2_n) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn qstep_cid_impl(io: QStepIo<'_>, ssq: &[f64], ce2: &[f64], ssq_n: f64, ce2_n: f64) {
        let QStepIo {
            q,
            scores,
            tail,
            head,
            last,
            first,
        } = io;
        let n = q.len();
        let m = n - n % LANES;
        let vlast = _mm256_set1_pd(last);
        let vfirst = _mm256_set1_pd(first);
        let vssqn = _mm256_set1_pd(ssq_n);
        let vce2n = _mm256_set1_pd(ce2_n);
        let vtwo = _mm256_set1_pd(2.0);
        let vzero = _mm256_setzero_pd();
        let vsign = _mm256_set1_pd(-0.0);
        let vtiny = _mm256_set1_pd(CE_FLOOR);
        let mut i = 0;
        while i < m {
            let vq = _mm256_loadu_pd(q.as_ptr().add(i));
            let vt = _mm256_loadu_pd(tail.as_ptr().add(i));
            let vh = _mm256_loadu_pd(head.as_ptr().add(i));
            let vssq = _mm256_loadu_pd(ssq.as_ptr().add(i));
            let vce2 = _mm256_loadu_pd(ce2.as_ptr().add(i));
            let dot = _mm256_add_pd(vq, _mm256_mul_pd(vt, vlast));
            let inner = _mm256_sub_pd(_mm256_add_pd(vssq, vssqn), _mm256_mul_pd(vtwo, dot));
            // NaN-preserving floor at zero (maxpd returns src2 on NaN).
            let ed2 = _mm256_max_pd(vzero, inner);
            // (hi, lo) = ce2_a >= ce2_b ? (a, b) : (b, a), as in the scalar
            // branch (NaN a compares false and becomes lo).
            let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(vce2, vce2n);
            let hi = _mm256_blendv_pd(vce2n, vce2, ge);
            let lo = _mm256_blendv_pd(vce2, vce2n, ge);
            let lo = _mm256_max_pd(lo, vtiny);
            let cid2 = _mm256_mul_pd(ed2, _mm256_div_pd(hi, lo));
            _mm256_storeu_pd(scores.as_mut_ptr().add(i), _mm256_xor_pd(cid2, vsign));
            let qn = _mm256_sub_pd(dot, _mm256_mul_pd(vh, vfirst));
            _mm256_storeu_pd(q.as_mut_ptr().add(i), qn);
            i += LANES;
        }
        scalar::qstep_cid(
            QStepIo {
                q: &mut q[m..],
                scores: &mut scores[m..],
                tail: &tail[m..],
                head: &head[m..],
                last,
                first,
            },
            &ssq[m..],
            &ce2[m..],
            ssq_n,
            ce2_n,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SplitMix64;

    fn random(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 4.0 - 2.0).collect()
    }

    #[test]
    fn backend_name_roundtrip() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Autovec.name(), "autovec");
        assert_eq!(Backend::Avx2.name(), "avx2");
        // Dispatch resolves to something usable on this machine.
        let _ = active_backend();
    }

    #[test]
    fn dispatch_dot_matches_scalar() {
        for n in [0usize, 1, 3, 4, 5, 63, 64, 65, 200] {
            let a = random(n, 1 + n as u64);
            let b = random(n, 1000 + n as u64);
            let want = scalar::dot(&a, &b);
            let got = dot(&a, &b);
            assert!((got - want).abs() <= 1e-10 * (1.0 + want.abs()), "n={n}");
        }
    }

    #[test]
    fn dispatch_moments_match_scalar() {
        for n in [0usize, 1, 2, 5, 8, 131] {
            let a = random(n, 7 + n as u64);
            let (ws, wq) = scalar::sum_sumsq(&a);
            let (gs, gq) = sum_sumsq(&a);
            assert!((gs - ws).abs() <= 1e-10 * (1.0 + ws.abs()));
            assert!((gq - wq).abs() <= 1e-10 * (1.0 + wq.abs()));
            let wd = scalar::diff_sumsq(&a);
            let gd = diff_sumsq(&a);
            assert!((gd - wd).abs() <= 1e-10 * (1.0 + wd.abs()));
        }
    }

    #[test]
    #[should_panic]
    fn qstep_rejects_mismatched_lengths() {
        let mut q = vec![0.0; 4];
        let mut scores = vec![0.0; 4];
        let tail = vec![0.0; 3];
        let head = vec![0.0; 4];
        qstep_euclidean(
            QStepIo {
                q: &mut q,
                scores: &mut scores,
                tail: &tail,
                head: &head,
                last: 0.0,
                first: 0.0,
            },
            &[0.0; 4],
            0.0,
        );
    }
}
