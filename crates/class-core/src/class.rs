//! ClaSS — Classification Score Stream (paper §3, Algorithm 1).
//!
//! The segmenter learns a subsequence width `w` from the first observations
//! of the stream, then maintains an exact streaming k-NN over the sliding
//! window, scores every hypothetical split of the not-yet-segmented window
//! suffix with the incremental self-supervised cross-validation, and
//! validates the best split with a resampled Wilcoxon rank-sum test.
//! Detected change points are reported immediately, and the "last change
//! point" pointer advances so that only the evolving segment is rescored
//! (which is what gives ClaSS its throughput peaks, §4.4).

use crate::crossval::{CrossVal, ScoreFn};
use crate::knn::{KnnConfig, StreamingKnn};
use crate::segmenter::StreamingSegmenter;
use crate::similarity::Similarity;
use crate::stats::{significance_ln_p, SampleSize, SplitMix64};
use crate::wss::{select_width, WidthBounds, WssMethod};

/// How the subsequence width `w` is determined (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthSelection {
    /// Learn the width from the warm-up prefix with a WSS method
    /// (ClaSS default: SuSS).
    Learn(WssMethod),
    /// Use a fixed, user-provided width.
    Fixed(usize),
}

impl Default for WidthSelection {
    fn default() -> Self {
        WidthSelection::Learn(WssMethod::Suss)
    }
}

/// Full configuration of ClaSS with the paper's defaults.
#[derive(Debug, Clone)]
pub struct ClassConfig {
    /// Sliding window size `d` (paper default: 10_000; ablation (a) shows
    /// robustness over 1k..20k).
    pub window_size: usize,
    /// Subsequence width selection (ablation (b)).
    pub width: WidthSelection,
    /// Number of nearest neighbours `k` (ablation (d): 3).
    pub k: usize,
    /// Similarity measure (ablation (c): Pearson).
    pub similarity: Similarity,
    /// Cross-validation score (ablation (e): macro F1).
    pub score: ScoreFn,
    /// Significance level as `log10(alpha)` (ablation (f): -50, i.e. 1e-50).
    pub log10_alpha: f64,
    /// Label sample size for the significance test (ablation (g): 1000).
    pub sample_size: SampleSize,
    /// Minimum segment length at the scored-range edges, as a multiple of
    /// `w` (the candidate-exclusion used when locating the profile maximum;
    /// 5.0 matches the reference implementation's `excl_radius`).
    pub cp_margin_factor: f64,
    /// Minimum cross-validation score a candidate split must reach before
    /// the significance test is applied. The profile maximum must
    /// "distinguish the TS parts to its left and right with high accuracy"
    /// (paper §3.3); 0.75 matches the reference implementation's score
    /// threshold and rejects anti-predictive cold-start artefacts.
    pub min_score: f64,
    /// Jump-ahead evaluation: run the profile sweep and significance test
    /// only every `jump`-th completed subsequence, like the reference
    /// implementation's `jump=5` ("the step size in time points between two
    /// consecutive change point detection attempts"). The k-NN index is
    /// still updated on every observation, so skipped points lose no
    /// information — a detection is merely delayed by at most `jump - 1`
    /// observations. `1` evaluates at every observation and is bit-exact
    /// with the pre-jump per-point behaviour. Must be at least 1.
    pub jump: usize,
    /// Number of observations buffered to learn `w`. `None` uses
    /// `window_size` (Algorithm 1 line 3: "the first d observations").
    /// Ignored with [`WidthSelection::Fixed`], where streaming starts
    /// immediately.
    pub warmup: Option<usize>,
    /// Re-learn the subsequence width from each newly evolving segment
    /// after a change point is reported (paper §3.4: "the subsequence
    /// width w can be periodically re-learned ... activated on demand").
    /// Only effective with [`WidthSelection::Learn`].
    pub relearn_width: bool,
    /// Minimum number of new-segment observations required before a
    /// re-learn is attempted.
    pub relearn_min: usize,
    /// Seed of the deterministic resampling RNG.
    pub seed: u64,
}

impl Default for ClassConfig {
    fn default() -> Self {
        Self {
            window_size: 10_000,
            width: WidthSelection::default(),
            k: 3,
            similarity: Similarity::Pearson,
            score: ScoreFn::MacroF1,
            log10_alpha: -50.0,
            sample_size: SampleSize::Fixed1000,
            cp_margin_factor: 5.0,
            min_score: 0.75,
            jump: 5,
            warmup: None,
            relearn_width: false,
            relearn_min: 512,
            seed: 0x5EED,
        }
    }
}

impl ClassConfig {
    /// Default configuration with a custom sliding window size.
    pub fn with_window_size(window_size: usize) -> Self {
        Self {
            window_size,
            ..Self::default()
        }
    }

    /// Natural-log significance threshold.
    fn ln_alpha(&self) -> f64 {
        self.log10_alpha * core::f64::consts::LN_10
    }
}

enum State {
    /// Buffering observations until `w` can be learned.
    Warmup { buf: Vec<f64>, target: usize },
    /// Streaming.
    Running(Box<Running>),
}

struct Running {
    w: usize,
    knn: StreamingKnn,
    cv: CrossVal,
    rng: SplitMix64,
    ln_alpha: f64,
    sample_size: SampleSize,
    margin: usize,
    min_score: f64,
    /// Evaluation cadence in completed subsequences (see
    /// [`ClassConfig::jump`]).
    jump: usize,
    /// Completed subsequences since the last evaluation.
    since_eval: usize,
    /// Subsequence id (relative to `base`) of the last reported change
    /// point — the start of the evolving segment. The first observed value
    /// is the first CP (Definition 4), hence the initial 0.
    cpl_sid: i64,
    /// Offset of the next observation to feed, relative to `base`.
    next_pos: u64,
    /// Absolute stream position of the first observation fed to this
    /// instance (0 at stream start; the change point position after a
    /// width re-learn rebuilt the state).
    base: u64,
}

/// The ClaSS streaming segmenter.
///
/// ```
/// use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter, WidthSelection};
///
/// let mut cfg = ClassConfig::with_window_size(1_000);
/// cfg.width = WidthSelection::Fixed(20);
/// cfg.log10_alpha = -10.0;
/// let mut class = ClassSegmenter::new(cfg);
/// let mut cps = Vec::new();
/// for i in 0..4_000 {
///     // regime change at 2000: frequency doubles
///     let t = i as f64;
///     let x = if i < 2_000 { (t * 0.2).sin() } else { (t * 0.45).sin() };
///     class.step(x, &mut cps);
/// }
/// assert!(cps.iter().any(|&cp| (cp as i64 - 2_000).abs() < 300));
/// ```
pub struct ClassSegmenter {
    cfg: ClassConfig,
    state: State,
    total_seen: u64,
    /// Change point position awaiting a deferred width re-learn (armed when
    /// a CP is reported and `relearn_width` is on; executed once the new
    /// segment holds `relearn_min` observations).
    pending_relearn: Option<u64>,
}

impl ClassSegmenter {
    /// Creates a segmenter.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (e.g. fixed width not
    /// smaller than the window size, `k` of 0).
    pub fn new(cfg: ClassConfig) -> Self {
        assert!(cfg.window_size >= 16, "window size too small");
        assert!(cfg.k >= 1, "k must be positive");
        assert!(cfg.cp_margin_factor >= 1.0, "cp_margin_factor must be >= 1");
        assert!(cfg.jump >= 1, "jump must be >= 1");
        let state = match cfg.width {
            WidthSelection::Fixed(w) => State::Running(Box::new(Self::make_running(&cfg, w, 0))),
            WidthSelection::Learn(_) => {
                let target = cfg.warmup.unwrap_or(cfg.window_size).max(32);
                State::Warmup {
                    buf: Vec::with_capacity(target),
                    target,
                }
            }
        };
        Self {
            cfg,
            state,
            total_seen: 0,
            pending_relearn: None,
        }
    }

    fn make_running(cfg: &ClassConfig, w: usize, base: u64) -> Running {
        let w = w.clamp(2, cfg.window_size / 2);
        let knn_cfg = KnnConfig {
            window_size: cfg.window_size,
            width: w,
            k: cfg.k,
            similarity: cfg.similarity,
            exclusion: None,
            update_existing: true,
        };
        Running {
            w,
            knn: StreamingKnn::new(knn_cfg),
            cv: CrossVal::new(cfg.score),
            rng: SplitMix64::new(cfg.seed ^ base),
            ln_alpha: cfg.ln_alpha(),
            sample_size: cfg.sample_size,
            margin: ((cfg.cp_margin_factor * w as f64).round() as usize).max(2),
            min_score: cfg.min_score,
            jump: cfg.jump,
            since_eval: 0,
            cpl_sid: 0,
            next_pos: 0,
            base,
        }
    }

    /// Learned (or fixed) subsequence width, once known.
    pub fn width(&self) -> Option<usize> {
        match &self.state {
            State::Warmup { .. } => None,
            State::Running(r) => Some(r.w),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &ClassConfig {
        &self.cfg
    }

    /// Total number of observations ingested so far.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// The latest ClaSP profile over the evolving segment, if one was
    /// computed: `(stream position of the first scored subsequence, scores)`.
    /// `scores[p]` rates the split placing the first `p` scored
    /// subsequences into the completed segment.
    pub fn latest_profile(&self) -> Option<(u64, &[f64])> {
        match &self.state {
            State::Warmup { .. } => None,
            State::Running(r) => {
                if r.cv.is_empty() {
                    None
                } else {
                    // Under jump-ahead evaluation the latest profile may lag
                    // the live index range by up to `jump - 1` points, so its
                    // anchor is the engine's own scored-range start, not the
                    // index's current one.
                    Some((r.base + r.cv.range_start_sid() as u64, r.cv.profile()))
                }
            }
        }
    }

    fn transition_to_running(&mut self, cps: &mut Vec<u64>) {
        let State::Warmup { buf, .. } = &mut self.state else {
            return;
        };
        let buf = core::mem::take(buf);
        let WidthSelection::Learn(method) = self.cfg.width else {
            unreachable!()
        };
        let bounds = WidthBounds::for_stream(buf.len(), self.cfg.window_size);
        let w = select_width(method, &buf, bounds);
        let mut running = Self::make_running(&self.cfg, w, 0);
        // Re-process the buffered prefix from the first observation onward
        // (paper §3.4).
        for &x in &buf {
            running.step(x, cps);
        }
        self.state = State::Running(Box::new(running));
        // Width re-learning during the replay itself is suppressed (the
        // replay already uses the freshly learned width).
    }

    /// Re-learns the subsequence width from the newly evolving segment
    /// after a change point at absolute position `cp_abs` (paper §3.4).
    /// Rebuilds the streaming state with the new width and replays the new
    /// segment; change points found during the replay are appended.
    fn relearn_after_cp(&mut self, cp_abs: u64, cps: &mut Vec<u64>) {
        let WidthSelection::Learn(method) = self.cfg.width else {
            return;
        };
        let State::Running(r) = &self.state else {
            return;
        };
        // Extract the new segment from the current window.
        let win = r.knn.window();
        let next_abs = r.base + r.next_pos;
        let win_start_abs = next_abs - win.len() as u64;
        if cp_abs < win_start_abs {
            return; // segment start already evicted; keep the old width
        }
        let seg: Vec<f64> = win[(cp_abs - win_start_abs) as usize..].to_vec();
        if seg.len() < self.cfg.relearn_min.max(32) {
            // Not enough new-segment data yet; keep the request pending.
            self.pending_relearn = Some(cp_abs);
            return;
        }
        let bounds = WidthBounds::for_stream(seg.len(), self.cfg.window_size);
        let new_w = select_width(method, &seg, bounds);
        if new_w == r.w {
            return;
        }
        let mut running = Self::make_running(&self.cfg, new_w, cp_abs);
        for &x in &seg {
            running.step(x, cps);
        }
        self.state = State::Running(Box::new(running));
    }
}

impl Running {
    /// Absolute sid of the first scored subsequence, or `None` if no
    /// subsequence exists yet.
    fn range_start_sid(&self) -> Option<i64> {
        let oldest = self.knn.oldest_sid()?;
        Some(self.cpl_sid.max(oldest))
    }

    /// Feeds one observation; pushes any detected change point (absolute
    /// stream position) into `cps` and also returns it, so the caller can
    /// trigger the optional width re-learning.
    fn step(&mut self, x: f64, cps: &mut Vec<u64>) -> Option<u64> {
        let pos = self.next_pos;
        self.next_pos += 1;
        if !self.knn.update(x) {
            return None;
        }
        // Jump-ahead scheduling: the index absorbed the observation above;
        // the (much more expensive) profile evaluation runs only every
        // `jump`-th completed subsequence.
        self.since_eval += 1;
        if self.since_eval < self.jump {
            return None;
        }
        self.since_eval = 0;
        self.evaluate(pos, cps)
    }

    /// Runs one profile evaluation + significance test at stream offset
    /// `pos`; reports (and returns) a validated change point, if any.
    fn evaluate(&mut self, pos: u64, cps: &mut Vec<u64>) -> Option<u64> {
        let start_sid = self.range_start_sid()?;
        let start_slot = self.knn.slot_of_sid(start_sid);
        let nn = self.cv.compute(&self.knn, start_slot);
        // Need room for a margin on both sides of any candidate split.
        if nn < 2 * self.margin + 2 {
            return None;
        }
        let profile = self.cv.profile();
        let lo = self.margin;
        let hi = nn - self.margin;
        let mut best_p = lo;
        let mut best_v = f64::MIN;
        for (p, &v) in profile.iter().enumerate().take(hi).skip(lo) {
            if v > best_v {
                best_v = v;
                best_p = p;
            }
        }
        if best_v < self.min_score {
            return None;
        }
        let groups = self.cv.groups_at(best_p);
        let ln_p = significance_ln_p(groups, self.sample_size, &mut self.rng);
        if ln_p <= self.ln_alpha {
            let cp_sid = start_sid + best_p as i64;
            debug_assert!(cp_sid >= 0 && (cp_sid as u64) <= pos);
            let cp_abs = self.base + cp_sid as u64;
            cps.push(cp_abs);
            self.cpl_sid = cp_sid;
            return Some(cp_abs);
        }
        None
    }
}

impl StreamingSegmenter for ClassSegmenter {
    fn step(&mut self, x: f64, cps: &mut Vec<u64>) {
        self.total_seen += 1;
        match &mut self.state {
            State::Warmup { buf, target } => {
                buf.push(x);
                if buf.len() >= *target {
                    self.transition_to_running(cps);
                }
            }
            State::Running(r) => {
                let fired = r.step(x, cps);
                if self.cfg.relearn_width {
                    if let Some(cp_abs) = fired {
                        // The newest change point supersedes any pending one.
                        self.pending_relearn = Some(cp_abs);
                    }
                    if let Some(cp_abs) = self.pending_relearn.take() {
                        self.relearn_after_cp(cp_abs, cps);
                    }
                }
            }
        }
    }

    fn finalize(&mut self, cps: &mut Vec<u64>) {
        if let State::Warmup { buf, .. } = &self.state {
            if buf.len() >= 64 {
                self.transition_to_running(cps);
            }
        }
        // Jump-ahead leaves up to `jump - 1` trailing observations between
        // the last scheduled evaluation and the end of the stream; score
        // them once so a change point arriving in the tail is not lost.
        // With jump = 1 every completed subsequence was already evaluated,
        // keeping finalize (and the whole segmenter) bit-exact with the
        // pre-jump behaviour.
        if let State::Running(r) = &mut self.state {
            if r.jump > 1 && r.since_eval > 0 && r.next_pos > 0 {
                r.since_eval = 0;
                r.evaluate(r.next_pos - 1, cps);
            }
        }
    }

    fn name(&self) -> &'static str {
        "ClaSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scales a stream length — and the windows, change-point positions,
    /// warm-ups, and tolerances derived from it — down 2x under
    /// unoptimized builds: debug builds don't vectorize the kernels, and
    /// the paper-scale streams cost ~55 s under `cargo test -q`. Release
    /// (and therefore CI's tier-1 release pass) keeps full sizes, so no
    /// claim loses its original coverage where it is enforced.
    const fn sz(release: usize) -> usize {
        if cfg!(debug_assertions) {
            release / 2
        } else {
            release
        }
    }

    /// Two-regime stream: sine that doubles its frequency at `cp`.
    fn freq_shift(n: usize, cp: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let f = if i < cp { 0.18 } else { 0.42 };
                (i as f64 * f).sin() + 0.05 * (rng.next_f64() - 0.5)
            })
            .collect()
    }

    fn amp_shift(n: usize, cp: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let a = if i < cp { 1.0 } else { 3.5 };
                a * (i as f64 * 0.25).sin() + 0.08 * (rng.next_f64() - 0.5)
            })
            .collect()
    }

    fn run_class(xs: &[f64], mut cfg: ClassConfig) -> Vec<u64> {
        cfg.seed = 7;
        let mut class = ClassSegmenter::new(cfg);
        class.segment_series(xs)
    }

    #[test]
    fn detects_frequency_change_with_fixed_width() {
        let xs = freq_shift(sz(5000), sz(2500), 1);
        let mut cfg = ClassConfig::with_window_size(sz(2000));
        cfg.width = WidthSelection::Fixed(35);
        cfg.log10_alpha = -15.0;
        let cps = run_class(&xs, cfg);
        assert!(!cps.is_empty(), "no change point found");
        assert!(
            cps.iter()
                .any(|&c| (c as i64 - sz(2500) as i64).unsigned_abs() < sz(400) as u64),
            "cps = {cps:?}"
        );
    }

    #[test]
    fn detects_frequency_change_with_learned_width() {
        let xs = freq_shift(sz(6000), sz(3000), 2);
        let mut cfg = ClassConfig::with_window_size(sz(2000));
        cfg.warmup = Some(sz(1000));
        cfg.log10_alpha = -15.0;
        let cps = run_class(&xs, cfg);
        assert!(
            cps.iter()
                .any(|&c| (c as i64 - sz(3000) as i64).unsigned_abs() < sz(500) as u64),
            "cps = {cps:?}"
        );
    }

    #[test]
    fn amplitude_change_needs_amplitude_aware_similarity() {
        // A pure amplitude rescale is (nearly) invisible to Pearson
        // correlation (z-normalisation removes scale) — the Euclidean
        // measure handles it (paper §3.1: "we implement multiple measures
        // that cover different stream properties").
        let xs = amp_shift(sz(6000), sz(3000), 2);
        let mut cfg = ClassConfig::with_window_size(sz(2000));
        cfg.width = WidthSelection::Fixed(25);
        cfg.similarity = Similarity::Euclidean;
        cfg.log10_alpha = -15.0;
        let cps = run_class(&xs, cfg);
        assert!(
            cps.iter()
                .any(|&c| (c as i64 - sz(3000) as i64).unsigned_abs() < sz(500) as u64),
            "cps = {cps:?}"
        );
    }

    #[test]
    fn stationary_stream_yields_no_change_points() {
        let mut rng = SplitMix64::new(3);
        let xs: Vec<f64> = (0..sz(6000))
            .map(|i| (i as f64 * 0.2).sin() + 0.05 * (rng.next_f64() - 0.5))
            .collect();
        let mut cfg = ClassConfig::with_window_size(sz(2000));
        cfg.width = WidthSelection::Fixed(31);
        let cps = run_class(&xs, cfg);
        assert!(cps.is_empty(), "false positives: {cps:?}");
    }

    #[test]
    fn pure_noise_yields_no_change_points() {
        let mut rng = SplitMix64::new(4);
        let xs: Vec<f64> = (0..sz(5000)).map(|_| rng.next_f64() - 0.5).collect();
        let mut cfg = ClassConfig::with_window_size(sz(1500));
        cfg.width = WidthSelection::Fixed(25);
        let cps = run_class(&xs, cfg);
        assert!(cps.is_empty(), "false positives on noise: {cps:?}");
    }

    #[test]
    fn detects_multiple_change_points() {
        // Three regimes: slow sine, fast sine, sawtooth-like.
        let mut rng = SplitMix64::new(5);
        let n = sz(9000);
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                let v = if i < sz(3000) {
                    (i as f64 * 0.15).sin()
                } else if i < sz(6000) {
                    (i as f64 * 0.45).sin()
                } else {
                    ((i % 40) as f64 / 20.0) - 1.0
                };
                v + 0.05 * (rng.next_f64() - 0.5)
            })
            .collect();
        let mut cfg = ClassConfig::with_window_size(sz(2500));
        cfg.width = WidthSelection::Fixed(40);
        cfg.log10_alpha = -15.0;
        let cps = run_class(&xs, cfg);
        assert!(
            cps.iter()
                .any(|&c| (c as i64 - sz(3000) as i64).unsigned_abs() < sz(500) as u64),
            "first cp missed: {cps:?}"
        );
        assert!(
            cps.iter()
                .any(|&c| (c as i64 - sz(6000) as i64).unsigned_abs() < sz(500) as u64),
            "second cp missed: {cps:?}"
        );
    }

    #[test]
    fn short_stream_finalize_learns_and_replays() {
        // Stream shorter than the warm-up target: CPs only appear after
        // finalize() triggers the learn-and-replay.
        let xs = freq_shift(sz(3000), sz(1500), 6);
        let mut cfg = ClassConfig::with_window_size(10_000);
        cfg.log10_alpha = -12.0;
        let mut class = ClassSegmenter::new(cfg);
        let mut cps = Vec::new();
        for &x in &xs {
            class.step(x, &mut cps);
        }
        assert!(cps.is_empty(), "still warming up: {cps:?}");
        class.finalize(&mut cps);
        assert!(
            cps.iter()
                .any(|&c| (c as i64 - sz(1500) as i64).unsigned_abs() < sz(400) as u64),
            "cps = {cps:?}"
        );
    }

    #[test]
    fn reported_positions_are_within_stream() {
        let xs = freq_shift(sz(4000), sz(2000), 8);
        let mut cfg = ClassConfig::with_window_size(sz(1200));
        cfg.width = WidthSelection::Fixed(30);
        cfg.log10_alpha = -10.0;
        let cps = run_class(&xs, cfg);
        for &c in &cps {
            assert!((c as usize) < xs.len());
        }
    }

    #[test]
    fn profile_accessor_exposes_scores() {
        let xs = freq_shift(sz(3000), sz(1500), 9);
        let mut cfg = ClassConfig::with_window_size(sz(1000));
        cfg.width = WidthSelection::Fixed(25);
        let mut class = ClassSegmenter::new(cfg);
        let mut cps = Vec::new();
        for &x in &xs {
            class.step(x, &mut cps);
        }
        let (start, profile) = class.latest_profile().expect("profile exists");
        assert!(!profile.is_empty());
        assert!(profile.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(start < xs.len() as u64);
        assert_eq!(class.width(), Some(25));
        assert_eq!(class.total_seen(), sz(3000) as u64);
    }

    #[test]
    fn deterministic_across_runs() {
        let xs = freq_shift(sz(5000), sz(2500), 10);
        let mut cfg = ClassConfig::with_window_size(sz(1500));
        cfg.width = WidthSelection::Fixed(30);
        cfg.log10_alpha = -12.0;
        let a = run_class(&xs, cfg.clone());
        let b = run_class(&xs, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn relearn_adapts_width_after_concept_drift() {
        // Period 20 regime, then period 75: with re-learning on, the width
        // after the change should track the new period scale.
        let mut rng = SplitMix64::new(21);
        let xs: Vec<f64> = (0..sz(9000))
            .map(|i| {
                let p = if i < sz(4500) { 20.0 } else { 75.0 };
                (2.0 * core::f64::consts::PI * i as f64 / p).sin() + 0.05 * (rng.next_f64() - 0.5)
            })
            .collect();
        let mut cfg = ClassConfig::with_window_size(sz(2000));
        cfg.warmup = Some(sz(1000));
        cfg.log10_alpha = -15.0;
        cfg.relearn_width = true;
        let mut class = ClassSegmenter::new(cfg.clone());
        let cps = class.segment_series(&xs);
        assert!(
            cps.iter()
                .any(|&c| (c as i64 - sz(4500) as i64).unsigned_abs() < sz(600) as u64),
            "cps = {cps:?}"
        );
        let w_after = class.width().unwrap();

        cfg.relearn_width = false;
        let mut fixed = ClassSegmenter::new(cfg);
        let _ = fixed.segment_series(&xs);
        let w_static = fixed.width().unwrap();
        assert!(
            w_after > w_static,
            "width should grow with the period: relearned {w_after} vs static {w_static}"
        );
    }

    #[test]
    fn relearn_is_deterministic() {
        let xs = freq_shift(sz(6000), sz(3000), 22);
        let mut cfg = ClassConfig::with_window_size(sz(1500));
        cfg.warmup = Some(sz(800));
        cfg.log10_alpha = -12.0;
        cfg.relearn_width = true;
        let a = ClassSegmenter::new(cfg.clone()).segment_series(&xs);
        let b = ClassSegmenter::new(cfg).segment_series(&xs);
        assert_eq!(a, b);
    }

    #[test]
    fn relearn_with_fixed_width_is_a_no_op() {
        let xs = freq_shift(sz(5000), sz(2500), 23);
        let mut cfg = ClassConfig::with_window_size(sz(1500));
        cfg.width = WidthSelection::Fixed(30);
        cfg.log10_alpha = -12.0;
        let plain = ClassSegmenter::new(cfg.clone()).segment_series(&xs);
        cfg.relearn_width = true;
        let relearn = ClassSegmenter::new(cfg).segment_series(&xs);
        assert_eq!(plain, relearn);
    }

    #[test]
    fn jump_detections_match_per_point_within_bounded_delay() {
        // jump > 1 only changes *when* the profile is inspected: every
        // change point found by per-point evaluation must be matched by a
        // jump-ahead detection nearby, and vice versa. The reported
        // position is a profile argmax, so the tolerance is the detection
        // delay plus a small amount of argmax drift.
        let xs = freq_shift(sz(6000), sz(3000), 12);
        let mut cfg = ClassConfig::with_window_size(sz(2000));
        cfg.width = WidthSelection::Fixed(35);
        cfg.log10_alpha = -15.0;
        cfg.jump = 1;
        let exact = run_class(&xs, cfg.clone());
        cfg.jump = 5;
        let jumped = run_class(&xs, cfg.clone());
        assert!(!exact.is_empty(), "per-point run found nothing");
        assert!(!jumped.is_empty(), "jump run found nothing");
        let tol = (cfg.jump * 20) as i64;
        for &c in &exact {
            assert!(
                jumped.iter().any(|&j| (j as i64 - c as i64).abs() <= tol),
                "per-point cp {c} unmatched by jump run {jumped:?}"
            );
        }
        for &j in &jumped {
            assert!(
                exact.iter().any(|&c| (j as i64 - c as i64).abs() <= tol),
                "jump cp {j} unmatched by per-point run {exact:?}"
            );
        }
    }

    #[test]
    fn finalize_catches_tail_change_point_under_jump() {
        // Cut the stream right after a change point becomes detectable but
        // between two scheduled evaluations: finalize must score the tail.
        let xs = freq_shift(sz(5000), sz(2500), 13);
        let mut cfg = ClassConfig::with_window_size(sz(2000));
        cfg.width = WidthSelection::Fixed(35);
        cfg.log10_alpha = -15.0;
        cfg.seed = 7;
        cfg.jump = 1;
        let mut per_point = ClassSegmenter::new(cfg.clone());
        let mut exact = Vec::new();
        for &x in &xs {
            per_point.step(x, &mut exact);
        }
        let Some(&first) = exact.first() else {
            panic!("per-point run found nothing");
        };
        // Find the observation index at which the per-point run fired,
        // then replay with a large jump, stopping one point later.
        let fired_at = exact_first_fire(&xs, cfg.clone());
        cfg.jump = 97; // coprime-ish with the fire position: likely mid-gap
        let mut class = ClassSegmenter::new(cfg);
        let mut cps = Vec::new();
        for &x in &xs[..=fired_at] {
            class.step(x, &mut cps);
        }
        class.finalize(&mut cps);
        assert!(
            cps.iter().any(|&c| (c as i64 - first as i64).abs() < 200),
            "tail cp missed: {cps:?} vs per-point first {first}"
        );
    }

    /// Observation index at which a per-point (`jump = 1`) run first
    /// reports a change point.
    fn exact_first_fire(xs: &[f64], mut cfg: ClassConfig) -> usize {
        cfg.jump = 1;
        let mut class = ClassSegmenter::new(cfg);
        let mut cps = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            class.step(x, &mut cps);
            if !cps.is_empty() {
                return i;
            }
        }
        panic!("no change point fired");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_jump() {
        let mut cfg = ClassConfig::with_window_size(1000);
        cfg.jump = 0;
        let _ = ClassSegmenter::new(cfg);
    }

    #[test]
    fn nan_tolerance_does_not_panic() {
        // NaNs are pathological input; ClaSS must not panic (scores guard
        // against non-finite via clamps at the similarity level).
        let mut xs = freq_shift(2000, 1000, 11);
        xs[500] = f64::NAN;
        let mut cfg = ClassConfig::with_window_size(800);
        cfg.width = WidthSelection::Fixed(20);
        let mut class = ClassSegmenter::new(cfg);
        let mut cps = Vec::new();
        for &x in &xs {
            class.step(x, &mut cps);
        }
    }
}
