//! Exact streaming k-nearest-neighbour index over sliding-window
//! subsequences (paper §3.1, Algorithm 2).
//!
//! For every new stream value the index
//!
//! 1. computes the similarity between the newest width-`w` subsequence and
//!    every other subsequence in the window in O(d) total, by maintaining
//!    the (w-1)-length dot products of the previous step (Eq. 3-5, the
//!    STOMP recurrence adapted to streaming),
//! 2. selects the k nearest neighbours of the newest subsequence with a
//!    single bounded-insertion pass over the scores (O(d + i·k) where `i`
//!    is the number of top-k improvements), honouring a trivial-match
//!    exclusion radius of 1.5·w, and
//! 3. updates the stored neighbour lists of all older subsequences for which
//!    the newest subsequence is a closer neighbour than their current k-th.
//!
//! Neighbour identities are stored as *absolute* subsequence ids (the
//! position of the subsequence start in the stream). This avoids the O(k·d)
//! index-decrement pass of the paper's Algorithm 2 line 21 while preserving
//! its semantics exactly: ids that have dropped out of the window simply
//! compare as "older than everything in range", which is the paper's
//! "negative offsets belong to class zero by design".

use crate::buffer::{ShiftBuffer, ShiftMatrix};
use crate::simd;
use crate::similarity::Similarity;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Largest supported neighbour count; the ablation study uses k in
/// {1, 3, 5, 7}, so 16 leaves generous headroom while letting the scratch
/// candidate list live on the stack.
pub const MAX_K: usize = 16;

/// Capacity of the change journal ring. Generously sized for the steady
/// state (a handful of events per update, consumed every `jump` updates by
/// the incremental cross-validation); if a consumer falls further behind
/// than this, [`StreamingKnn::events_since`] reports the loss and the
/// consumer rebuilds from the neighbour lists instead.
const JOURNAL_CAP: usize = 1024;

/// One neighbour-list mutation, as recorded in the change journal.
///
/// The journal is what makes the cross-validation profile *incremental
/// across stream updates*: instead of re-reading all `n·k` neighbour lists
/// per evaluation, [`crate::crossval::CrossVal`] replays only the edges the
/// index actually changed since the previous evaluation. Events are emitted
/// in execution order; sids are absolute subsequence ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnEvent {
    /// A new subsequence completed and its row entered the index. Emitted
    /// before the `EdgeAdded` events carrying the row's initial neighbours
    /// (a dirty-window row may have fewer than `k`, or none).
    RowCreated {
        /// Absolute id of the new subsequence.
        sid: i64,
    },
    /// `target` was inserted into `owner`'s neighbour list, which had room.
    EdgeAdded {
        /// Row whose list changed.
        owner: i64,
        /// Neighbour that was inserted.
        target: i64,
    },
    /// `target` was inserted into `owner`'s full neighbour list, displacing
    /// the former k-th neighbour `evicted`.
    EdgeReplaced {
        /// Row whose list changed.
        owner: i64,
        /// Neighbour that was inserted.
        target: i64,
        /// Former k-th neighbour that dropped off the list.
        evicted: i64,
    },
}

/// Monotone source of per-index identities; see [`StreamingKnn::instance_id`].
static NEXT_INSTANCE_ID: AtomicU64 = AtomicU64::new(1);

/// Configuration of the streaming k-NN index.
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// Sliding window size `d` in data points.
    pub window_size: usize,
    /// Subsequence width `w` in data points.
    pub width: usize,
    /// Number of neighbours `k`.
    pub k: usize,
    /// Similarity measure used for ranking.
    pub similarity: Similarity,
    /// Trivial-match exclusion radius in subsequence starts. `None` selects
    /// the paper's default of `ceil(1.5 * w)`.
    pub exclusion: Option<usize>,
    /// If `true` (ClaSS behaviour), newly arriving subsequences are inserted
    /// into the neighbour lists of older subsequences when closer than their
    /// current k-th neighbour. `false` restricts neighbours to the past only
    /// (the one-directional constraint used by FLOSS).
    pub update_existing: bool,
}

impl KnnConfig {
    /// Convenience constructor with paper defaults for the free parameters.
    pub fn new(window_size: usize, width: usize, k: usize) -> Self {
        Self {
            window_size,
            width,
            k,
            similarity: Similarity::Pearson,
            exclusion: None,
            update_existing: true,
        }
    }

    /// Effective exclusion radius in subsequence starts.
    pub fn exclusion_radius(&self) -> usize {
        self.exclusion
            .unwrap_or((3 * self.width).div_ceil(2))
            .max(1)
    }

    fn validate(&self) {
        assert!(self.window_size >= 4, "window size too small");
        assert!(
            self.width >= 2 && self.width < self.window_size,
            "width must satisfy 2 <= w < d (w = {}, d = {})",
            self.width,
            self.window_size
        );
        assert!(
            self.k >= 1 && self.k <= MAX_K,
            "k must be in 1..={MAX_K}, got {}",
            self.k
        );
    }
}

/// Exact streaming k-NN over sliding-window subsequences.
///
/// See the module documentation for the algorithm; all state is pre-sized at
/// construction, and [`StreamingKnn::update`] performs no heap allocation
/// (the change journal ring reaches its fixed capacity and stays there).
#[derive(Debug)]
pub struct StreamingKnn {
    cfg: KnnConfig,
    /// Process-unique identity, refreshed on clone; see
    /// [`StreamingKnn::instance_id`].
    instance_id: u64,
    /// Bounded ring of recent neighbour-list mutations, oldest first.
    events: VecDeque<KnnEvent>,
    /// Total events ever emitted (monotone journal sequence number).
    events_total: u64,
    excl: usize,
    m_max: usize,
    /// Raw window values.
    win: ShiftBuffer<f64>,
    /// Per-subsequence moments, aligned with subsequence offsets.
    mu: ShiftBuffer<f64>,
    sig: ShiftBuffer<f64>,
    ssq: ShiftBuffer<f64>,
    /// Squared complexity estimates (only maintained for CID).
    ce2: ShiftBuffer<f64>,
    /// Slot-indexed (w-1)-length dot products (the `Q` of Algorithm 2).
    /// Values never move between slots; see module docs.
    q: Vec<f64>,
    /// Scratch: similarity score of every subsequence vs. the newest.
    scores: Vec<f64>,
    /// Neighbour ids (absolute subsequence start positions), k per row.
    nn_sid: ShiftMatrix<i64>,
    /// Neighbour scores, aligned with `nn_sid`, sorted descending.
    nn_score: ShiftMatrix<f64>,
    /// Number of valid neighbours per row.
    nn_len: ShiftBuffer<u8>,
    /// Absolute id (stream start position) of the next subsequence.
    next_sid: i64,
    /// Remaining pushes until the most recent non-finite observation has
    /// left the window (0 = window clean). When it reaches 0, the Q slots
    /// the NaN poisoned are recomputed explicitly, restoring exactness for
    /// dirty feeds.
    nan_heal: usize,
}

impl Clone for StreamingKnn {
    /// Field-for-field copy, except `instance_id`, which is freshly
    /// assigned: the two indices evolve independently afterwards, so journal
    /// cursors taken against one must not be replayed against the other.
    fn clone(&self) -> Self {
        Self {
            cfg: self.cfg.clone(),
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
            events: self.events.clone(),
            events_total: self.events_total,
            excl: self.excl,
            m_max: self.m_max,
            win: self.win.clone(),
            mu: self.mu.clone(),
            sig: self.sig.clone(),
            ssq: self.ssq.clone(),
            ce2: self.ce2.clone(),
            q: self.q.clone(),
            scores: self.scores.clone(),
            nn_sid: self.nn_sid.clone(),
            nn_score: self.nn_score.clone(),
            nn_len: self.nn_len.clone(),
            next_sid: self.next_sid,
            nan_heal: self.nan_heal,
        }
    }
}

impl StreamingKnn {
    /// Creates an empty index.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (see [`KnnConfig`]).
    pub fn new(cfg: KnnConfig) -> Self {
        cfg.validate();
        let m_max = cfg.window_size - cfg.width + 1;
        let k = cfg.k;
        let excl = cfg.exclusion_radius();
        Self {
            instance_id: NEXT_INSTANCE_ID.fetch_add(1, Ordering::Relaxed),
            events: VecDeque::with_capacity(JOURNAL_CAP),
            events_total: 0,
            excl,
            m_max,
            win: ShiftBuffer::new(cfg.window_size),
            mu: ShiftBuffer::new(m_max),
            sig: ShiftBuffer::new(m_max),
            ssq: ShiftBuffer::new(m_max),
            ce2: ShiftBuffer::new(m_max),
            q: vec![0.0; m_max],
            scores: vec![0.0; m_max],
            nn_sid: ShiftMatrix::new(m_max, k),
            nn_score: ShiftMatrix::new(m_max, k),
            nn_len: ShiftBuffer::new(m_max),
            next_sid: 0,
            nan_heal: 0,
            cfg,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &KnnConfig {
        &self.cfg
    }

    /// Process-unique identity of this index. A [`Clone`] receives a fresh
    /// id: the clone's journal diverges from the original's from that point
    /// on, so a consumer keyed to the original must not warm-resume against
    /// the copy (it cold-rebuilds instead).
    #[inline]
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }

    /// Total number of change-journal events ever emitted by this index.
    /// Consumers remember this value as their cursor and later replay the
    /// suffix via [`StreamingKnn::events_since`].
    #[inline]
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// Events emitted since journal sequence number `seq` (a previous
    /// [`StreamingKnn::events_total`] reading), oldest first. Returns `None`
    /// if the bounded ring has already dropped part of that suffix (the
    /// consumer fell too far behind and must rebuild from the neighbour
    /// lists), or if `seq` is from this index's future (wrong index).
    pub fn events_since(&self, seq: u64) -> Option<impl Iterator<Item = KnnEvent> + '_> {
        if seq > self.events_total {
            return None;
        }
        let behind = self.events_total - seq;
        if behind > self.events.len() as u64 {
            return None;
        }
        let skip = self.events.len() - behind as usize;
        Some(self.events.iter().skip(skip).copied())
    }

    #[inline]
    fn push_event(&mut self, ev: KnnEvent) {
        if self.events.len() == JOURNAL_CAP {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        self.events_total += 1;
    }

    /// Subsequence width `w`.
    #[inline]
    pub fn width(&self) -> usize {
        self.cfg.width
    }

    /// Maximum number of co-resident subsequences (`d - w + 1`).
    #[inline]
    pub fn max_subsequences(&self) -> usize {
        self.m_max
    }

    /// Number of subsequences currently in the window.
    #[inline]
    pub fn n_subsequences(&self) -> usize {
        self.mu.len()
    }

    /// First slot holding a live subsequence (`m_max - n_subsequences`).
    #[inline]
    pub fn qstart(&self) -> usize {
        self.m_max - self.n_subsequences()
    }

    /// Absolute id (stream start position) of the newest subsequence, or
    /// `None` before the first subsequence completes.
    #[inline]
    pub fn newest_sid(&self) -> Option<i64> {
        (self.next_sid > 0).then(|| self.next_sid - 1)
    }

    /// Absolute id of the oldest subsequence still in the window.
    #[inline]
    pub fn oldest_sid(&self) -> Option<i64> {
        self.newest_sid()
            .map(|n| n - (self.n_subsequences() as i64 - 1))
    }

    /// Absolute id of the subsequence in `slot` (slots are right-aligned:
    /// slot `m_max - 1` is the newest).
    #[inline]
    pub fn sid_of_slot(&self, slot: usize) -> i64 {
        debug_assert!(slot >= self.qstart() && slot < self.m_max);
        self.next_sid - 1 - (self.m_max - 1 - slot) as i64
    }

    /// Slot of the subsequence with absolute id `sid` (must be live).
    #[inline]
    pub fn slot_of_sid(&self, sid: i64) -> usize {
        let newest = self.next_sid - 1;
        debug_assert!(sid <= newest && newest - sid < self.n_subsequences() as i64);
        self.m_max - 1 - (newest - sid) as usize
    }

    /// Neighbour ids and scores of the subsequence in `slot`, best first.
    #[inline]
    pub fn neighbors(&self, slot: usize) -> (&[i64], &[f64]) {
        let qs = self.qstart();
        debug_assert!(slot >= qs && slot < self.m_max);
        let r = slot - qs;
        let len = self.nn_len.get(r) as usize;
        (&self.nn_sid.row(r)[..len], &self.nn_score.row(r)[..len])
    }

    /// Similarity score of every live subsequence against the newest one, as
    /// computed by the latest [`StreamingKnn::update`]. Indexed by slot;
    /// only `[qstart(), m_max)` is meaningful.
    #[inline]
    pub fn latest_scores(&self) -> &[f64] {
        &self.scores
    }

    /// Raw window contents, oldest value first.
    #[inline]
    pub fn window(&self) -> &[f64] {
        self.win.as_slice()
    }

    /// Ingests one stream value. Returns `true` if a new subsequence was
    /// completed (i.e. at least `w` values have been seen).
    pub fn update(&mut self, x: f64) -> bool {
        let grew = !self.win.is_full();
        self.win.push(x);
        // Track when the most recent non-finite observation leaves the
        // window: a value pushed now is evicted after exactly `capacity`
        // further pushes, regardless of the current fill level.
        let mut heal_now = false;
        if self.nan_heal > 0 {
            self.nan_heal -= 1;
            heal_now = self.nan_heal == 0;
        }
        if !x.is_finite() {
            self.nan_heal = self.win.capacity();
            heal_now = false;
        }
        let l = self.win.len();
        let w = self.cfg.width;
        if l < w {
            return false;
        }
        let sid = self.next_sid;
        self.next_sid += 1;

        // --- Per-subsequence moments of the newest subsequence (O(w)). ---
        {
            let win = self.win.as_slice();
            let newest = &win[l - w..];
            let (sum, ssq) = simd::sum_sumsq(newest);
            let mu = sum / w as f64;
            let var = (ssq / w as f64 - mu * mu).max(0.0);
            self.mu.push(mu);
            self.sig.push(var.sqrt());
            self.ssq.push(ssq);
            if self.cfg.similarity == Similarity::Cid {
                self.ce2.push(simd::diff_sumsq(newest));
            } else {
                self.ce2.push(0.0);
            }
        }

        let n_subs = l - w + 1;
        let qstart = self.m_max - n_subs;

        // --- NaN healing (ROADMAP): the last non-finite value has left the
        // window, but the Q recursion keeps NaN in every slot it touched
        // (x + NaN - NaN = NaN). All live subsequences are clean again, so
        // an explicit recompute of the poisoned slots restores exactness.
        // The pre-update invariant is q[s] = win[o..o+w-1] · win[l-w..l-1].
        if heal_now {
            let win = self.win.as_slice();
            let prefix = &win[l - w..l - 1];
            for s in qstart..self.m_max {
                if self.q[s].is_nan() {
                    let o = s - qstart;
                    self.q[s] = simd::dot(&win[o..o + w - 1], prefix);
                }
            }
        }

        // --- Q maintenance & similarity scores (Eq. 3-5), one fused
        // SIMD pass per update (see `crate::simd`). ---
        {
            let win = self.win.as_slice();
            if grew {
                // A new leftmost slot appeared: fill the recursion hole with
                // an explicit (w-1)-length dot product (Algorithm 2 line 7).
                self.q[qstart] = simd::dot(&win[0..w - 1], &win[l - w..l - 1]);
            }
            let last = win[l - 1];
            let first_of_newest = win[l - w];
            let wf = w as f64;
            let mu = self.mu.as_slice();
            let sig = self.sig.as_slice();
            let ssq = self.ssq.as_slice();
            let ce2 = self.ce2.as_slice();
            let o_new = n_subs - 1;
            let io = simd::QStepIo {
                q: &mut self.q[qstart..],
                scores: &mut self.scores[qstart..],
                tail: &win[w - 1..],
                head: &win[..n_subs],
                last,
                first: first_of_newest,
            };
            match self.cfg.similarity {
                Similarity::Pearson => {
                    simd::qstep_pearson(io, mu, sig, wf, mu[o_new], sig[o_new]);
                }
                Similarity::Euclidean => {
                    simd::qstep_euclidean(io, ssq, ssq[o_new]);
                }
                Similarity::Cid => {
                    simd::qstep_cid(io, ssq, ce2, ssq[o_new], ce2[o_new]);
                }
            }
        }

        // --- k-NN selection for the newest subsequence: one bounded
        // insertion pass over the scores. Semantics match the former
        // k-sequential-scan selection exactly: candidates are ranked by
        // descending score, ties broken towards the older slot, and
        // NaN / -inf scores are never selected (a NaN in the window must
        // shorten the list rather than fabricate neighbours). ---
        let k = self.cfg.k;
        let elig_end = self.m_max - self.excl; // exclusive slot bound
        let n_elig = elig_end.saturating_sub(qstart);
        let kk = k.min(n_elig);
        let mut row_sid = [i64::MIN; MAX_K];
        let mut row_score = [f64::NEG_INFINITY; MAX_K];
        let mut n_chosen = 0usize;
        for s in qstart..elig_end {
            let sc = self.scores[s];
            // NaN and -inf are never selectable, mirroring the old argmax
            // that never advanced past its -inf initialisation.
            if sc.is_nan() || sc == f64::NEG_INFINITY {
                continue;
            }
            if n_chosen == kk && sc <= row_score[kk - 1] {
                continue;
            }
            let mut pos = n_chosen;
            while pos > 0 && row_score[pos - 1] < sc {
                pos -= 1;
            }
            let end = if n_chosen == kk { kk - 1 } else { n_chosen };
            for j in (pos..end).rev() {
                row_score[j + 1] = row_score[j];
                row_sid[j + 1] = row_sid[j];
            }
            row_score[pos] = sc;
            row_sid[pos] = self.sid_of_slot(s);
            if n_chosen < kk {
                n_chosen += 1;
            }
        }
        self.nn_sid.push_row(&row_sid[..k]);
        self.nn_score.push_row(&row_score[..k]);
        self.nn_len.push(n_chosen as u8);
        // Journal: row creation precedes its initial edges, so a replaying
        // consumer resets the row's slot before applying them.
        self.push_event(KnnEvent::RowCreated { sid });
        for i in 0..n_chosen {
            self.push_event(KnnEvent::EdgeAdded {
                owner: sid,
                target: row_sid[i],
            });
        }

        // --- Insert the newest subsequence into older neighbour lists. ---
        if self.cfg.update_existing {
            let rows = self.nn_sid.rows();
            debug_assert_eq!(rows, n_subs);
            // Rows are ordered oldest -> newest; only rows at slot distance
            // >= excl from the newest are eligible, i.e. row indices
            // 0 .. n_subs - excl (matching the eligibility of the initial
            // selection above).
            let upto = n_subs.saturating_sub(self.excl);
            for r in 0..upto {
                let s = qstart + r;
                let sc = self.scores[s];
                if sc.is_nan() {
                    // A NaN in the window poisons the recursion's scores; a
                    // NaN neighbour entry would break the lists' sortedness.
                    continue;
                }
                let len = self.nn_len.get(r) as usize;
                if len == k && sc <= self.nn_score.row(r)[k - 1] {
                    continue;
                }
                // Insertion position by descending score.
                let mut pos = 0;
                {
                    let sr = self.nn_score.row(r);
                    while pos < len && sr[pos] >= sc {
                        pos += 1;
                    }
                }
                let end = len.min(k - 1);
                // Journaled before the shift below overwrites it.
                let evicted = (len == k).then(|| self.nn_sid.row(r)[k - 1]);
                {
                    let sr = self.nn_score.row_mut(r);
                    for j in (pos..end).rev() {
                        sr[j + 1] = sr[j];
                    }
                    sr[pos] = sc;
                }
                {
                    let ir = self.nn_sid.row_mut(r);
                    for j in (pos..end).rev() {
                        ir[j + 1] = ir[j];
                    }
                    ir[pos] = sid;
                }
                if len < k {
                    self.nn_len.as_mut_slice()[r] += 1;
                }
                let owner = self.sid_of_slot(s);
                match evicted {
                    Some(evicted) => self.push_event(KnnEvent::EdgeReplaced {
                        owner,
                        target: sid,
                        evicted,
                    }),
                    None => self.push_event(KnnEvent::EdgeAdded { owner, target: sid }),
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::naive;
    use crate::stats::SplitMix64;

    fn random_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 4.0 - 2.0).collect()
    }

    /// Brute-force mirror of the streaming semantics: same exclusion, same
    /// insert-only updates, but naive dot products. Returns neighbour lists
    /// by absolute sid after feeding the whole series.
    struct NaiveMirror {
        d: usize,
        w: usize,
        k: usize,
        excl: usize,
        sim: Similarity,
        series: Vec<f64>,
        rows: Vec<(i64, Vec<(i64, f64)>)>, // (sid, sorted neighbour list)
    }

    impl NaiveMirror {
        fn score(&self, a: i64, b: i64) -> f64 {
            let sa = &self.series[a as usize..a as usize + self.w];
            let sb = &self.series[b as usize..b as usize + self.w];
            match self.sim {
                Similarity::Pearson => naive::pearson(sa, sb),
                Similarity::Euclidean => -naive::sq_euclidean(sa, sb),
                Similarity::Cid => -naive::sq_cid(sa, sb),
            }
        }

        fn run(&mut self) {
            let n = self.series.len();
            for t in self.w - 1..n {
                let sid = (t + 1 - self.w) as i64;
                let oldest_point = (t + 1).saturating_sub(self.d);
                let oldest_sid = oldest_point as i64;
                // Selection among older, eligible subsequences.
                let mut cands: Vec<(i64, f64)> = (oldest_sid..=sid - self.excl as i64)
                    .map(|c| (c, self.score(c, sid)))
                    .collect();
                cands.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                cands.truncate(self.k);
                self.rows.push((sid, cands));
                // Insert-only update of older rows still in window.
                for (rsid, list) in self.rows.iter_mut() {
                    if *rsid < oldest_sid || sid - *rsid < self.excl as i64 || *rsid == sid {
                        continue;
                    }
                    let sc = {
                        let sa = &self.series[*rsid as usize..*rsid as usize + self.w];
                        let sb = &self.series[sid as usize..sid as usize + self.w];
                        match self.sim {
                            Similarity::Pearson => naive::pearson(sa, sb),
                            Similarity::Euclidean => -naive::sq_euclidean(sa, sb),
                            Similarity::Cid => -naive::sq_cid(sa, sb),
                        }
                    };
                    if list.len() < self.k {
                        let pos = list.iter().position(|e| e.1 < sc).unwrap_or(list.len());
                        list.insert(pos, (sid, sc));
                    } else if sc > list.last().unwrap().1 {
                        list.pop();
                        let pos = list.iter().position(|e| e.1 < sc).unwrap_or(list.len());
                        list.insert(pos, (sid, sc));
                    }
                }
            }
        }
    }

    fn check_against_naive(n: usize, d: usize, w: usize, k: usize, sim: Similarity, seed: u64) {
        let series = random_series(n, seed);
        let cfg = KnnConfig {
            window_size: d,
            width: w,
            k,
            similarity: sim,
            exclusion: None,
            update_existing: true,
        };
        let excl = cfg.exclusion_radius();
        let mut knn = StreamingKnn::new(cfg);
        for &x in &series {
            knn.update(x);
        }
        let mut mirror = NaiveMirror {
            d,
            w,
            k,
            excl,
            sim,
            series,
            rows: Vec::new(),
        };
        mirror.run();
        // Compare the live rows at the end.
        let qs = knn.qstart();
        for slot in qs..knn.max_subsequences() {
            let sid = knn.sid_of_slot(slot);
            let (got_sids, got_scores) = knn.neighbors(slot);
            let (_, want) = mirror
                .rows
                .iter()
                .find(|(s, _)| *s == sid)
                .unwrap_or_else(|| panic!("missing naive row for sid {sid}"));
            assert_eq!(got_sids.len(), want.len(), "sid {sid}: neighbour count");
            for (i, &(wsid, wscore)) in want.iter().enumerate() {
                // Scores must match; ids may differ only under (near-)ties,
                // where the streaming recursion and the naive mirror may
                // legitimately order equal-scored neighbours differently.
                assert!(
                    (got_scores[i] - wscore).abs() < 1e-7,
                    "sid {sid} nn{i}: score {} vs {}",
                    got_scores[i],
                    wscore
                );
                let tie = i
                    .checked_sub(1)
                    .is_some_and(|p| (want[p].1 - wscore).abs() < 1e-7)
                    || want.get(i + 1).is_some_and(|n| (n.1 - wscore).abs() < 1e-7);
                assert!(
                    got_sids[i] == wsid || tie,
                    "sid {sid} nn{i}: id {} vs {} (scores {} vs {})",
                    got_sids[i],
                    wsid,
                    got_scores[i],
                    wscore
                );
            }
        }
    }

    #[test]
    fn streaming_knn_matches_naive_pearson_short() {
        check_against_naive(120, 200, 8, 3, Similarity::Pearson, 1);
    }

    #[test]
    fn streaming_knn_matches_naive_pearson_with_eviction() {
        check_against_naive(300, 100, 7, 3, Similarity::Pearson, 2);
    }

    #[test]
    fn streaming_knn_matches_naive_euclidean() {
        check_against_naive(250, 90, 6, 2, Similarity::Euclidean, 3);
    }

    #[test]
    fn streaming_knn_matches_naive_cid() {
        check_against_naive(220, 80, 5, 3, Similarity::Cid, 4);
    }

    #[test]
    fn streaming_knn_matches_naive_k1() {
        check_against_naive(260, 110, 9, 1, Similarity::Pearson, 5);
    }

    #[test]
    fn latest_scores_match_naive_pearson_each_step() {
        let n = 240;
        let (d, w) = (90, 7);
        let series = random_series(n, 6);
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, 3));
        for (t, &x) in series.iter().enumerate() {
            if !knn.update(x) {
                continue;
            }
            let newest = knn.newest_sid().unwrap() as usize;
            let sb = &series[newest..newest + w];
            for slot in knn.qstart()..knn.max_subsequences() {
                let sid = knn.sid_of_slot(slot) as usize;
                let sa = &series[sid..sid + w];
                let want = naive::pearson(sa, sb);
                let got = knn.latest_scores()[slot];
                assert!(
                    (got - want).abs() < 1e-7,
                    "t={t} slot={slot}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn exclusion_radius_is_respected() {
        let series = random_series(400, 7);
        let cfg = KnnConfig::new(150, 10, 3);
        let excl = cfg.exclusion_radius();
        let mut knn = StreamingKnn::new(cfg);
        for &x in &series {
            knn.update(x);
        }
        for slot in knn.qstart()..knn.max_subsequences() {
            let sid = knn.sid_of_slot(slot);
            let (sids, _) = knn.neighbors(slot);
            for &nsid in sids {
                assert!(
                    (nsid - sid).unsigned_abs() as usize >= excl,
                    "sid {sid} has trivial neighbour {nsid} (excl {excl})"
                );
            }
        }
    }

    #[test]
    fn neighbor_scores_sorted_descending() {
        let series = random_series(500, 8);
        let mut knn = StreamingKnn::new(KnnConfig::new(120, 9, 5));
        for &x in &series {
            knn.update(x);
        }
        for slot in knn.qstart()..knn.max_subsequences() {
            let (_, scores) = knn.neighbors(slot);
            for p in scores.windows(2) {
                assert!(p[0] >= p[1]);
            }
        }
    }

    #[test]
    fn update_returns_false_until_width_reached() {
        let mut knn = StreamingKnn::new(KnnConfig::new(50, 10, 3));
        for i in 0..9 {
            assert!(!knn.update(i as f64), "step {i}");
        }
        assert!(knn.update(9.0));
        assert_eq!(knn.n_subsequences(), 1);
    }

    #[test]
    fn constant_stream_is_handled_gracefully() {
        let mut knn = StreamingKnn::new(KnnConfig::new(60, 8, 3));
        for _ in 0..200 {
            knn.update(1.0);
        }
        // Flat subsequences: Pearson degenerates to 0 everywhere; the index
        // must stay finite and populated.
        for slot in knn.qstart()..knn.max_subsequences() {
            let (_, scores) = knn.neighbors(slot);
            assert!(scores.iter().all(|s| s.is_finite()));
        }
    }

    #[test]
    fn sid_slot_roundtrip() {
        let series = random_series(300, 9);
        let mut knn = StreamingKnn::new(KnnConfig::new(100, 6, 3));
        for &x in &series {
            knn.update(x);
        }
        for slot in knn.qstart()..knn.max_subsequences() {
            assert_eq!(knn.slot_of_sid(knn.sid_of_slot(slot)), slot);
        }
        assert_eq!(knn.oldest_sid().unwrap(), knn.sid_of_slot(knn.qstart()));
    }

    #[test]
    fn one_directional_mode_never_points_forward() {
        let series = random_series(400, 10);
        let mut cfg = KnnConfig::new(120, 8, 1);
        cfg.update_existing = false;
        let mut knn = StreamingKnn::new(cfg);
        for &x in &series {
            knn.update(x);
        }
        for slot in knn.qstart()..knn.max_subsequences() {
            let sid = knn.sid_of_slot(slot);
            let (sids, _) = knn.neighbors(slot);
            for &nsid in sids {
                assert!(nsid < sid, "forward arc {nsid} from {sid}");
            }
        }
    }

    #[test]
    fn nan_is_healed_once_evicted_from_window() {
        // A single NaN poisons the Q recursion (x + NaN - NaN = NaN). Once
        // the value has left the sliding window, the index must return to
        // exactness: every per-step score matches the naive computation.
        let (d, w) = (90, 7);
        let nan_at = 130;
        let mut series = random_series(400, 12);
        series[nan_at] = f64::NAN;
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, 3));
        // The NaN is evicted after exactly `d` further pushes.
        let clean_from = nan_at + d + 1;
        for (t, &x) in series.iter().enumerate() {
            if !knn.update(x) {
                continue;
            }
            if t < clean_from {
                continue;
            }
            let newest = knn.newest_sid().unwrap() as usize;
            let sb = &series[newest..newest + w];
            for slot in knn.qstart()..knn.max_subsequences() {
                let sid = knn.sid_of_slot(slot) as usize;
                let sa = &series[sid..sid + w];
                let want = naive::pearson(sa, sb);
                let got = knn.latest_scores()[slot];
                assert!(
                    (got - want).abs() < 1e-7,
                    "t={t} slot={slot}: {got} vs {want} (healing failed)"
                );
            }
            // Fresh rows must get full neighbour lists again.
            let (sids, _) = knn.neighbors(knn.max_subsequences() - 1);
            assert_eq!(sids.len(), 3, "t={t}: short list after heal");
        }
    }

    #[test]
    fn nan_healing_applies_to_euclidean_q_state() {
        // Through the Euclidean scoring path, a dirty window must propagate
        // NaN (shortened neighbour lists), never fabricate distance-0
        // neighbours; after eviction the Q state (shared across measures)
        // must be finite and the scores exact again.
        let (d, w) = (70, 6);
        let nan_at = 100;
        let mut series = random_series(300, 13);
        series[nan_at] = f64::NAN;
        let cfg = KnnConfig {
            window_size: d,
            width: w,
            k: 2,
            similarity: Similarity::Euclidean,
            exclusion: None,
            update_existing: true,
        };
        let mut knn = StreamingKnn::new(cfg);
        // The NaN is evicted (and healing fires) exactly at t = nan_at + d.
        let clean_from = nan_at + d;
        for (t, &x) in series.iter().enumerate() {
            if !knn.update(x) {
                continue;
            }
            if t >= nan_at && t < clean_from {
                // Dirty window: the recursion poisons every slot one step
                // after the NaN arrives; poisoned scores must surface as
                // NaN — not as a perfect distance-0 match — so no stored
                // neighbour can ever carry a fabricated 0.0 score.
                for slot in knn.qstart()..knn.max_subsequences() {
                    let sc = knn.latest_scores()[slot];
                    assert!(
                        t == nan_at || sc.is_nan(),
                        "t={t} slot={slot}: dirty-window score {sc} not NaN"
                    );
                }
                continue;
            }
            if t < clean_from {
                continue;
            }
            let newest = knn.newest_sid().unwrap() as usize;
            let sb = &series[newest..newest + w];
            for slot in knn.qstart()..knn.max_subsequences() {
                let sid = knn.sid_of_slot(slot) as usize;
                let sa = &series[sid..sid + w];
                let want = -naive::sq_euclidean(sa, sb);
                let got = knn.latest_scores()[slot];
                assert!(
                    (got - want).abs() < 1e-6,
                    "t={t} slot={slot}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn rejects_width_larger_than_window() {
        let _ = StreamingKnn::new(KnnConfig::new(50, 60, 3));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_k() {
        let _ = StreamingKnn::new(KnnConfig::new(50, 5, 0));
    }
}
