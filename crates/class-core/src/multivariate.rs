//! Multivariate ClaSS — the paper's future-work extension (§6: "we plan to
//! extend ClaSS to the multivariate setting, exploring sensor fusion and
//! dimension selection to improve accuracy").
//!
//! The design follows the paper's sketch: one univariate ClaSS instance per
//! selected channel ("temporal patterns are distributed across various
//! channels"), with
//!
//! * **dimension selection** — channels can be ranked during a probe phase
//!   and only the most informative ones segmented, and
//! * **sensor fusion** — per-channel change point votes are fused; a change
//!   point is emitted once a quorum of channels localises a change within a
//!   tolerance, at the median of the votes.

use crate::class::{ClassConfig, ClassSegmenter};
use crate::segmenter::StreamingSegmenter;

/// How per-channel change point votes are fused.
#[derive(Debug, Clone, Copy)]
pub enum FusionStrategy {
    /// Emit when at least `min_votes` distinct channels report a change
    /// point within `tolerance` positions of each other.
    Quorum {
        /// Minimum number of agreeing channels.
        min_votes: usize,
        /// Maximum distance between agreeing votes, in observations.
        tolerance: u64,
    },
    /// Emit every per-channel change point (union; min_votes = 1 with
    /// deduplication inside `tolerance`).
    Any {
        /// Deduplication distance, in observations.
        tolerance: u64,
    },
}

impl FusionStrategy {
    /// Maximum distance between agreeing votes, in observations. Public
    /// so callers overriding the strategy (e.g. the CLI's `--fusion`
    /// knob) can keep the configured tolerance instead of re-deriving
    /// the default formula.
    pub fn tolerance(&self) -> u64 {
        match *self {
            FusionStrategy::Quorum { tolerance, .. } | FusionStrategy::Any { tolerance } => {
                tolerance
            }
        }
    }

    /// Number of distinct channels that must agree before a change point
    /// is emitted (1 for [`FusionStrategy::Any`]).
    pub fn min_votes(&self) -> usize {
        match *self {
            FusionStrategy::Quorum { min_votes, .. } => min_votes.max(1),
            FusionStrategy::Any { .. } => 1,
        }
    }
}

/// Which channels are segmented.
#[derive(Debug, Clone, Copy)]
pub enum ChannelSelection {
    /// Segment every channel.
    All,
    /// After a probe of `probe` observations, keep only the `k` channels
    /// with the highest variance (dead or flat sensors carry no pattern).
    TopVariance {
        /// Number of channels to keep.
        k: usize,
        /// Probe length in observations.
        probe: usize,
    },
}

/// Configuration of the multivariate segmenter.
#[derive(Debug, Clone)]
pub struct MultivariateConfig {
    /// Per-channel univariate configuration.
    pub base: ClassConfig,
    /// Vote fusion strategy.
    pub fusion: FusionStrategy,
    /// Channel selection strategy.
    pub selection: ChannelSelection,
}

impl MultivariateConfig {
    /// Quorum-of-half default on top of a univariate configuration.
    pub fn new(base: ClassConfig, n_channels: usize) -> Self {
        let tolerance = (base.window_size / 8).max(64) as u64;
        Self {
            base,
            fusion: FusionStrategy::Quorum {
                min_votes: n_channels.div_ceil(2).max(1),
                tolerance,
            },
            selection: ChannelSelection::All,
        }
    }

    /// The univariate configuration channel `i` is segmented with: the
    /// shared base with a per-channel seed so channels decorrelate. Public
    /// so stand-alone per-channel segmenters (differential tests, offline
    /// fusion references) can reproduce exactly what the multivariate
    /// segmenter runs internally.
    pub fn channel_config(&self, i: usize) -> ClassConfig {
        let mut c = self.base.clone();
        c.seed ^= (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
        c
    }
}

/// One pending per-channel vote.
#[derive(Debug, Clone, Copy)]
struct Vote {
    channel: usize,
    cp: u64,
}

/// The online vote-fusion state machine shared change points are distilled
/// through: per-channel change point reports enter as votes, and a fused
/// change point is emitted once the configured [`FusionStrategy`] is
/// satisfied. Extracted from [`MultivariateClass`] so the fusion layer can
/// be driven stand-alone — e.g. replaying votes recorded from independent
/// per-channel segmenters must reproduce the fused output exactly (the
/// serving-engine differential tests rely on this).
#[derive(Debug, Clone)]
pub struct VoteFuser {
    fusion: FusionStrategy,
    votes: Vec<Vote>,
    emitted: Vec<u64>,
}

impl VoteFuser {
    /// Creates an empty fuser for a fusion strategy.
    pub fn new(fusion: FusionStrategy) -> Self {
        Self {
            fusion,
            votes: Vec::new(),
            emitted: Vec::new(),
        }
    }

    /// Records one per-channel change point vote. Votes accumulate until
    /// the next [`VoteFuser::step`] (online) or [`VoteFuser::finish`]
    /// (end-of-stream) evaluates them.
    pub fn vote(&mut self, channel: usize, cp: u64) {
        self.votes.push(Vote { channel, cp });
    }

    /// Advances the fuser to stream position `pos`: expires votes that can
    /// no longer join a quorum, then searches for a satisfied vote cluster.
    /// At most one fused change point is emitted per step.
    pub fn step(&mut self, pos: u64) -> Option<u64> {
        let tolerance = self.fusion.tolerance();
        // Expire votes that can no longer join a quorum.
        let horizon = 4 * tolerance + 1;
        self.votes.retain(|v| v.cp + horizon >= pos);
        self.emitted.retain(|&e| e + 2 * horizon >= pos);
        // Fusion: find a cluster of votes from distinct channels.
        let min_votes = self.fusion.min_votes();
        let mut fused: Option<u64> = None;
        'anchor: for a in 0..self.votes.len() {
            let anchor = self.votes[a];
            let mut members: Vec<&Vote> = self
                .votes
                .iter()
                .filter(|v| v.cp.abs_diff(anchor.cp) <= tolerance)
                .collect();
            // Distinct channels only.
            members.sort_by_key(|v| v.channel);
            members.dedup_by_key(|v| v.channel);
            if members.len() >= min_votes {
                let mut positions: Vec<u64> = members.iter().map(|v| v.cp).collect();
                positions.sort_unstable();
                let cp = positions[positions.len() / 2];
                // Suppress re-emission of the same change.
                for &e in &self.emitted {
                    if e.abs_diff(cp) <= 2 * tolerance {
                        continue 'anchor;
                    }
                }
                fused = Some(cp);
                break;
            }
        }
        if let Some(cp) = fused {
            self.emitted.push(cp);
            self.votes.retain(|v| v.cp.abs_diff(cp) > tolerance);
        }
        fused
    }

    /// Fuses every remaining vote at end-of-stream (no expiry: a finite
    /// stream's tail votes all count), appending fused change points to
    /// `cps` in ascending order.
    pub fn finish(&mut self, cps: &mut Vec<u64>) {
        let tolerance = self.fusion.tolerance();
        let min_votes = self.fusion.min_votes();
        let mut votes = std::mem::take(&mut self.votes);
        votes.sort_by_key(|v| v.cp);
        let mut i = 0;
        while i < votes.len() {
            let anchor = votes[i];
            let mut members: Vec<&Vote> = votes
                .iter()
                .filter(|v| v.cp.abs_diff(anchor.cp) <= tolerance)
                .collect();
            members.sort_by_key(|v| v.channel);
            members.dedup_by_key(|v| v.channel);
            if members.len() >= min_votes {
                let mut positions: Vec<u64> = members.iter().map(|v| v.cp).collect();
                positions.sort_unstable();
                let cp = positions[positions.len() / 2];
                if !self
                    .emitted
                    .iter()
                    .any(|&e| e.abs_diff(cp) <= 2 * tolerance)
                {
                    cps.push(cp);
                    self.emitted.push(cp);
                }
                let next = votes.iter().position(|v| v.cp > anchor.cp + tolerance);
                i = next.unwrap_or(votes.len());
            } else {
                i += 1;
            }
        }
    }
}

/// Multivariate streaming segmenter: per-channel ClaSS + vote fusion.
pub struct MultivariateClass {
    cfg: MultivariateConfig,
    n_channels: usize,
    /// One segmenter per channel; `None` for channels dropped by selection.
    channels: Vec<Option<ClassSegmenter>>,
    /// Probe statistics for TopVariance selection.
    probe_sums: Vec<(f64, f64)>,
    probe_seen: usize,
    selected: bool,
    fuser: VoteFuser,
    scratch: Vec<u64>,
    t: u64,
}

impl MultivariateClass {
    /// Creates a multivariate segmenter over `n_channels` channels.
    ///
    /// # Panics
    /// Panics if `n_channels` is 0 or the selection keeps 0 channels.
    pub fn new(cfg: MultivariateConfig, n_channels: usize) -> Self {
        assert!(n_channels >= 1, "need at least one channel");
        if let ChannelSelection::TopVariance { k, .. } = cfg.selection {
            assert!(k >= 1, "selection must keep at least one channel");
        }
        let channels = (0..n_channels)
            .map(|i| Some(ClassSegmenter::new(cfg.channel_config(i))))
            .collect();
        Self {
            n_channels,
            channels,
            probe_sums: vec![(0.0, 0.0); n_channels],
            probe_seen: 0,
            selected: matches!(cfg.selection, ChannelSelection::All),
            fuser: VoteFuser::new(cfg.fusion),
            scratch: Vec::new(),
            cfg,
            t: 0,
        }
    }

    /// Number of channels expected by [`MultivariateClass::step`].
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// Indices of the channels currently being segmented.
    pub fn active_channels(&self) -> Vec<usize> {
        self.channels
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_some().then_some(i))
            .collect()
    }

    /// Feeds one observation vector (one value per channel); fused change
    /// points are appended to `cps`.
    ///
    /// # Panics
    /// Panics if `xs.len() != n_channels`.
    pub fn step(&mut self, xs: &[f64], cps: &mut Vec<u64>) {
        assert_eq!(xs.len(), self.n_channels, "channel count mismatch");
        let pos = self.t;
        self.t += 1;
        // Dimension selection probe.
        if !self.selected {
            if let ChannelSelection::TopVariance { k, probe } = self.cfg.selection {
                for (i, &x) in xs.iter().enumerate() {
                    self.probe_sums[i].0 += x;
                    self.probe_sums[i].1 += x * x;
                }
                self.probe_seen += 1;
                if self.probe_seen >= probe {
                    let n = self.probe_seen as f64;
                    let mut vars: Vec<(usize, f64)> = self
                        .probe_sums
                        .iter()
                        .enumerate()
                        .map(|(i, &(s, s2))| (i, (s2 / n - (s / n) * (s / n)).max(0.0)))
                        .collect();
                    vars.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                    let keep: Vec<usize> = vars.iter().take(k.max(1)).map(|&(i, _)| i).collect();
                    for (i, ch) in self.channels.iter_mut().enumerate() {
                        if !keep.contains(&i) {
                            *ch = None;
                        }
                    }
                    self.selected = true;
                }
            }
        }
        // Per-channel segmentation and vote collection.
        for (i, ch) in self.channels.iter_mut().enumerate() {
            let Some(seg) = ch else { continue };
            self.scratch.clear();
            seg.step(xs[i], &mut self.scratch);
            for &cp in &self.scratch {
                self.fuser.vote(i, cp);
            }
        }
        if let Some(cp) = self.fuser.step(pos) {
            cps.push(cp);
        }
    }

    /// Signals end-of-stream to every channel, fusing remaining votes.
    pub fn finalize(&mut self, cps: &mut Vec<u64>) {
        for (i, ch) in self.channels.iter_mut().enumerate() {
            let Some(seg) = ch else { continue };
            self.scratch.clear();
            seg.finalize(&mut self.scratch);
            for &cp in &self.scratch {
                self.fuser.vote(i, cp);
            }
        }
        self.fuser.finish(cps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::WidthSelection;
    use crate::stats::SplitMix64;

    /// Channels 0 and 1 change regime at `cp`; channel 2 is pure noise.
    fn three_channel_stream(n: usize, cp: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let f = if i < cp { 0.15 } else { 0.45 };
                [
                    (i as f64 * f).sin() + 0.05 * (rng.next_f64() - 0.5),
                    (i as f64 * f * 1.1).cos() + 0.05 * (rng.next_f64() - 0.5),
                    rng.next_f64() - 0.5,
                ]
            })
            .collect()
    }

    fn base_cfg() -> ClassConfig {
        let mut c = ClassConfig::with_window_size(1500);
        c.width = WidthSelection::Fixed(30);
        c.log10_alpha = -12.0;
        c
    }

    #[test]
    fn quorum_fusion_detects_shared_change() {
        let xs = three_channel_stream(5000, 2500, 1);
        let cfg = MultivariateConfig::new(base_cfg(), 3);
        let mut mv = MultivariateClass::new(cfg, 3);
        let mut cps = Vec::new();
        for row in &xs {
            mv.step(row, &mut cps);
        }
        mv.finalize(&mut cps);
        assert!(
            cps.iter().any(|&c| (c as i64 - 2500).unsigned_abs() < 500),
            "cps = {cps:?}"
        );
    }

    #[test]
    fn noise_channel_alone_cannot_fire_quorum() {
        // All-noise streams: quorum 2 of 3 must stay quiet.
        let mut rng = SplitMix64::new(2);
        let cfg = MultivariateConfig::new(base_cfg(), 3);
        let mut mv = MultivariateClass::new(cfg, 3);
        let mut cps = Vec::new();
        for _ in 0..5000 {
            let row = [
                rng.next_f64() - 0.5,
                rng.next_f64() - 0.5,
                rng.next_f64() - 0.5,
            ];
            mv.step(&row, &mut cps);
        }
        assert!(cps.is_empty(), "false positives: {cps:?}");
    }

    #[test]
    fn top_variance_selection_drops_flat_channel() {
        let mut cfg = MultivariateConfig::new(base_cfg(), 3);
        cfg.selection = ChannelSelection::TopVariance { k: 2, probe: 200 };
        let mut mv = MultivariateClass::new(cfg, 3);
        let mut cps = Vec::new();
        let mut rng = SplitMix64::new(3);
        for i in 0..400 {
            let row = [
                (i as f64 * 0.2).sin(),
                0.0, // dead sensor
                rng.next_f64() - 0.5,
            ];
            mv.step(&row, &mut cps);
        }
        let active = mv.active_channels();
        assert_eq!(active.len(), 2);
        assert!(!active.contains(&1), "dead channel kept: {active:?}");
    }

    #[test]
    fn any_fusion_is_more_eager_than_quorum() {
        // Only channel 0 carries the change.
        let mut rng = SplitMix64::new(4);
        let xs: Vec<[f64; 2]> = (0..5000)
            .map(|i| {
                let f = if i < 2500 { 0.15 } else { 0.45 };
                [
                    (i as f64 * f).sin() + 0.05 * (rng.next_f64() - 0.5),
                    (i as f64 * 0.2).sin() + 0.05 * (rng.next_f64() - 0.5),
                ]
            })
            .collect();
        let run = |fusion: FusionStrategy| -> Vec<u64> {
            let mut cfg = MultivariateConfig::new(base_cfg(), 2);
            cfg.fusion = fusion;
            let mut mv = MultivariateClass::new(cfg, 2);
            let mut cps = Vec::new();
            for row in &xs {
                mv.step(row, &mut cps);
            }
            mv.finalize(&mut cps);
            cps
        };
        let any = run(FusionStrategy::Any { tolerance: 200 });
        let quorum = run(FusionStrategy::Quorum {
            min_votes: 2,
            tolerance: 200,
        });
        assert!(
            any.iter().any(|&c| (c as i64 - 2500).unsigned_abs() < 500),
            "any missed: {any:?}"
        );
        assert!(any.len() >= quorum.len());
    }

    #[test]
    #[should_panic]
    fn wrong_channel_count_panics() {
        let cfg = MultivariateConfig::new(base_cfg(), 2);
        let mut mv = MultivariateClass::new(cfg, 2);
        let mut cps = Vec::new();
        mv.step(&[1.0], &mut cps);
    }

    #[test]
    fn fused_output_is_reproducible_from_per_channel_votes() {
        // Stand-alone per-channel segmenters (built from `channel_config`)
        // plus a fresh `VoteFuser` replaying their timed votes must
        // reproduce the multivariate segmenter's output exactly.
        let xs = three_channel_stream(5000, 2500, 9);
        let cfg = MultivariateConfig::new(base_cfg(), 3);

        let mut mv = MultivariateClass::new(cfg.clone(), 3);
        let mut fused = Vec::new();
        for row in &xs {
            mv.step(row, &mut fused);
        }
        mv.finalize(&mut fused);

        // Record (emit time, cp) votes from independent channel runs.
        let mut segs: Vec<ClassSegmenter> = (0..3)
            .map(|i| ClassSegmenter::new(cfg.channel_config(i)))
            .collect();
        let mut fuser = VoteFuser::new(cfg.fusion);
        let mut replayed = Vec::new();
        let mut scratch = Vec::new();
        for (t, row) in xs.iter().enumerate() {
            for (i, seg) in segs.iter_mut().enumerate() {
                scratch.clear();
                seg.step(row[i], &mut scratch);
                for &cp in &scratch {
                    fuser.vote(i, cp);
                }
            }
            if let Some(cp) = fuser.step(t as u64) {
                replayed.push(cp);
            }
        }
        for (i, seg) in segs.iter_mut().enumerate() {
            scratch.clear();
            seg.finalize(&mut scratch);
            for &cp in &scratch {
                fuser.vote(i, cp);
            }
        }
        fuser.finish(&mut replayed);
        assert_eq!(fused, replayed);
        assert!(!fused.is_empty(), "no change point fused at all");
    }

    #[test]
    fn deterministic_across_runs() {
        let xs = three_channel_stream(4000, 2000, 5);
        let run = || {
            let cfg = MultivariateConfig::new(base_cfg(), 3);
            let mut mv = MultivariateClass::new(cfg, 3);
            let mut cps = Vec::new();
            for row in &xs {
                mv.step(row, &mut cps);
            }
            mv.finalize(&mut cps);
            cps
        };
        assert_eq!(run(), run());
    }
}
