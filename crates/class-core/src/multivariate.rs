//! Multivariate ClaSS — the paper's future-work extension (§6: "we plan to
//! extend ClaSS to the multivariate setting, exploring sensor fusion and
//! dimension selection to improve accuracy").
//!
//! The design follows the paper's sketch: one univariate ClaSS instance per
//! selected channel ("temporal patterns are distributed across various
//! channels"), with
//!
//! * **dimension selection** — channels can be ranked during a probe phase
//!   and only the most informative ones segmented, and
//! * **sensor fusion** — per-channel change point votes are fused; a change
//!   point is emitted once a quorum of channels localises a change within a
//!   tolerance, at the median of the votes.

use crate::class::{ClassConfig, ClassSegmenter};
use crate::segmenter::StreamingSegmenter;

/// How per-channel change point votes are fused.
#[derive(Debug, Clone, Copy)]
pub enum FusionStrategy {
    /// Emit when at least `min_votes` distinct channels report a change
    /// point within `tolerance` positions of each other.
    Quorum {
        /// Minimum number of agreeing channels.
        min_votes: usize,
        /// Maximum distance between agreeing votes, in observations.
        tolerance: u64,
    },
    /// Emit every per-channel change point (union; min_votes = 1 with
    /// deduplication inside `tolerance`).
    Any {
        /// Deduplication distance, in observations.
        tolerance: u64,
    },
}

impl FusionStrategy {
    /// Maximum distance between agreeing votes, in observations. Public
    /// so callers overriding the strategy (e.g. the CLI's `--fusion`
    /// knob) can keep the configured tolerance instead of re-deriving
    /// the default formula.
    pub fn tolerance(&self) -> u64 {
        match *self {
            FusionStrategy::Quorum { tolerance, .. } | FusionStrategy::Any { tolerance } => {
                tolerance
            }
        }
    }

    /// Number of distinct channels that must agree before a change point
    /// is emitted (1 for [`FusionStrategy::Any`]).
    pub fn min_votes(&self) -> usize {
        match *self {
            FusionStrategy::Quorum { min_votes, .. } => min_votes.max(1),
            FusionStrategy::Any { .. } => 1,
        }
    }
}

/// Which channels are segmented.
#[derive(Debug, Clone, Copy)]
pub enum ChannelSelection {
    /// Segment every channel.
    All,
    /// After a probe of `probe` observations, keep only the `k` channels
    /// with the highest variance (dead or flat sensors carry no pattern).
    TopVariance {
        /// Number of channels to keep.
        k: usize,
        /// Probe length in observations.
        probe: usize,
    },
}

/// Why a channel of a fused multivariate stream was retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFault {
    /// The channel delivered `len` consecutive non-finite values.
    NanBurst {
        /// Burst length at the trip.
        len: usize,
    },
    /// The channel delivered `len` consecutive identical finite values.
    Flatline {
        /// Run length at the trip.
        len: usize,
    },
    /// Retired by the caller (e.g. the serving layer quarantined the
    /// channel's source) via [`MultivariateClass::quarantine_channel`].
    External,
}

impl std::fmt::Display for ChannelFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelFault::NanBurst { len } => write!(f, "{len} consecutive non-finite values"),
            ChannelFault::Flatline { len } => write!(f, "flatlined for {len} samples"),
            ChannelFault::External => write!(f, "retired by the caller"),
        }
    }
}

/// Per-channel degraded-input policy: a fused stream should lose a dead
/// sensor, not die of it. Isolated non-finite values are healed with the
/// channel's last finite value; a sustained burst or flatline retires the
/// channel and re-quorums the fuser over the survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelGuardConfig {
    /// Consecutive non-finite values that retire a channel (0 disables;
    /// non-finite values are then delivered to the segmenter verbatim).
    pub nan_burst: usize,
    /// Consecutive identical finite values that retire a channel
    /// (0 disables).
    pub flatline: usize,
}

impl ChannelGuardConfig {
    /// A guard tripping on `nan_burst` consecutive non-finite values or
    /// `flatline` consecutive identical values (0 disables either).
    pub fn new(nan_burst: usize, flatline: usize) -> Self {
        Self {
            nan_burst,
            flatline,
        }
    }
}

/// Configuration of the multivariate segmenter.
#[derive(Debug, Clone)]
pub struct MultivariateConfig {
    /// Per-channel univariate configuration.
    pub base: ClassConfig,
    /// Vote fusion strategy.
    pub fusion: FusionStrategy,
    /// Channel selection strategy.
    pub selection: ChannelSelection,
    /// Per-channel degraded-input policy. `None` (the default) delivers
    /// channel values verbatim and never retires a channel.
    pub channel_guard: Option<ChannelGuardConfig>,
}

impl MultivariateConfig {
    /// Quorum-of-half default on top of a univariate configuration.
    pub fn new(base: ClassConfig, n_channels: usize) -> Self {
        let tolerance = (base.window_size / 8).max(64) as u64;
        Self {
            base,
            fusion: FusionStrategy::Quorum {
                min_votes: n_channels.div_ceil(2).max(1),
                tolerance,
            },
            selection: ChannelSelection::All,
            channel_guard: None,
        }
    }

    /// The univariate configuration channel `i` is segmented with: the
    /// shared base with a per-channel seed so channels decorrelate. Public
    /// so stand-alone per-channel segmenters (differential tests, offline
    /// fusion references) can reproduce exactly what the multivariate
    /// segmenter runs internally.
    pub fn channel_config(&self, i: usize) -> ClassConfig {
        let mut c = self.base.clone();
        c.seed ^= (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
        c
    }
}

/// One pending per-channel vote.
#[derive(Debug, Clone, Copy)]
struct Vote {
    channel: usize,
    cp: u64,
}

/// The online vote-fusion state machine shared change points are distilled
/// through: per-channel change point reports enter as votes, and a fused
/// change point is emitted once the configured [`FusionStrategy`] is
/// satisfied. Extracted from [`MultivariateClass`] so the fusion layer can
/// be driven stand-alone — e.g. replaying votes recorded from independent
/// per-channel segmenters must reproduce the fused output exactly (the
/// serving-engine differential tests rely on this).
#[derive(Debug, Clone)]
pub struct VoteFuser {
    fusion: FusionStrategy,
    votes: Vec<Vote>,
    emitted: Vec<u64>,
}

impl VoteFuser {
    /// Creates an empty fuser for a fusion strategy.
    pub fn new(fusion: FusionStrategy) -> Self {
        Self {
            fusion,
            votes: Vec::new(),
            emitted: Vec::new(),
        }
    }

    /// Records one per-channel change point vote. Votes accumulate until
    /// the next [`VoteFuser::step`] (online) or [`VoteFuser::finish`]
    /// (end-of-stream) evaluates them.
    pub fn vote(&mut self, channel: usize, cp: u64) {
        self.votes.push(Vote { channel, cp });
    }

    /// Retires `channel` from the electorate: its pending votes are
    /// discarded and, under [`FusionStrategy::Quorum`], `min_votes` is
    /// re-derived so the `remaining_active` survivors can still reach a
    /// quorum — the same majority-of-channels formula
    /// [`MultivariateConfig::new`] would use for a fleet of that size,
    /// never raised above the configured value.
    pub fn retire_channel(&mut self, channel: usize, remaining_active: usize) {
        self.votes.retain(|v| v.channel != channel);
        if let FusionStrategy::Quorum {
            min_votes,
            tolerance,
        } = self.fusion
        {
            self.fusion = FusionStrategy::Quorum {
                min_votes: min_votes.min(remaining_active.div_ceil(2)).max(1),
                tolerance,
            };
        }
    }

    /// Advances the fuser to stream position `pos`: expires votes that can
    /// no longer join a quorum, then searches for a satisfied vote cluster.
    /// At most one fused change point is emitted per step.
    pub fn step(&mut self, pos: u64) -> Option<u64> {
        let tolerance = self.fusion.tolerance();
        // Expire votes that can no longer join a quorum.
        let horizon = 4 * tolerance + 1;
        self.votes.retain(|v| v.cp + horizon >= pos);
        self.emitted.retain(|&e| e + 2 * horizon >= pos);
        // Fusion: find a cluster of votes from distinct channels.
        let min_votes = self.fusion.min_votes();
        let mut fused: Option<u64> = None;
        'anchor: for a in 0..self.votes.len() {
            let anchor = self.votes[a];
            let mut members: Vec<&Vote> = self
                .votes
                .iter()
                .filter(|v| v.cp.abs_diff(anchor.cp) <= tolerance)
                .collect();
            // Distinct channels only.
            members.sort_by_key(|v| v.channel);
            members.dedup_by_key(|v| v.channel);
            if members.len() >= min_votes {
                let mut positions: Vec<u64> = members.iter().map(|v| v.cp).collect();
                positions.sort_unstable();
                let cp = positions[positions.len() / 2];
                // Suppress re-emission of the same change.
                for &e in &self.emitted {
                    if e.abs_diff(cp) <= 2 * tolerance {
                        continue 'anchor;
                    }
                }
                fused = Some(cp);
                break;
            }
        }
        if let Some(cp) = fused {
            self.emitted.push(cp);
            self.votes.retain(|v| v.cp.abs_diff(cp) > tolerance);
        }
        fused
    }

    /// Fuses every remaining vote at end-of-stream (no expiry: a finite
    /// stream's tail votes all count), appending fused change points to
    /// `cps` in ascending order.
    pub fn finish(&mut self, cps: &mut Vec<u64>) {
        let tolerance = self.fusion.tolerance();
        let min_votes = self.fusion.min_votes();
        let mut votes = std::mem::take(&mut self.votes);
        votes.sort_by_key(|v| v.cp);
        let mut i = 0;
        while i < votes.len() {
            let anchor = votes[i];
            let mut members: Vec<&Vote> = votes
                .iter()
                .filter(|v| v.cp.abs_diff(anchor.cp) <= tolerance)
                .collect();
            members.sort_by_key(|v| v.channel);
            members.dedup_by_key(|v| v.channel);
            if members.len() >= min_votes {
                let mut positions: Vec<u64> = members.iter().map(|v| v.cp).collect();
                positions.sort_unstable();
                let cp = positions[positions.len() / 2];
                if !self
                    .emitted
                    .iter()
                    .any(|&e| e.abs_diff(cp) <= 2 * tolerance)
                {
                    cps.push(cp);
                    self.emitted.push(cp);
                }
                let next = votes.iter().position(|v| v.cp > anchor.cp + tolerance);
                i = next.unwrap_or(votes.len());
            } else {
                i += 1;
            }
        }
    }
}

/// Per-channel degraded-input tracking for [`ChannelGuardConfig`].
#[derive(Debug, Clone, Default)]
struct ChannelGuardState {
    nan_run: usize,
    flat_run: usize,
    last_finite: Option<f64>,
}

/// Multivariate streaming segmenter: per-channel ClaSS + vote fusion.
pub struct MultivariateClass {
    cfg: MultivariateConfig,
    n_channels: usize,
    /// One segmenter per channel; `None` for channels dropped by selection
    /// or retired by the channel guard.
    channels: Vec<Option<ClassSegmenter>>,
    /// Probe statistics for TopVariance selection.
    probe_sums: Vec<(f64, f64)>,
    probe_seen: usize,
    selected: bool,
    fuser: VoteFuser,
    scratch: Vec<u64>,
    guards: Vec<ChannelGuardState>,
    /// Guard-healed copy of the current observation row.
    row: Vec<f64>,
    /// Why each retired channel was retired (`None` while healthy or when
    /// merely dropped by dimension selection).
    faults: Vec<Option<ChannelFault>>,
    t: u64,
}

impl MultivariateClass {
    /// Creates a multivariate segmenter over `n_channels` channels.
    ///
    /// # Panics
    /// Panics if `n_channels` is 0 or the selection keeps 0 channels.
    pub fn new(cfg: MultivariateConfig, n_channels: usize) -> Self {
        assert!(n_channels >= 1, "need at least one channel");
        if let ChannelSelection::TopVariance { k, .. } = cfg.selection {
            assert!(k >= 1, "selection must keep at least one channel");
        }
        let channels = (0..n_channels)
            .map(|i| Some(ClassSegmenter::new(cfg.channel_config(i))))
            .collect();
        Self {
            n_channels,
            channels,
            probe_sums: vec![(0.0, 0.0); n_channels],
            probe_seen: 0,
            selected: matches!(cfg.selection, ChannelSelection::All),
            fuser: VoteFuser::new(cfg.fusion),
            scratch: Vec::new(),
            guards: vec![ChannelGuardState::default(); n_channels],
            row: Vec::new(),
            faults: vec![None; n_channels],
            cfg,
            t: 0,
        }
    }

    /// Number of channels expected by [`MultivariateClass::step`].
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// Indices of the channels currently being segmented.
    pub fn active_channels(&self) -> Vec<usize> {
        self.channels
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_some().then_some(i))
            .collect()
    }

    /// Why each channel was retired, indexed by channel; `None` for
    /// channels still active (or merely dropped by dimension selection).
    pub fn channel_faults(&self) -> &[Option<ChannelFault>] {
        &self.faults
    }

    /// Retires `channel` from the fused stream: its segmenter is dropped,
    /// the fault recorded, and the fuser re-quorumed over the survivors
    /// ([`VoteFuser::retire_channel`]). Serving layers call this with
    /// [`ChannelFault::External`] when a channel's upstream is lost; the
    /// channel guard calls it on a tripped policy. No-op for a channel
    /// that is already inactive.
    pub fn quarantine_channel(&mut self, channel: usize, fault: ChannelFault) {
        assert!(channel < self.n_channels, "channel out of range");
        if self.channels[channel].take().is_some() {
            self.faults[channel] = Some(fault);
            let remaining = self.channels.iter().filter(|c| c.is_some()).count();
            self.fuser.retire_channel(channel, remaining);
        }
    }

    /// Applies the channel guard to the current row (already copied into
    /// `self.row`): heals isolated non-finite values in place and appends
    /// every channel the policy retires this step to `trips`.
    fn guard_row(&mut self, g: ChannelGuardConfig, trips: &mut Vec<(usize, ChannelFault)>) {
        for i in 0..self.n_channels {
            if self.channels[i].is_none() {
                continue;
            }
            let x = self.row[i];
            let st = &mut self.guards[i];
            if x.is_finite() {
                st.nan_run = 0;
                st.flat_run = if st.last_finite == Some(x) {
                    st.flat_run + 1
                } else {
                    1
                };
                st.last_finite = Some(x);
                if g.flatline > 0 && st.flat_run >= g.flatline {
                    trips.push((i, ChannelFault::Flatline { len: st.flat_run }));
                }
            } else {
                st.flat_run = 0;
                st.nan_run += 1;
                if g.nan_burst > 0 && st.nan_run >= g.nan_burst {
                    trips.push((i, ChannelFault::NanBurst { len: st.nan_run }));
                } else {
                    // Heal: substitute the channel's last finite value
                    // (zero before any finite value arrived).
                    self.row[i] = st.last_finite.unwrap_or(0.0);
                }
            }
        }
    }

    /// Feeds one observation vector (one value per channel); fused change
    /// points are appended to `cps`.
    ///
    /// # Panics
    /// Panics if `xs.len() != n_channels`.
    pub fn step(&mut self, xs: &[f64], cps: &mut Vec<u64>) {
        assert_eq!(xs.len(), self.n_channels, "channel count mismatch");
        let pos = self.t;
        self.t += 1;
        // Dimension selection probe.
        if !self.selected {
            if let ChannelSelection::TopVariance { k, probe } = self.cfg.selection {
                for (i, &x) in xs.iter().enumerate() {
                    self.probe_sums[i].0 += x;
                    self.probe_sums[i].1 += x * x;
                }
                self.probe_seen += 1;
                if self.probe_seen >= probe {
                    let n = self.probe_seen as f64;
                    let mut vars: Vec<(usize, f64)> = self
                        .probe_sums
                        .iter()
                        .enumerate()
                        .map(|(i, &(s, s2))| (i, (s2 / n - (s / n) * (s / n)).max(0.0)))
                        .collect();
                    vars.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                    let keep: Vec<usize> = vars.iter().take(k.max(1)).map(|&(i, _)| i).collect();
                    for (i, ch) in self.channels.iter_mut().enumerate() {
                        if !keep.contains(&i) {
                            *ch = None;
                        }
                    }
                    self.selected = true;
                }
            }
        }
        // Degraded-input policy: heal or retire channels before their
        // segmenters see the row.
        let guarded = if let Some(g) = self.cfg.channel_guard {
            self.row.clear();
            self.row.extend_from_slice(xs);
            let mut trips = Vec::new();
            self.guard_row(g, &mut trips);
            for (i, fault) in trips {
                self.quarantine_channel(i, fault);
            }
            true
        } else {
            false
        };
        // Per-channel segmentation and vote collection.
        let row = &self.row;
        for (i, ch) in self.channels.iter_mut().enumerate() {
            let Some(seg) = ch else { continue };
            self.scratch.clear();
            seg.step(if guarded { row[i] } else { xs[i] }, &mut self.scratch);
            for &cp in &self.scratch {
                self.fuser.vote(i, cp);
            }
        }
        if let Some(cp) = self.fuser.step(pos) {
            cps.push(cp);
        }
    }

    /// Signals end-of-stream to every channel, fusing remaining votes.
    pub fn finalize(&mut self, cps: &mut Vec<u64>) {
        for (i, ch) in self.channels.iter_mut().enumerate() {
            let Some(seg) = ch else { continue };
            self.scratch.clear();
            seg.finalize(&mut self.scratch);
            for &cp in &self.scratch {
                self.fuser.vote(i, cp);
            }
        }
        self.fuser.finish(cps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::WidthSelection;
    use crate::stats::SplitMix64;

    /// Channels 0 and 1 change regime at `cp`; channel 2 is pure noise.
    fn three_channel_stream(n: usize, cp: usize, seed: u64) -> Vec<[f64; 3]> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let f = if i < cp { 0.15 } else { 0.45 };
                [
                    (i as f64 * f).sin() + 0.05 * (rng.next_f64() - 0.5),
                    (i as f64 * f * 1.1).cos() + 0.05 * (rng.next_f64() - 0.5),
                    rng.next_f64() - 0.5,
                ]
            })
            .collect()
    }

    fn base_cfg() -> ClassConfig {
        let mut c = ClassConfig::with_window_size(1500);
        c.width = WidthSelection::Fixed(30);
        c.log10_alpha = -12.0;
        c
    }

    #[test]
    fn quorum_fusion_detects_shared_change() {
        let xs = three_channel_stream(5000, 2500, 1);
        let cfg = MultivariateConfig::new(base_cfg(), 3);
        let mut mv = MultivariateClass::new(cfg, 3);
        let mut cps = Vec::new();
        for row in &xs {
            mv.step(row, &mut cps);
        }
        mv.finalize(&mut cps);
        assert!(
            cps.iter().any(|&c| (c as i64 - 2500).unsigned_abs() < 500),
            "cps = {cps:?}"
        );
    }

    #[test]
    fn noise_channel_alone_cannot_fire_quorum() {
        // All-noise streams: quorum 2 of 3 must stay quiet.
        let mut rng = SplitMix64::new(2);
        let cfg = MultivariateConfig::new(base_cfg(), 3);
        let mut mv = MultivariateClass::new(cfg, 3);
        let mut cps = Vec::new();
        for _ in 0..5000 {
            let row = [
                rng.next_f64() - 0.5,
                rng.next_f64() - 0.5,
                rng.next_f64() - 0.5,
            ];
            mv.step(&row, &mut cps);
        }
        assert!(cps.is_empty(), "false positives: {cps:?}");
    }

    #[test]
    fn top_variance_selection_drops_flat_channel() {
        let mut cfg = MultivariateConfig::new(base_cfg(), 3);
        cfg.selection = ChannelSelection::TopVariance { k: 2, probe: 200 };
        let mut mv = MultivariateClass::new(cfg, 3);
        let mut cps = Vec::new();
        let mut rng = SplitMix64::new(3);
        for i in 0..400 {
            let row = [
                (i as f64 * 0.2).sin(),
                0.0, // dead sensor
                rng.next_f64() - 0.5,
            ];
            mv.step(&row, &mut cps);
        }
        let active = mv.active_channels();
        assert_eq!(active.len(), 2);
        assert!(!active.contains(&1), "dead channel kept: {active:?}");
    }

    #[test]
    fn any_fusion_is_more_eager_than_quorum() {
        // Only channel 0 carries the change.
        let mut rng = SplitMix64::new(4);
        let xs: Vec<[f64; 2]> = (0..5000)
            .map(|i| {
                let f = if i < 2500 { 0.15 } else { 0.45 };
                [
                    (i as f64 * f).sin() + 0.05 * (rng.next_f64() - 0.5),
                    (i as f64 * 0.2).sin() + 0.05 * (rng.next_f64() - 0.5),
                ]
            })
            .collect();
        let run = |fusion: FusionStrategy| -> Vec<u64> {
            let mut cfg = MultivariateConfig::new(base_cfg(), 2);
            cfg.fusion = fusion;
            let mut mv = MultivariateClass::new(cfg, 2);
            let mut cps = Vec::new();
            for row in &xs {
                mv.step(row, &mut cps);
            }
            mv.finalize(&mut cps);
            cps
        };
        let any = run(FusionStrategy::Any { tolerance: 200 });
        let quorum = run(FusionStrategy::Quorum {
            min_votes: 2,
            tolerance: 200,
        });
        assert!(
            any.iter().any(|&c| (c as i64 - 2500).unsigned_abs() < 500),
            "any missed: {any:?}"
        );
        assert!(any.len() >= quorum.len());
    }

    #[test]
    #[should_panic]
    fn wrong_channel_count_panics() {
        let cfg = MultivariateConfig::new(base_cfg(), 2);
        let mut mv = MultivariateClass::new(cfg, 2);
        let mut cps = Vec::new();
        mv.step(&[1.0], &mut cps);
    }

    #[test]
    fn fused_output_is_reproducible_from_per_channel_votes() {
        // Stand-alone per-channel segmenters (built from `channel_config`)
        // plus a fresh `VoteFuser` replaying their timed votes must
        // reproduce the multivariate segmenter's output exactly.
        let xs = three_channel_stream(5000, 2500, 9);
        let cfg = MultivariateConfig::new(base_cfg(), 3);

        let mut mv = MultivariateClass::new(cfg.clone(), 3);
        let mut fused = Vec::new();
        for row in &xs {
            mv.step(row, &mut fused);
        }
        mv.finalize(&mut fused);

        // Record (emit time, cp) votes from independent channel runs.
        let mut segs: Vec<ClassSegmenter> = (0..3)
            .map(|i| ClassSegmenter::new(cfg.channel_config(i)))
            .collect();
        let mut fuser = VoteFuser::new(cfg.fusion);
        let mut replayed = Vec::new();
        let mut scratch = Vec::new();
        for (t, row) in xs.iter().enumerate() {
            for (i, seg) in segs.iter_mut().enumerate() {
                scratch.clear();
                seg.step(row[i], &mut scratch);
                for &cp in &scratch {
                    fuser.vote(i, cp);
                }
            }
            if let Some(cp) = fuser.step(t as u64) {
                replayed.push(cp);
            }
        }
        for (i, seg) in segs.iter_mut().enumerate() {
            scratch.clear();
            seg.finalize(&mut scratch);
            for &cp in &scratch {
                fuser.vote(i, cp);
            }
        }
        fuser.finish(&mut replayed);
        assert_eq!(fused, replayed);
        assert!(!fused.is_empty(), "no change point fused at all");
    }

    #[test]
    fn nan_burst_retires_a_channel_and_the_fused_stream_survives() {
        // Channel 2's sensor dies at t=1000 (NaNs forever after); the
        // fused stream must retire it and still localise the shared
        // change at 2500 from the two survivors.
        let mut xs = three_channel_stream(5000, 2500, 11);
        for row in xs.iter_mut().skip(1000) {
            row[2] = f64::NAN;
        }
        let mut cfg = MultivariateConfig::new(base_cfg(), 3);
        cfg.channel_guard = Some(ChannelGuardConfig::new(5, 0));
        let mut mv = MultivariateClass::new(cfg, 3);
        let mut cps = Vec::new();
        for row in &xs {
            mv.step(row, &mut cps);
        }
        mv.finalize(&mut cps);
        assert_eq!(
            mv.channel_faults()[2],
            Some(ChannelFault::NanBurst { len: 5 }),
            "the dead sensor is retired with its cause recorded"
        );
        assert_eq!(mv.active_channels(), vec![0, 1]);
        assert!(
            cps.iter().any(|&c| (c as i64 - 2500).unsigned_abs() < 500),
            "the degraded stream missed the change: {cps:?}"
        );
    }

    #[test]
    fn flatline_retires_a_channel() {
        let mut xs = three_channel_stream(3000, 1500, 12);
        for row in xs.iter_mut().skip(800) {
            row[2] = 0.25; // sensor sticks
        }
        let mut cfg = MultivariateConfig::new(base_cfg(), 3);
        cfg.channel_guard = Some(ChannelGuardConfig::new(0, 50));
        let mut mv = MultivariateClass::new(cfg, 3);
        let mut cps = Vec::new();
        for row in &xs {
            mv.step(row, &mut cps);
        }
        assert_eq!(
            mv.channel_faults()[2],
            Some(ChannelFault::Flatline { len: 50 })
        );
        assert_eq!(mv.active_channels(), vec![0, 1]);
    }

    #[test]
    fn short_nan_runs_heal_without_retiring_the_channel() {
        let mut xs = three_channel_stream(3000, 1500, 13);
        // Isolated dropouts well under the 5-burst threshold.
        for t in (100..2900).step_by(97) {
            xs[t][2] = f64::NAN;
        }
        let mut cfg = MultivariateConfig::new(base_cfg(), 3);
        cfg.channel_guard = Some(ChannelGuardConfig::new(5, 0));
        let mut mv = MultivariateClass::new(cfg, 3);
        let mut cps = Vec::new();
        for row in &xs {
            mv.step(row, &mut cps);
        }
        assert_eq!(mv.channel_faults(), &[None, None, None]);
        assert_eq!(mv.active_channels(), vec![0, 1, 2]);
    }

    #[test]
    fn external_retirement_requorums_so_survivors_can_still_emit() {
        // Only channel 0 carries the change; 1 and 2 are noise. Under the
        // default 2-of-3 quorum the change is invisible — but when the
        // serving layer retires the two noise channels, the re-quorum
        // (majority of the survivors = 1) lets the last sensor speak.
        let mut rng = SplitMix64::new(14);
        let xs: Vec<[f64; 3]> = (0..5000)
            .map(|i| {
                let f = if i < 2500 { 0.15 } else { 0.45 };
                [
                    (i as f64 * f).sin() + 0.05 * (rng.next_f64() - 0.5),
                    rng.next_f64() - 0.5,
                    rng.next_f64() - 0.5,
                ]
            })
            .collect();
        let run = |retire: bool| -> Vec<u64> {
            let cfg = MultivariateConfig::new(base_cfg(), 3);
            let mut mv = MultivariateClass::new(cfg, 3);
            if retire {
                mv.quarantine_channel(1, ChannelFault::External);
                mv.quarantine_channel(2, ChannelFault::External);
            }
            let mut cps = Vec::new();
            for row in &xs {
                mv.step(row, &mut cps);
            }
            mv.finalize(&mut cps);
            cps
        };
        let degraded = run(true);
        assert!(
            degraded
                .iter()
                .any(|&c| (c as i64 - 2500).unsigned_abs() < 500),
            "re-quorumed survivor missed the change: {degraded:?}"
        );
        let full_quorum = run(false);
        assert!(
            !full_quorum
                .iter()
                .any(|&c| (c as i64 - 2500).unsigned_abs() < 500),
            "2-of-3 quorum should not fire on a single channel: {full_quorum:?}"
        );
    }

    #[test]
    fn quarantine_is_idempotent_and_keeps_the_ledger_of_faults() {
        let cfg = MultivariateConfig::new(base_cfg(), 3);
        let mut mv = MultivariateClass::new(cfg, 3);
        mv.quarantine_channel(1, ChannelFault::External);
        mv.quarantine_channel(1, ChannelFault::NanBurst { len: 9 });
        assert_eq!(
            mv.channel_faults()[1],
            Some(ChannelFault::External),
            "the first cause wins; retiring a retired channel is a no-op"
        );
        assert_eq!(mv.active_channels(), vec![0, 2]);
    }

    #[test]
    fn deterministic_across_runs() {
        let xs = three_channel_stream(4000, 2000, 5);
        let run = || {
            let cfg = MultivariateConfig::new(base_cfg(), 3);
            let mut mv = MultivariateClass::new(cfg, 3);
            let mut cps = Vec::new();
            for row in &xs {
                mv.step(row, &mut cps);
            }
            mv.finalize(&mut cps);
            cps
        };
        assert_eq!(run(), run());
    }
}
