//! Contiguous sliding buffers used by the streaming algorithms.
//!
//! The hot path of ClaSS reads *all* buffered elements on every update, so
//! the buffers trade a little memory (2x capacity) for a fully contiguous
//! slice view with amortized O(1) push. This mirrors the advice in the Rust
//! performance guide: keep hot data linear and allocation-free.

/// A fixed-capacity sliding window over `T` values with a contiguous view.
///
/// `push` appends to the logical end; once `capacity` elements are stored the
/// oldest element is evicted. Physically the buffer holds `2 * capacity`
/// slots and compacts with a single `copy_within` every `capacity` pushes,
/// which makes `push` amortized O(1) while `as_slice` stays contiguous.
#[derive(Debug, Clone)]
pub struct ShiftBuffer<T: Copy + Default> {
    data: Vec<T>,
    capacity: usize,
    start: usize,
    len: usize,
}

impl<T: Copy + Default> ShiftBuffer<T> {
    /// Creates an empty buffer that keeps at most `capacity` elements.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ShiftBuffer capacity must be positive");
        Self {
            data: vec![T::default(); capacity * 2],
            capacity,
            start: 0,
            len: 0,
        }
    }

    /// Appends `value`, evicting the oldest element if the buffer is full.
    ///
    /// Returns `true` if an element was evicted.
    #[inline]
    pub fn push(&mut self, value: T) -> bool {
        let evicted = if self.len == self.capacity {
            self.start += 1;
            self.len -= 1;
            true
        } else {
            false
        };
        if self.start + self.len == self.data.len() {
            // Compact: move the live region back to the front.
            self.data.copy_within(self.start..self.start + self.len, 0);
            self.start = 0;
        }
        self.data[self.start + self.len] = value;
        self.len += 1;
        evicted
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the buffer is at capacity (the next push evicts).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Maximum number of retained elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Contiguous view of the live elements, oldest first.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.start..self.start + self.len]
    }

    /// Mutable contiguous view of the live elements, oldest first.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data[self.start..self.start + self.len]
    }

    /// Element at logical index `i` (0 = oldest).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        self.data[self.start + i]
    }

    /// Removes all elements without releasing memory.
    pub fn clear(&mut self) {
        self.start = 0;
        self.len = 0;
    }
}

/// A sliding matrix with a fixed number of columns and row-wise eviction.
///
/// Rows are appended with [`ShiftMatrix::push_row`]; once `row_capacity` rows
/// are live, the oldest row is evicted. Storage is a flat, contiguous
/// row-major buffer, compacted lazily like [`ShiftBuffer`]. Used for the
/// k-NN index (`N`) and score (`C`) tables of the streaming k-NN, which are
/// scanned fully on every stream update.
#[derive(Debug, Clone)]
pub struct ShiftMatrix<T: Copy + Default> {
    data: Vec<T>,
    cols: usize,
    row_capacity: usize,
    start_row: usize,
    rows: usize,
}

impl<T: Copy + Default> ShiftMatrix<T> {
    /// Creates an empty matrix with `cols` columns keeping at most
    /// `row_capacity` rows.
    ///
    /// # Panics
    /// Panics if `cols == 0` or `row_capacity == 0`.
    pub fn new(row_capacity: usize, cols: usize) -> Self {
        assert!(cols > 0, "ShiftMatrix needs at least one column");
        assert!(
            row_capacity > 0,
            "ShiftMatrix row capacity must be positive"
        );
        Self {
            data: vec![T::default(); row_capacity * cols * 2],
            cols,
            row_capacity,
            start_row: 0,
            rows: 0,
        }
    }

    /// Appends a row (padded/truncated semantics are the caller's concern;
    /// `row` must have exactly `cols` elements). Evicts the oldest row when
    /// full. Returns `true` if a row was evicted.
    pub fn push_row(&mut self, row: &[T]) -> bool {
        debug_assert_eq!(row.len(), self.cols);
        let evicted = if self.rows == self.row_capacity {
            self.start_row += 1;
            self.rows -= 1;
            true
        } else {
            false
        };
        if (self.start_row + self.rows + 1) * self.cols > self.data.len() {
            let src = self.start_row * self.cols..(self.start_row + self.rows) * self.cols;
            self.data.copy_within(src, 0);
            self.start_row = 0;
        }
        let at = (self.start_row + self.rows) * self.cols;
        self.data[at..at + self.cols].copy_from_slice(row);
        self.rows += 1;
        evicted
    }

    /// Number of live rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` (0 = oldest) as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        let at = (self.start_row + r) * self.cols;
        &self.data[at..at + self.cols]
    }

    /// Mutable row `r` (0 = oldest).
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        let at = (self.start_row + r) * self.cols;
        &mut self.data[at..at + self.cols]
    }

    /// Contiguous view of all live rows, row-major, oldest row first.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.start_row * self.cols..(self.start_row + self.rows) * self.cols]
    }

    /// Removes all rows without releasing memory.
    pub fn clear(&mut self) {
        self.start_row = 0;
        self.rows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_buffer_basic_push_and_view() {
        let mut b = ShiftBuffer::new(3);
        assert!(b.is_empty());
        assert!(!b.push(1));
        assert!(!b.push(2));
        assert!(!b.push(3));
        assert!(b.is_full());
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert!(b.push(4));
        assert_eq!(b.as_slice(), &[2, 3, 4]);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(2), 4);
    }

    #[test]
    fn shift_buffer_stays_contiguous_over_many_wraps() {
        let mut b = ShiftBuffer::new(5);
        for i in 0..1000u64 {
            b.push(i);
            let s = b.as_slice();
            assert_eq!(s.len(), (i as usize + 1).min(5));
            // Oldest-first ordering check.
            for (j, &v) in s.iter().enumerate() {
                assert_eq!(v, i + 1 - s.len() as u64 + j as u64);
            }
        }
    }

    #[test]
    fn shift_buffer_capacity_one() {
        let mut b = ShiftBuffer::new(1);
        b.push(10);
        assert_eq!(b.as_slice(), &[10]);
        assert!(b.push(20));
        assert_eq!(b.as_slice(), &[20]);
    }

    #[test]
    fn shift_buffer_clear_resets() {
        let mut b = ShiftBuffer::new(4);
        for i in 0..10 {
            b.push(i);
        }
        b.clear();
        assert!(b.is_empty());
        b.push(42);
        assert_eq!(b.as_slice(), &[42]);
    }

    #[test]
    #[should_panic]
    fn shift_buffer_zero_capacity_panics() {
        let _ = ShiftBuffer::<f64>::new(0);
    }

    #[test]
    fn shift_matrix_push_evict_and_rows() {
        let mut m = ShiftMatrix::new(2, 3);
        m.push_row(&[1, 2, 3]);
        m.push_row(&[4, 5, 6]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[1, 2, 3]);
        assert_eq!(m.row(1), &[4, 5, 6]);
        assert!(m.push_row(&[7, 8, 9]));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), &[4, 5, 6]);
        assert_eq!(m.row(1), &[7, 8, 9]);
        assert_eq!(m.as_slice(), &[4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn shift_matrix_many_wraps_keep_order() {
        let mut m = ShiftMatrix::new(4, 2);
        for i in 0..500i64 {
            m.push_row(&[i, -i]);
            let rows = m.rows();
            for r in 0..rows {
                let expect = i - (rows as i64 - 1) + r as i64;
                assert_eq!(m.row(r), &[expect, -expect]);
            }
        }
    }

    #[test]
    fn shift_matrix_row_mut_updates_in_place() {
        let mut m = ShiftMatrix::new(3, 2);
        m.push_row(&[0.0, 0.0]);
        m.push_row(&[1.0, 1.0]);
        m.row_mut(0)[1] = 9.5;
        assert_eq!(m.row(0), &[0.0, 9.5]);
        assert_eq!(m.row(1), &[1.0, 1.0]);
    }
}
