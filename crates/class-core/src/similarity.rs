//! Subsequence (dis-)similarity measures for the streaming k-NN.
//!
//! The paper (§3.1) uses Pearson correlation by default and notes that the
//! streaming k-NN "can easily be adapted to (dis-)similarity functions that
//! can be expressed with dot products, such as (complexity-invariant)
//! Euclidean distance". All three measures below are computed in O(1) per
//! candidate pair from the same maintained state (dot product `q`, running
//! mean/std/sum-of-squares, and complexity estimate).

/// Similarity measure used to rank k-nearest neighbours.
///
/// Internally every measure is mapped to a *score* where **greater means
/// more similar**, so the k-NN search is always an arg-k-max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Similarity {
    /// Pearson correlation between the two z-normalised subsequences
    /// (paper default, Eq. 4).
    #[default]
    Pearson,
    /// Raw (non-normalised) Euclidean distance, expressed through dot
    /// products: `ed^2 = ||a||^2 + ||b||^2 - 2 a·b`.
    Euclidean,
    /// Complexity-invariant distance (Batista et al.):
    /// `CID(a, b) = ED(a, b) * max(CE(a), CE(b)) / min(CE(a), CE(b))`
    /// where `CE(x) = sqrt(sum_i (x_{i+1} - x_i)^2)`.
    Cid,
}

impl Similarity {
    /// Short lowercase identifier, used by benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            Similarity::Pearson => "pearson",
            Similarity::Euclidean => "euclidean",
            Similarity::Cid => "cid",
        }
    }
}

/// Guard against division by ~zero for flat subsequences.
pub(crate) const SIGMA_FLOOR: f64 = 1e-8;

/// Floor on the complexity estimate of the CID correction factor, guarding
/// the division for flat subsequences.
pub(crate) const CE_FLOOR: f64 = 1e-12;

/// Pearson correlation from a dot product and per-subsequence moments
/// (paper Eq. 4). Degenerate (flat) subsequences yield a correlation of 0,
/// and the result is clamped into `[-1, 1]` for numerical robustness.
#[inline]
pub(crate) fn pearson_from_dot(
    dot: f64,
    w: f64,
    mu_a: f64,
    sig_a: f64,
    mu_b: f64,
    sig_b: f64,
) -> f64 {
    if sig_a < SIGMA_FLOOR || sig_b < SIGMA_FLOOR {
        return 0.0;
    }
    let c = (dot - w * mu_a * mu_b) / (w * sig_a * sig_b);
    c.clamp(-1.0, 1.0)
}

/// Squared Euclidean distance from a dot product and per-subsequence sums of
/// squares. Clamped at zero to absorb floating-point cancellation; NaN is
/// preserved (a dirty window must propagate, not fabricate distance-0
/// neighbours — `f64::max` would swallow the NaN).
#[inline]
pub(crate) fn sq_euclidean_from_dot(dot: f64, ssq_a: f64, ssq_b: f64) -> f64 {
    let ed2 = ssq_a + ssq_b - 2.0 * dot;
    if ed2 < 0.0 {
        0.0
    } else {
        ed2
    }
}

/// Squared complexity-invariant distance. Works on squared quantities so no
/// square roots are needed in the hot loop (the ranking is unchanged because
/// `x -> x^2` is monotone on non-negative values).
#[inline]
pub(crate) fn sq_cid_from_dot(dot: f64, ssq_a: f64, ssq_b: f64, ce2_a: f64, ce2_b: f64) -> f64 {
    let ed2 = sq_euclidean_from_dot(dot, ssq_a, ssq_b);
    let (hi, lo) = if ce2_a >= ce2_b {
        (ce2_a, ce2_b)
    } else {
        (ce2_b, ce2_a)
    };
    let cf2 = hi / lo.max(CE_FLOOR);
    ed2 * cf2
}

/// Naive reference implementations, used by tests and benchmarks to validate
/// the streaming O(1)-per-pair computations.
pub mod naive {
    /// Pearson correlation of two equal-length slices (0 if either is flat).
    pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        let n = a.len() as f64;
        let mu_a = a.iter().sum::<f64>() / n;
        let mu_b = b.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            cov += (x - mu_a) * (y - mu_b);
            va += (x - mu_a) * (x - mu_a);
            vb += (y - mu_b) * (y - mu_b);
        }
        let denom = (va * vb).sqrt();
        if denom < 1e-12 {
            0.0
        } else {
            (cov / denom).clamp(-1.0, 1.0)
        }
    }

    /// Squared Euclidean distance of two equal-length slices.
    pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
    }

    /// Squared complexity estimate `CE(x)^2` of a slice.
    pub fn ce2(a: &[f64]) -> f64 {
        a.windows(2).map(|p| (p[1] - p[0]) * (p[1] - p[0])).sum()
    }

    /// Squared complexity-invariant distance of two equal-length slices.
    pub fn sq_cid(a: &[f64], b: &[f64]) -> f64 {
        let ed2 = sq_euclidean(a, b);
        let (ca, cb) = (ce2(a), ce2(b));
        let (hi, lo) = if ca >= cb { (ca, cb) } else { (cb, ca) };
        ed2 * hi / lo.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn moments(a: &[f64]) -> (f64, f64, f64) {
        let n = a.len() as f64;
        let mu = a.iter().sum::<f64>() / n;
        let ssq = a.iter().map(|x| x * x).sum::<f64>();
        let var = (ssq / n - mu * mu).max(0.0);
        (mu, var.sqrt(), ssq)
    }

    #[test]
    fn pearson_matches_naive() {
        let a = [1.0, 2.0, 4.5, -3.0, 0.5, 2.5];
        let b = [0.3, -1.0, 2.0, 5.0, 1.5, -0.5];
        let (mu_a, sig_a, _) = moments(&a);
        let (mu_b, sig_b, _) = moments(&b);
        let got = pearson_from_dot(dot(&a, &b), a.len() as f64, mu_a, sig_a, mu_b, sig_b);
        let want = naive::pearson(&a, &b);
        assert!((got - want).abs() < 1e-10, "{got} vs {want}");
    }

    #[test]
    fn pearson_flat_subsequence_is_zero() {
        let a = [3.0; 5];
        let b = [0.0, 1.0, 2.0, 3.0, 4.0];
        let (mu_a, sig_a, _) = moments(&a);
        let (mu_b, sig_b, _) = moments(&b);
        let got = pearson_from_dot(dot(&a, &b), 5.0, mu_a, sig_a, mu_b, sig_b);
        assert_eq!(got, 0.0);
    }

    #[test]
    fn pearson_self_correlation_is_one() {
        let a = [1.0, -2.0, 3.0, 0.0, 5.0];
        let (mu, sig, _) = moments(&a);
        let got = pearson_from_dot(dot(&a, &a), 5.0, mu, sig, mu, sig);
        assert!((got - 1.0).abs() < 1e-10);
    }

    #[test]
    fn euclidean_matches_naive() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 0.0, 3.5, -1.0];
        let (_, _, ssq_a) = moments(&a);
        let (_, _, ssq_b) = moments(&b);
        let got = sq_euclidean_from_dot(dot(&a, &b), ssq_a, ssq_b);
        assert!((got - naive::sq_euclidean(&a, &b)).abs() < 1e-10);
    }

    #[test]
    fn cid_matches_naive() {
        let a = [1.0, 2.0, 1.0, 2.0, 1.0];
        let b = [0.0, 4.0, -4.0, 4.0, 0.0];
        let (_, _, ssq_a) = moments(&a);
        let (_, _, ssq_b) = moments(&b);
        let got = sq_cid_from_dot(dot(&a, &b), ssq_a, ssq_b, naive::ce2(&a), naive::ce2(&b));
        assert!((got - naive::sq_cid(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn cid_penalises_complexity_mismatch() {
        // Same Euclidean distance, but one pair differs strongly in
        // complexity -> larger CID.
        let smooth = [0.0, 0.1, 0.2, 0.3, 0.4];
        let jagged = [0.0, 1.0, -1.0, 1.0, -1.0];
        let flatish = [0.1, 0.2, 0.3, 0.4, 0.5];
        let d_similar = naive::sq_cid(&smooth, &flatish);
        let d_mismatch = naive::sq_cid(&smooth, &jagged);
        assert!(d_mismatch > d_similar);
    }
}
