//! Property-based tests of the core data structures and the central
//! exactness invariants: the streaming computations must equal their naive
//! batch counterparts on arbitrary inputs.
//!
//! Debug builds don't vectorize the kernels, so the full case counts cost
//! ~90 s under `cargo test -q`; [`cases`] scales them down 4x under
//! `cfg(debug_assertions)` while release/CI coverage stays at the full
//! counts.

use class_core::buffer::{ShiftBuffer, ShiftMatrix};
use class_core::crossval::{naive_split_score, CrossVal, ScoreFn};
use class_core::fft::{fft_inplace, ifft};
use class_core::knn::{KnnConfig, StreamingKnn};
use class_core::similarity::naive;
use class_core::stats::{ln_p_ranksum_binary, BinaryGroups};
use class_core::wss::{select_width, WidthBounds, WssMethod};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Scales a release-profile case count down for unoptimized builds.
const fn cases(release: u32) -> u32 {
    if cfg!(debug_assertions) {
        release.div_ceil(4)
    } else {
        release
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    #[test]
    fn shift_buffer_behaves_like_vecdeque(
        cap in 1usize..20,
        ops in prop::collection::vec(-1000i64..1000, 0..400),
    ) {
        let mut buf = ShiftBuffer::new(cap);
        let mut model: VecDeque<i64> = VecDeque::new();
        for v in ops {
            buf.push(v);
            model.push_back(v);
            if model.len() > cap {
                model.pop_front();
            }
            prop_assert_eq!(buf.len(), model.len());
            let view: Vec<i64> = buf.as_slice().to_vec();
            let want: Vec<i64> = model.iter().copied().collect();
            prop_assert_eq!(view, want);
        }
    }

    #[test]
    fn shift_matrix_behaves_like_vecdeque_of_rows(
        cap in 1usize..10,
        cols in 1usize..5,
        rows in prop::collection::vec(prop::collection::vec(-100i64..100, 1..5), 0..120),
    ) {
        let mut m = ShiftMatrix::new(cap, cols);
        let mut model: VecDeque<Vec<i64>> = VecDeque::new();
        for mut row in rows {
            row.resize(cols, 0);
            m.push_row(&row);
            model.push_back(row);
            if model.len() > cap {
                model.pop_front();
            }
            prop_assert_eq!(m.rows(), model.len());
            for (r, want) in model.iter().enumerate() {
                prop_assert_eq!(m.row(r), &want[..]);
            }
        }
    }

    #[test]
    fn fft_roundtrip_recovers_signal(
        log_n in 2u32..9,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log_n;
        let mut rng = class_core::SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0 - 5.0).collect();
        let mut buf = vec![0.0; 2 * n];
        for (i, &v) in x.iter().enumerate() {
            buf[2 * i] = v;
        }
        fft_inplace(&mut buf, false);
        ifft(&mut buf);
        for (i, &v) in x.iter().enumerate() {
            prop_assert!((buf[2 * i] - v).abs() < 1e-8);
            prop_assert!(buf[2 * i + 1].abs() < 1e-8);
        }
    }

    #[test]
    fn ranksum_ln_p_is_nonpositive_and_symmetric(
        n1 in 1u64..2000,
        n2 in 1u64..2000,
        f1 in 0.0f64..=1.0,
        f2 in 0.0f64..=1.0,
    ) {
        let g = BinaryGroups {
            n_left: n1,
            ones_left: (n1 as f64 * f1) as u64,
            n_right: n2,
            ones_right: (n2 as f64 * f2) as u64,
        };
        let flipped = BinaryGroups {
            n_left: g.n_right,
            ones_left: g.ones_right,
            n_right: g.n_left,
            ones_right: g.ones_left,
        };
        let lp = ln_p_ranksum_binary(g);
        prop_assert!(lp <= 0.0, "ln p = {lp}");
        prop_assert!(lp.is_finite());
        prop_assert!((lp - ln_p_ranksum_binary(flipped)).abs() < 1e-9);
    }

    #[test]
    fn wss_result_is_always_within_bounds(
        seed in any::<u64>(),
        n in 64usize..1200,
        min_w in 4usize..12,
    ) {
        let mut rng = class_core::SplitMix64::new(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
        let bounds = WidthBounds { min: min_w, max: (n / 3).max(min_w + 1) };
        for m in WssMethod::all() {
            let w = select_width(m, &x, bounds);
            prop_assert!(w >= bounds.min && w <= bounds.max, "{:?}: {w}", m);
        }
    }
}

proptest! {
    // The exactness invariants run fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    #[test]
    fn streaming_scores_equal_naive_pearson(
        seed in any::<u64>(),
        d in 60usize..160,
        w in 4usize..12,
        extra in 0usize..120,
    ) {
        let n = d + extra;
        let mut rng = class_core::SplitMix64::new(seed);
        let series: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, 3));
        for (t, &x) in series.iter().enumerate() {
            if !knn.update(x) {
                continue;
            }
            // Check a handful of slots per step to bound the test cost.
            let newest = knn.newest_sid().unwrap() as usize;
            let sb = &series[newest..newest + w];
            let qs = knn.qstart();
            let m = knn.max_subsequences();
            for slot in [qs, qs + (m - qs) / 2, m - 1] {
                let sid = knn.sid_of_slot(slot) as usize;
                let want = naive::pearson(&series[sid..sid + w], sb);
                let got = knn.latest_scores()[slot];
                prop_assert!((got - want).abs() < 1e-7, "t={t} slot={slot}");
            }
        }
    }

    #[test]
    fn incremental_crossval_equals_naive(
        seed in any::<u64>(),
        d in 60usize..140,
        w in 4usize..10,
        extra in 0usize..100,
        offset_frac in 0.0f64..0.5,
    ) {
        let n = d + extra;
        let mut rng = class_core::SplitMix64::new(seed);
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, 3));
        for _ in 0..n {
            knn.update(rng.next_f64() * 2.0 - 1.0);
        }
        let qs = knn.qstart();
        let m = knn.max_subsequences();
        if m - qs < 4 {
            return Ok(());
        }
        let start = qs + ((m - qs) as f64 * offset_frac) as usize;
        let mut cv = CrossVal::new(ScoreFn::MacroF1);
        let nn = cv.compute(&knn, start);
        for p in 1..nn {
            let want = naive_split_score(&knn, start, p, ScoreFn::MacroF1);
            prop_assert!((cv.profile()[p] - want).abs() < 1e-12, "p = {p}");
        }
    }

    #[test]
    fn warm_crossval_equals_cold_under_arbitrary_interleavings(
        seed in any::<u64>(),
        d in 50usize..120,
        w in 4usize..9,
        k in 1usize..5,
        use_ba in any::<bool>(),
        script in prop::collection::vec((1usize..40, 0u8..8, 0usize..30), 1..12),
    ) {
        // A long-lived warm engine driven through arbitrary interleavings
        // of stream updates (including NaN stretches that shorten and then
        // heal neighbour lists), jump-style evaluation gaps, and range
        // start advances must stay bit-identical to a cold rebuild at
        // every evaluation point.
        let sf = if use_ba { ScoreFn::BalancedAccuracy } else { ScoreFn::MacroF1 };
        let mut rng = class_core::SplitMix64::new(seed);
        let mut knn = StreamingKnn::new(KnnConfig::new(d, w, k));
        let mut warm = CrossVal::new(sf);
        let mut extra = 0usize;
        for (steps, tag, adv) in script {
            for i in 0..steps {
                let x = if tag == 0 && i % 3 == 0 {
                    f64::NAN
                } else {
                    rng.next_f64() * 2.0 - 1.0
                };
                knn.update(x);
            }
            if knn.n_subsequences() == 0 {
                continue;
            }
            extra = (extra + adv).min(knn.n_subsequences() - 1);
            let start = knn.qstart() + extra;
            let nn = warm.compute(&knn, start);
            let mut cold = CrossVal::new(sf);
            prop_assert_eq!(cold.compute(&knn, start), nn);
            for p in 0..nn {
                prop_assert_eq!(warm.profile()[p].to_bits(), cold.profile()[p].to_bits());
            }
            for p in 1..nn {
                prop_assert_eq!(warm.groups_at(p), cold.groups_at(p));
            }
        }
    }

    #[test]
    fn knn_neighbors_respect_exclusion_and_sorting(
        seed in any::<u64>(),
        d in 60usize..160,
        w in 4usize..12,
        k in 1usize..5,
    ) {
        let mut rng = class_core::SplitMix64::new(seed);
        let cfg = KnnConfig::new(d, w, k);
        let excl = cfg.exclusion_radius() as i64;
        let mut knn = StreamingKnn::new(cfg);
        for _ in 0..2 * d {
            knn.update(rng.next_f64() * 2.0 - 1.0);
        }
        for slot in knn.qstart()..knn.max_subsequences() {
            let sid = knn.sid_of_slot(slot);
            let (sids, scores) = knn.neighbors(slot);
            for pair in scores.windows(2) {
                prop_assert!(pair[0] >= pair[1]);
            }
            for &nsid in sids {
                prop_assert!((nsid - sid).abs() >= excl);
            }
        }
    }
}

/// Long-stream numerical stability: the STOMP-style dot-product recursion
/// accumulates floating-point error over hundreds of thousands of updates;
/// the correlations must stay within 1e-6 of an exact recomputation even
/// for signals with large magnitudes.
#[test]
fn q_recursion_is_stable_over_long_streams() {
    let d = 512;
    let w = 24;
    // The full 60k-update stream runs in release; the scaled debug stream
    // still spans dozens of complete window turnovers (d = 512).
    let n = if cfg!(debug_assertions) {
        15_000
    } else {
        60_000
    };
    let mut rng = class_core::SplitMix64::new(99);
    let mut knn = StreamingKnn::new(KnnConfig::new(d, w, 3));
    let mut series = Vec::with_capacity(n);
    for _ in 0..n {
        // Large-amplitude signal with drift to stress cancellation.
        let x = 500.0 + 100.0 * (series.len() as f64 * 0.01).sin() + 50.0 * (rng.next_f64() - 0.5);
        series.push(x);
        knn.update(x);
    }
    let newest = knn.newest_sid().unwrap() as usize;
    let sb = &series[newest..newest + w];
    let mut worst: f64 = 0.0;
    for slot in knn.qstart()..knn.max_subsequences() {
        let sid = knn.sid_of_slot(slot) as usize;
        let want = naive::pearson(&series[sid..sid + w], sb);
        let got = knn.latest_scores()[slot];
        worst = worst.max((got - want).abs());
    }
    assert!(
        worst < 1e-6,
        "worst correlation drift after {n} updates: {worst:e}"
    );
}
