//! Differential tests of the SIMD layer: every backend (autovec, and AVX2
//! where the CPU supports it) must agree with the scalar reference within
//! 1e-12 (relative, to absorb reassociated accumulation in the reductions)
//! on random, constant, and NaN-containing inputs, across all remainder
//! lengths (`n % 4 != 0` included). The element-wise Q-step kernels must
//! also agree on *which* lanes are NaN — NaN semantics are part of the
//! kernel contract (see `class_core::simd`).

use class_core::simd::{self, autovec, scalar, QStepIo};
use class_core::SplitMix64;
use proptest::prelude::*;

const TOL: f64 = 1e-12;

/// Equality up to `TOL` (relative), treating NaN == NaN.
fn close(a: f64, b: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    (a - b).abs() <= TOL * (1.0 + a.abs().max(b.abs()))
}

fn assert_all_close(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len());
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(close(g, w), "{what}[{i}]: {g} vs {w}");
    }
}

/// Input generator: uniform values in [-3, 3] with optional NaN injection
/// and an optional constant (flat) prefix — the three regimes the kernels
/// must handle (`SIGMA_FLOOR` zeroing kicks in on flat subsequences).
fn make_input(n: usize, seed: u64, nan_at: Option<usize>, constant: bool) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    let mut v: Vec<f64> = if constant {
        vec![1.25; n]
    } else {
        (0..n).map(|_| rng.next_f64() * 6.0 - 3.0).collect()
    };
    if let Some(p) = nan_at {
        if n > 0 {
            let p = p % n;
            v[p] = f64::NAN;
        }
    }
    v
}

/// Runs one Q-step kernel variant on fresh copies of the shared inputs and
/// returns `(q_out, scores_out)`.
#[allow(clippy::too_many_arguments)]
fn run_qstep(
    which: &str,
    backend: &str,
    q0: &[f64],
    tail: &[f64],
    head: &[f64],
    moments: (&[f64], &[f64], &[f64]),
    newest: (f64, f64, f64, f64),
    shift: (f64, f64),
) -> (Vec<f64>, Vec<f64>) {
    let (mu, sig, aux) = moments;
    let (mu_n, sig_n, ssq_n, ce2_n) = newest;
    let (last, first) = shift;
    let mut q = q0.to_vec();
    let mut scores = vec![0.0; q0.len()];
    let io = QStepIo {
        q: &mut q,
        scores: &mut scores,
        tail,
        head,
        last,
        first,
    };
    let w = 8.0;
    match (which, backend) {
        ("pearson", "scalar") => scalar::qstep_pearson(io, mu, sig, w, mu_n, sig_n),
        ("pearson", "autovec") => autovec::qstep_pearson(io, mu, sig, w, mu_n, sig_n),
        ("euclidean", "scalar") => scalar::qstep_euclidean(io, sig, ssq_n),
        ("euclidean", "autovec") => autovec::qstep_euclidean(io, sig, ssq_n),
        ("cid", "scalar") => scalar::qstep_cid(io, sig, aux, ssq_n, ce2_n),
        ("cid", "autovec") => autovec::qstep_cid(io, sig, aux, ssq_n, ce2_n),
        #[cfg(target_arch = "x86_64")]
        ("pearson", "avx2") => simd::avx2::qstep_pearson(io, mu, sig, w, mu_n, sig_n),
        #[cfg(target_arch = "x86_64")]
        ("euclidean", "avx2") => simd::avx2::qstep_euclidean(io, sig, ssq_n),
        #[cfg(target_arch = "x86_64")]
        ("cid", "avx2") => simd::avx2::qstep_cid(io, sig, aux, ssq_n, ce2_n),
        other => panic!("unknown kernel/backend combination {other:?}"),
    }
    (q, scores)
}

fn qstep_backends() -> Vec<&'static str> {
    let mut b = vec!["autovec"];
    #[cfg(target_arch = "x86_64")]
    if simd::avx2::available() {
        b.push("avx2");
    }
    b
}

/// Shared harness: build inputs for all three Q-step kernels from a seed
/// and compare every backend against the scalar reference.
fn check_qstep_all(n: usize, seed: u64, nan_at: Option<usize>, constant: bool) {
    let q0 = make_input(n, seed, nan_at, false);
    let tail = make_input(n, seed ^ 1, nan_at.map(|p| p / 2), constant);
    let head = make_input(n, seed ^ 2, None, constant);
    let mu = make_input(n, seed ^ 3, None, false);
    // `sig` doubles as ssq for euclidean/cid; mix small values under the
    // sigma floor so the flat-subsequence zeroing path is exercised.
    let mut sig = make_input(n, seed ^ 4, nan_at.map(|p| p / 3), false);
    for (i, s) in sig.iter_mut().enumerate() {
        *s = s.abs();
        if i % 7 == 3 {
            *s = 1e-9; // below SIGMA_FLOOR
        }
    }
    let aux: Vec<f64> = make_input(n, seed ^ 5, None, false)
        .iter()
        .map(|v| v.abs())
        .collect();
    let newest = (0.3, if seed % 3 == 0 { 1e-9 } else { 0.9 }, 4.2, 1.7);
    let shift = (1.12, -0.57);
    for which in ["pearson", "euclidean", "cid"] {
        let (q_ref, s_ref) = run_qstep(
            which,
            "scalar",
            &q0,
            &tail,
            &head,
            (&mu, &sig, &aux),
            newest,
            shift,
        );
        for backend in qstep_backends() {
            let (q_got, s_got) = run_qstep(
                which,
                backend,
                &q0,
                &tail,
                &head,
                (&mu, &sig, &aux),
                newest,
                shift,
            );
            assert_all_close(&q_got, &q_ref, &format!("{which}/{backend}/q(n={n})"));
            assert_all_close(&s_got, &s_ref, &format!("{which}/{backend}/scores(n={n})"));
        }
    }
}

fn check_reductions(a: &[f64], b: &[f64], label: &str) {
    let want_dot = scalar::dot(a, b);
    let (want_s, want_q) = scalar::sum_sumsq(a);
    let want_d = scalar::diff_sumsq(a);
    let mut variants: Vec<(&str, f64, f64, f64, f64)> = vec![{
        let (s, q) = autovec::sum_sumsq(a);
        ("autovec", autovec::dot(a, b), s, q, autovec::diff_sumsq(a))
    }];
    #[cfg(target_arch = "x86_64")]
    if simd::avx2::available() {
        let (s, q) = simd::avx2::sum_sumsq(a);
        variants.push((
            "avx2",
            simd::avx2::dot(a, b),
            s,
            q,
            simd::avx2::diff_sumsq(a),
        ));
    }
    for (name, got_dot, got_s, got_q, got_d) in variants {
        assert!(
            close(got_dot, want_dot),
            "{label}/{name}/dot: {got_dot} vs {want_dot}"
        );
        assert!(
            close(got_s, want_s),
            "{label}/{name}/sum: {got_s} vs {want_s}"
        );
        assert!(
            close(got_q, want_q),
            "{label}/{name}/sumsq: {got_q} vs {want_q}"
        );
        assert!(
            close(got_d, want_d),
            "{label}/{name}/diff_sumsq: {got_d} vs {want_d}"
        );
    }
}

#[test]
fn reductions_agree_across_remainder_lengths() {
    for n in [
        0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 63, 64, 65, 250,
    ] {
        let a = make_input(n, 100 + n as u64, None, false);
        let b = make_input(n, 200 + n as u64, None, false);
        check_reductions(&a, &b, &format!("random(n={n})"));
        let c = make_input(n, 0, None, true);
        check_reductions(&c, &c, &format!("constant(n={n})"));
        let d = make_input(n, 300 + n as u64, Some(n / 2), false);
        check_reductions(&d, &b, &format!("nan(n={n})"));
    }
}

#[test]
fn qstep_kernels_agree_across_remainder_lengths() {
    for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 127, 128, 129] {
        check_qstep_all(n, 500 + n as u64, None, false);
        check_qstep_all(n, 600 + n as u64, Some(n / 3), false);
        check_qstep_all(n, 700 + n as u64, None, true);
    }
}

#[test]
fn dispatch_layer_matches_scalar_reference() {
    // The top-level free functions must agree with `scalar` no matter which
    // backend the process resolved to.
    let a = make_input(101, 42, Some(50), false);
    let b = make_input(101, 43, None, false);
    assert!(close(simd::dot(&a, &b), scalar::dot(&a, &b)));
    let (s, q) = simd::sum_sumsq(&a);
    let (ws, wq) = scalar::sum_sumsq(&a);
    assert!(close(s, ws) && close(q, wq));
    assert!(close(simd::diff_sumsq(&a), scalar::diff_sumsq(&a)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn proptest_reductions_agree(
        n in 0usize..130,
        seed in any::<u64>(),
        nan_sel in 0usize..260, // >= 130 encodes "no NaN injected"
    ) {
        let nan = (nan_sel < 130).then_some(nan_sel);
        let a = make_input(n, seed, nan, false);
        let b = make_input(n, seed ^ 0xABCD, None, false);
        check_reductions(&a, &b, "proptest");
    }

    #[test]
    fn proptest_qstep_kernels_agree(
        n in 0usize..130,
        seed in any::<u64>(),
        nan_sel in 0usize..260, // >= 130 encodes "no NaN injected"
        constant in any::<bool>(),
    ) {
        check_qstep_all(n, seed, (nan_sel < 130).then_some(nan_sel), constant);
    }
}
