//! The engine's thread model: serving any number of streams costs
//! exactly `shards + 1` OS threads — the shard workers plus the caller's
//! ingest thread. The first iteration of this crate spawned one extra
//! source thread per active stream job; this test pins the fix by
//! counting the process's threads while 32 streams are live on 4 shards.
//!
//! Kept as the only test in this binary so no sibling test's threads
//! race the `/proc/self/status` readings.

#![cfg(target_os = "linux")]

use stream_engine::{feed_all, serve, EngineConfig, Operator, Record};

/// OS threads of this process, from /proc.
fn os_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

struct Echo;

impl Operator for Echo {
    type In = f64;
    type Out = f64;

    fn process(&mut self, rec: Record<f64>, out: &mut Vec<Record<f64>>) {
        out.push(rec);
    }
}

#[test]
fn engine_total_thread_count_is_shards_plus_one() {
    const SHARDS: usize = 4;
    const STREAMS: usize = 32;
    let before = os_threads();
    let (results, during) = serve(EngineConfig::new(SHARDS), |engine| {
        let handles: Vec<_> = (0..STREAMS).map(|_| engine.register(|| Echo)).collect();
        // All 32 streams are registered and live on this thread plus the
        // shard workers — the engine's total footprint is shards + 1
        // threads, with zero threads per stream.
        let during = os_threads();
        let data: Vec<Vec<f64>> = (0..STREAMS)
            .map(|k| (0..500).map(|i| (i * (k + 1)) as f64).collect())
            .collect();
        let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
        feed_all(handles, &slices).expect("feed completes");
        during
    });
    assert_eq!(
        during,
        before + SHARDS,
        "serving {STREAMS} streams must add exactly {SHARDS} worker threads \
         (the engine's total is shards + 1, counting this ingest thread)"
    );
    assert_eq!(results.len(), STREAMS);
    assert!(results.iter().all(|r| r.records_in == 500));
    // serve() joins its workers before returning: the pool is gone.
    assert_eq!(os_threads(), before);
}
