//! Wire-path tests for the network ingestion tier: frame codec
//! properties (proptest), a multi-producer differential test pinning
//! socket-fed output bit-identical to [`feed_all`] under the block
//! policy, runtime register → feed → detach ledger accounting, the
//! per-policy backpressure semantics over the wire, protocol-violation
//! handling, and the metrics endpoints' net families.

use class_core::{ClassConfig, ClassSegmenter, WidthSelection};
use proptest::prelude::*;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use stream_engine::{
    feed_all, serve, Backpressure, EngineConfig, ErrorCode, Frame, FrameError, IngestServer,
    MetricsServer, NetClient, NetError, Operator, Record, RegisterRequest, RingConfig,
    SegmenterOperator, StreamOptions, StreamState,
};

// ---------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------

const WINDOW: usize = 400;

fn segmenter() -> SegmenterOperator<ClassSegmenter> {
    let mut cfg = ClassConfig::with_window_size(WINDOW);
    cfg.width = WidthSelection::Fixed(15);
    cfg.warmup = Some(WINDOW);
    cfg.log10_alpha = -15.0;
    cfg.seed = 7;
    SegmenterOperator::new(ClassSegmenter::new(cfg))
}

/// Deterministic two-regime series: a noisy sine that more than
/// doubles its frequency halfway through, parameterised per stream so
/// no two streams are identical. The noise is a tiny splitmix-style
/// generator so runs are reproducible without any dependency.
fn stream_values(k: usize, n: usize) -> Vec<f64> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (k as u64);
    let mut noise = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64 - 0.5
    };
    let scale = 1.0 + 0.03 * k as f64;
    (0..n)
        .map(|i| {
            let f = if i < n / 2 { 0.18 } else { 0.42 } * scale;
            (i as f64 * f).sin() + 0.05 * noise()
        })
        .collect()
}

/// An operator slow enough that a tiny ring fills: backpressure tests
/// exercise the policy branch deterministically even on one CPU.
struct SlowOp {
    delay: Duration,
}

impl Operator for SlowOp {
    type In = f64;
    type Out = u64;

    fn process(&mut self, rec: Record<f64>, out: &mut Vec<Record<u64>>) {
        std::thread::sleep(self.delay);
        if rec.timestamp % 64 == 0 {
            out.push(Record::new(rec.timestamp, rec.timestamp));
        }
    }

    fn name(&self) -> &'static str {
        "slow"
    }
}

// ---------------------------------------------------------------------
// Frame codec properties
// ---------------------------------------------------------------------

/// Printable-ASCII strings (valid UTF-8 by construction).
fn ascii_string(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..=94, 0..max)
        .prop_map(|v| v.into_iter().map(|b| (b + 32) as char).collect())
}

/// Any frame variant. Values are arbitrary `u64` bit patterns pushed
/// through `f64::from_bits`, so NaNs and infinities are covered.
fn any_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..7,
        any::<u64>(),
        prop::collection::vec(any::<u64>(), 0..24),
        ascii_string(40),
    )
        .prop_map(|(tag, x, bits, s)| match tag {
            0 => Frame::Hello {
                version: x as u16,
                peer: s,
            },
            1 => Frame::Register {
                policy: (x % 3) as u8,
                capacity: x as u32,
                name: s,
            },
            2 => Frame::Records {
                stream: x as u32,
                values: bits.into_iter().map(f64::from_bits).collect(),
            },
            3 => Frame::Detach { stream: x as u32 },
            4 => Frame::Ack {
                stream: x as u32,
                received: x,
                drops: x.rotate_left(17),
            },
            5 => Frame::Throttle {
                stream: x as u32,
                queued: (x >> 32) as u32,
            },
            _ => Frame::Error {
                code: match x % 5 {
                    0 => ErrorCode::VersionMismatch,
                    1 => ErrorCode::UnknownStream,
                    2 => ErrorCode::Overflow,
                    3 => ErrorCode::Protocol,
                    _ => ErrorCode::Shutdown,
                },
                stream: if x % 2 == 0 { None } else { Some(x as u32) },
                message: s,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode → encode is byte-identical (stronger than frame
    /// equality: it holds through NaN payloads, where `PartialEq` on
    /// the decoded frame would not).
    #[test]
    fn codec_roundtrip_is_byte_identical(frame in any_frame()) {
        let bytes = frame.encode();
        let (back, used) = Frame::decode(&bytes).expect("valid frame decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Every strict prefix of a valid frame is `Truncated` with an
    /// exact byte offset and a `needed` that never exceeds the frame.
    #[test]
    fn codec_truncation_is_typed_at_every_cut(frame in any_frame()) {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(FrameError::Truncated { offset, needed }) => {
                    prop_assert_eq!(offset, cut);
                    prop_assert!(needed > cut);
                    prop_assert!(needed <= bytes.len());
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "cut {cut}/{}: expected Truncated, got {other:?}",
                        bytes.len()
                    )))
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder — including bytes
    /// patched to start with a valid tag, which reach the payload
    /// parsers.
    #[test]
    fn codec_never_panics_on_garbage(raw in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Frame::decode(&raw);
        let mut bytes = raw;
        if let Some(first) = bytes.first_mut() {
            *first = 1 + *first % 7; // a valid tag: exercise payload parsing
        }
        if bytes.len() >= 5 {
            // A length field that matches the available payload drives
            // the parse all the way into the payload readers.
            let len = (bytes.len() - 5) as u32;
            bytes[1..5].copy_from_slice(&len.to_le_bytes());
        }
        let _ = Frame::decode(&bytes);
    }
}

// ---------------------------------------------------------------------
// Differential test: socket feed ≡ in-process feed_all
// ---------------------------------------------------------------------

/// Under the block policy the wire path is lossless and stamps the
/// same timestamps as an in-process feed, so every stream's operator
/// output must be bit-identical between the two.
#[test]
fn socket_feed_matches_feed_all_bit_for_bit() {
    const STREAMS: usize = 6;
    const POINTS: usize = 1200;
    const PRODUCERS: usize = 3;
    let data: Vec<Vec<f64>> = (0..STREAMS).map(|k| stream_values(k, POINTS)).collect();
    let ring = RingConfig::new(64, Backpressure::Block);

    // Reference run: registered in-process, fed with feed_all.
    let (expected, ()) = serve(EngineConfig::new(2), |engine| {
        let handles = (0..STREAMS)
            .map(|k| {
                engine.register_with(
                    StreamOptions {
                        ring,
                        name: Some(format!("ref-{k}")),
                        ..StreamOptions::default()
                    },
                    segmenter,
                )
            })
            .collect::<Vec<_>>();
        let slices: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
        feed_all(handles, &slices).expect("block policy feeds losslessly");
    });

    // Wire run: the same streams arrive over TCP from three concurrent
    // producers. Registration order over the wire is nondeterministic,
    // so each producer reports its (wire id → data index) mapping.
    let (got, mapping) = serve(EngineConfig::new(2), |engine| {
        let server = IngestServer::bind("127.0.0.1:0", engine.registrar(), |_req| segmenter())
            .expect("binding a loopback ingest listener");
        let addr = server.addr();
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let chunk: Vec<(usize, Vec<f64>)> = (0..STREAMS)
                .filter(|k| k % PRODUCERS == p)
                .map(|k| (k, data[k].clone()))
                .collect();
            producers.push(std::thread::spawn(move || {
                let mut client =
                    NetClient::connect(addr, &format!("producer-{p}")).expect("connect");
                let mut map = Vec::new();
                for (k, values) in chunk {
                    let id = client
                        .register(&format!("wire-{k}"), Some(ring))
                        .expect("register over the wire");
                    let mut sent = 0u64;
                    for batch in values.chunks(128) {
                        let ack = client.send_records(id, batch).expect("records acked");
                        sent += batch.len() as u64;
                        assert_eq!(ack.stream, id);
                        assert_eq!(ack.received, sent, "block policy acks are lossless");
                        assert_eq!(ack.drops, 0, "block policy never drops");
                    }
                    let ack = client.detach(id).expect("detach acked");
                    assert_eq!(ack.received, values.len() as u64);
                    map.push((id as usize, k));
                }
                map
            }));
        }
        let mut map = Vec::new();
        for t in producers {
            map.extend(t.join().expect("producer threads complete"));
        }
        drop(server); // releases the registrar before the body returns
        map
    });

    assert_eq!(expected.len(), STREAMS);
    assert_eq!(got.len(), STREAMS);
    assert_eq!(mapping.len(), STREAMS);
    assert!(
        expected.iter().any(|r| !r.output.is_empty()),
        "fixture must exercise real operator output, found none"
    );
    let by_id: HashMap<usize, _> = got.iter().map(|r| (r.stream, r)).collect();
    for (wire_id, k) in mapping {
        let w = by_id[&wire_id];
        let e = &expected[k];
        assert_eq!(e.stream, k, "reference results sort by registration order");
        assert_eq!(w.records_in, POINTS as u64);
        assert_eq!(w.records_in, e.records_in);
        assert_eq!(w.drops, 0);
        assert_eq!(w.pushed, e.pushed);
        assert_eq!(
            w.output, e.output,
            "stream {k}: socket-fed output diverged from feed_all"
        );
    }
}

// ---------------------------------------------------------------------
// Runtime register / detach ledger
// ---------------------------------------------------------------------

/// A wire stream registers on a live engine, feeds, and detaches; the
/// resident stream keeps serving afterwards and both ledgers are exact.
#[test]
fn runtime_register_feed_detach_keeps_engine_serving() {
    const WIRE_POINTS: usize = 500;
    const RESIDENT_POINTS: usize = 300;
    let (results, (wire_id, detach_ack)) = serve(EngineConfig::new(2), |engine| {
        let mut resident = engine.register(segmenter);
        let server = IngestServer::bind("127.0.0.1:0", engine.registrar(), |_req| segmenter())
            .expect("binding a loopback ingest listener");
        let addr = server.addr();
        let (wire_id, ack) = std::thread::spawn(move || {
            let mut client = NetClient::connect(addr, "ledger-producer").expect("connect");
            let id = client
                .register(
                    "wire-ledger",
                    Some(RingConfig::new(32, Backpressure::Block)),
                )
                .expect("register");
            for batch in stream_values(0, WIRE_POINTS).chunks(100) {
                client.send_records(id, batch).expect("records acked");
            }
            (id, client.detach(id).expect("detach acked"))
        })
        .join()
        .expect("producer thread");

        // The wire stream is fully retired; the engine still serves.
        let values = stream_values(1, RESIDENT_POINTS);
        let mut off = 0;
        while off < values.len() {
            match resident.try_feed(&values[off..]) {
                Ok(0) => std::thread::yield_now(),
                Ok(n) => off += n,
                Err(e) => panic!("resident stream must keep accepting: {e}"),
            }
        }
        drop(resident);
        drop(server);
        (wire_id as usize, ack)
    });

    assert_eq!(detach_ack.received, WIRE_POINTS as u64);
    assert_eq!(detach_ack.drops, 0);
    assert_eq!(results.len(), 2);
    let wire = results
        .iter()
        .find(|r| r.stream == wire_id)
        .expect("wire stream result present");
    assert_eq!(wire.records_in, WIRE_POINTS as u64);
    assert_eq!(wire.pushed, WIRE_POINTS as u64);
    assert_eq!(wire.drops, 0);
    assert_eq!(wire.quarantined_after, 0);
    assert_eq!(wire.state, StreamState::Done);
    let resident = results
        .iter()
        .find(|r| r.stream != wire_id)
        .expect("resident stream result present");
    assert_eq!(resident.records_in, RESIDENT_POINTS as u64);
    assert_eq!(resident.state, StreamState::Done);
}

// ---------------------------------------------------------------------
// Per-policy wire semantics
// ---------------------------------------------------------------------

/// drop-oldest: everything is accepted immediately; cumulative
/// evictions ride on every ACK and reconcile with the final ledger.
#[test]
fn drop_oldest_reports_eviction_counts_on_acks() {
    const POINTS: usize = 100;
    let (results, (ack, det)) = serve(EngineConfig::new(1), |engine| {
        let server = IngestServer::bind("127.0.0.1:0", engine.registrar(), |_req| SlowOp {
            delay: Duration::from_millis(2),
        })
        .expect("binding a loopback ingest listener");
        let addr = server.addr();
        let out = std::thread::spawn(move || {
            let mut client = NetClient::connect(addr, "lossy-producer").expect("connect");
            let id = client
                .register("lossy", Some(RingConfig::new(4, Backpressure::DropOldest)))
                .expect("register");
            let values: Vec<f64> = (0..POINTS).map(|i| i as f64).collect();
            let ack = client.send_records(id, &values).expect("records acked");
            let det = client.detach(id).expect("detach acked");
            (ack, det)
        })
        .join()
        .expect("producer thread");
        drop(server);
        out
    });

    assert_eq!(
        ack.received, POINTS as u64,
        "drop-oldest accepts everything"
    );
    assert!(
        ack.drops > 0,
        "a slow consumer behind a cap-4 ring must evict"
    );
    assert!(det.drops >= ack.drops, "drop counts are cumulative");
    let r = &results[0];
    assert_eq!(r.pushed, POINTS as u64);
    assert_eq!(
        r.drops, det.drops,
        "the detach ack carries the final drop count"
    );
    assert_eq!(
        r.records_in + r.drops + r.quarantined_after,
        r.pushed,
        "exact ledger under concurrent eviction"
    );
}

/// error policy: an overflowing RECORDS frame gets a typed ERROR and
/// the connection is closed.
#[test]
fn error_policy_surfaces_typed_overflow_and_closes() {
    let (results, (err, closed)) = serve(EngineConfig::new(1), |engine| {
        let server = IngestServer::bind("127.0.0.1:0", engine.registrar(), |_req| SlowOp {
            delay: Duration::from_millis(5),
        })
        .expect("binding a loopback ingest listener");
        let addr = server.addr();
        let out = std::thread::spawn(move || {
            let mut client = NetClient::connect(addr, "bursty-producer").expect("connect");
            let id = client
                .register("fragile", Some(RingConfig::new(2, Backpressure::Error)))
                .expect("register");
            let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
            let err = client
                .send_records(id, &values)
                .expect_err("a 50-record burst must overflow a cap-2 error ring");
            let closed = client.send_records(id, &[1.0]).is_err();
            (err, closed)
        })
        .join()
        .expect("producer thread");
        drop(server);
        out
    });

    match err {
        NetError::Remote {
            code: ErrorCode::Overflow,
            stream,
            ..
        } => assert!(stream.is_some(), "overflow errors name the stream"),
        other => panic!("expected a remote overflow error, got {other:?}"),
    }
    assert!(closed, "the server closes the connection after an ERROR");
    // The stream the server force-closed still drained and accounted.
    let r = &results[0];
    assert_eq!(r.records_in + r.drops + r.quarantined_after, r.pushed);
}

/// block policy: the frame stalls, one THROTTLE per stalled frame is
/// surfaced, and the ack is lossless.
#[test]
fn block_policy_throttles_and_stays_lossless() {
    const POINTS: usize = 40;
    let (results, (ack, throttles)) = serve(EngineConfig::new(1), |engine| {
        let server = IngestServer::bind("127.0.0.1:0", engine.registrar(), |_req| SlowOp {
            delay: Duration::from_millis(2),
        })
        .expect("binding a loopback ingest listener");
        let addr = server.addr();
        let out = std::thread::spawn(move || {
            let mut client = NetClient::connect(addr, "patient-producer").expect("connect");
            let id = client
                .register("steady", Some(RingConfig::new(2, Backpressure::Block)))
                .expect("register");
            let values: Vec<f64> = (0..POINTS).map(|i| (i as f64).cos()).collect();
            let ack = client.send_records(id, &values).expect("records acked");
            client.detach(id).expect("detach acked");
            (ack, client.throttle_events())
        })
        .join()
        .expect("producer thread");
        drop(server);
        out
    });

    assert_eq!(ack.received, POINTS as u64, "block policy is lossless");
    assert_eq!(ack.drops, 0);
    assert!(
        throttles >= 1,
        "a cap-2 ring behind a 2 ms/record operator must raise THROTTLE"
    );
    assert_eq!(results[0].records_in, POINTS as u64);
    assert_eq!(results[0].drops, 0);
}

// ---------------------------------------------------------------------
// Protocol violations
// ---------------------------------------------------------------------

/// Connects raw, writes `frames`, and returns every frame the server
/// sends back before closing.
fn raw_exchange(addr: std::net::SocketAddr, frames: &[Frame]) -> Vec<Frame> {
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for f in frames {
        sock.write_all(&f.encode()).expect("write frame");
    }
    let mut buf = Vec::new();
    sock.read_to_end(&mut buf).expect("read until server close");
    let mut out = Vec::new();
    let mut start = 0;
    while start < buf.len() {
        let (frame, used) = Frame::decode(&buf[start..]).expect("server sends whole frames");
        start += used;
        out.push(frame);
    }
    out
}

#[test]
fn protocol_violations_get_typed_errors_and_close() {
    let (_results, ()) = serve(EngineConfig::new(1), |engine| {
        let server = IngestServer::bind("127.0.0.1:0", engine.registrar(), |_req| segmenter())
            .expect("binding a loopback ingest listener");
        let addr = server.addr();

        // Unsupported HELLO version → typed version-mismatch, close.
        let replies = raw_exchange(
            addr,
            &[Frame::Hello {
                version: 99,
                peer: "time-traveller".to_string(),
            }],
        );
        assert_eq!(replies.len(), 1);
        assert!(
            matches!(
                replies[0],
                Frame::Error {
                    code: ErrorCode::VersionMismatch,
                    ..
                }
            ),
            "got {replies:?}"
        );

        // RECORDS before HELLO → protocol error, close.
        let replies = raw_exchange(
            addr,
            &[Frame::Records {
                stream: 0,
                values: vec![1.0],
            }],
        );
        assert_eq!(replies.len(), 1);
        assert!(
            matches!(
                replies[0],
                Frame::Error {
                    code: ErrorCode::Protocol,
                    ..
                }
            ),
            "got {replies:?}"
        );

        // RECORDS for a never-registered stream → unknown-stream.
        let mut client = NetClient::connect(addr, "confused-producer").expect("connect");
        match client.send_records(7, &[1.0]) {
            Err(NetError::Remote {
                code: ErrorCode::UnknownStream,
                stream: Some(7),
                ..
            }) => {}
            other => panic!("expected unknown-stream, got {other:?}"),
        }

        drop(server);
    });
}

// ---------------------------------------------------------------------
// Metrics end to end
// ---------------------------------------------------------------------

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to metrics endpoint");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    response
        .split_once("\r\n\r\n")
        .expect("HTTP head/body split")
        .1
        .to_string()
}

/// A live scrape while a producer connection is open shows the
/// connection-level families on /metrics and the `net` object on
/// /stats.json.
#[test]
fn metrics_endpoints_expose_net_families() {
    let (_results, ()) = serve(EngineConfig::new(1), |engine| {
        let server = IngestServer::bind(
            "127.0.0.1:0",
            engine.registrar(),
            |req: &RegisterRequest| {
                assert_eq!(req.name, "metered");
                segmenter()
            },
        )
        .expect("binding a loopback ingest listener");
        let metrics = MetricsServer::bind("127.0.0.1:0").expect("binding a metrics port");
        metrics.attach(engine.stats_handle());
        metrics.attach_net(server.net_stats());

        let mut client = NetClient::connect(server.addr(), "scraped-producer").expect("connect");
        let id = client.register("metered", None).expect("register");
        let values: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        client.send_records(id, &values).expect("records acked");

        let prom = http_get(metrics.addr(), "/metrics");
        assert!(prom.contains("class_net_connections 1"), "{prom}");
        assert!(prom.contains("class_net_connections_total 1"), "{prom}");
        assert!(prom.contains("class_net_records_total 64"), "{prom}");
        assert!(prom.contains("class_net_conn_open{conn=\"0\""), "{prom}");
        assert!(prom.contains("class_net_conn_streams{conn=\"0\""), "{prom}");
        assert!(prom.contains("class_net_conn_frames_per_sec"), "{prom}");

        let json = http_get(metrics.addr(), "/stats.json");
        assert!(json.contains("\"net\""), "{json}");
        assert!(json.contains("\"accepted\": 1"), "{json}");
        assert!(json.contains("\"active\": 1"), "{json}");
        assert!(json.contains("\"conn\": 0"), "{json}");
        assert!(json.contains("\"open\": true"), "{json}");

        client.detach(id).expect("detach acked");
        drop(client);
        drop(metrics);
        drop(server);
    });
}
