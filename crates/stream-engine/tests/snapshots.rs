//! Snapshot-consistency suite (requires `--features fault-inject`):
//! proves that [`stream_engine::StatsHandle::stats`] is safe to call at
//! *arbitrary moments* while the engine is under faulted load.
//!
//! A live snapshot reads lock-free counters that the shard workers and
//! ring producers are mutating concurrently, so it can never promise the
//! exact ledger equality a finished run does. What it must promise, and
//! what this suite pins:
//!
//! 1. **Coherence** — in every snapshot, for every stream,
//!    `records_in + drops + quarantined_after <= pushed`: the engine
//!    never claims to have disposed of a record the ring has not
//!    accepted (the Release/Acquire ordering contract on
//!    `StreamMonitor`'s counters);
//! 2. **Monotonicity** — between two consecutive snapshots every
//!    counter is non-decreasing and no stream disappears;
//! 3. **Convergence** — once serving completes, the frozen registry
//!    reports the exact ledger `records_in + drops + quarantined_after
//!    == pushed` for every stream.
//!
//! The proptest sweeps seeded fault plans across shard counts and
//! backpressure policies, reusing the fault suite's `drive` harness.
//! A leak check rides along: repeating soak-style rounds through fresh
//! engines must not grow the process's peak RSS (`VmHWM`) beyond an
//! allocator-noise allowance.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use stream_engine::{
    drive, serve, silence_injected_panics, vm_hwm_kb, Backpressure, EngineConfig, FaultKind,
    FaultPlan, FaultingOperator, GuardConfig, RetryPolicy, RingConfig, ServingStats, StatsHandle,
    StreamOptions, TumblingWindowMean,
};

/// Deterministic per-stream feeds (phase-shifted sines with a small
/// ramp, so the flatline guard stays quiet on clean data).
fn synth(n_streams: usize, points: usize) -> Vec<Vec<f64>> {
    (0..n_streams)
        .map(|k| {
            (0..points)
                .map(|t| (t as f64 * 0.17 + k as f64 * 1.3).sin() * 10.0 + (t % 13) as f64 * 0.01)
                .collect()
        })
        .collect()
}

/// Invariant 1: no snapshot may account for more records than its ring
/// has accepted.
fn assert_coherent(s: &ServingStats, ctx: &str) {
    for st in &s.streams {
        assert!(
            st.records_in + st.drops + st.quarantined_after <= st.pushed,
            "{ctx}: stream {} snapshot over-accounts: records_in({}) + drops({}) \
             + quarantined_after({}) > pushed({})",
            st.stream,
            st.records_in,
            st.drops,
            st.quarantined_after,
            st.pushed
        );
    }
}

/// Invariant 2: counters only grow between consecutive snapshots, and
/// registered streams never vanish.
fn assert_monotone(prev: &ServingStats, next: &ServingStats) {
    assert!(
        next.streams.len() >= prev.streams.len(),
        "streams disappeared between snapshots: {} -> {}",
        prev.streams.len(),
        next.streams.len()
    );
    assert!(next.uptime >= prev.uptime, "uptime went backwards");
    for p in &prev.streams {
        let n = next
            .streams
            .iter()
            .find(|n| n.stream == p.stream)
            .unwrap_or_else(|| panic!("stream {} vanished from the next snapshot", p.stream));
        for (what, a, b) in [
            ("records_in", p.records_in, n.records_in),
            ("drops", p.drops, n.drops),
            (
                "quarantined_after",
                p.quarantined_after,
                n.quarantined_after,
            ),
            ("pushed", p.pushed, n.pushed),
            ("healed", p.healed, n.healed),
            ("skipped", p.skipped, n.skipped),
            ("retries", p.retries, n.retries),
        ] {
            assert!(
                b >= a,
                "stream {}: {what} regressed between snapshots: {a} -> {b}",
                p.stream
            );
        }
        assert!(
            !p.done || n.done,
            "stream {} went from done back to live",
            p.stream
        );
        assert!(
            !p.state.is_quarantined() || n.state.is_quarantined(),
            "stream {} left quarantine",
            p.stream
        );
    }
}

/// Serves a seeded faulted fleet while a sampler thread polls
/// [`StatsHandle::stats`] as fast as it can; returns the sampled
/// snapshots plus a handle into the (now frozen) registry.
fn sampled_run(
    seed: u64,
    shards: usize,
    policy: Backpressure,
    n_streams: usize,
    points: usize,
) -> (Vec<ServingStats>, StatsHandle) {
    silence_injected_panics();
    let plan = FaultPlan::seeded(seed, n_streams, points, 0.4);
    let mut data = synth(n_streams, points);
    for (k, xs) in data.iter_mut().enumerate() {
        plan.corrupt(k, xs);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let retry = RetryPolicy::default();
    let (_results, (outcome, snapshots, handle)) = serve(EngineConfig::new(shards), |engine| {
        let handle = engine.stats_handle();
        let sampler_handle = handle.clone();
        let sampler_stop = Arc::clone(&stop);
        let sampler = std::thread::spawn(move || {
            let mut snaps = Vec::new();
            while !sampler_stop.load(Ordering::Relaxed) {
                snaps.push(sampler_handle.stats());
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            snaps.push(sampler_handle.stats());
            snaps
        });
        let handles: Vec<_> = (0..n_streams)
            .map(|k| {
                let kind = plan.fault_for(k);
                let ring = if matches!(kind, Some(FaultKind::OverflowStorm { .. })) {
                    RingConfig::new(8, Backpressure::Error)
                } else {
                    RingConfig::new(16, policy)
                };
                engine.register_with(
                    StreamOptions {
                        ring,
                        guard: Some(GuardConfig::new(4, 6)),
                        ..StreamOptions::default()
                    },
                    move || FaultingOperator::new(TumblingWindowMean::new(5), kind),
                )
            })
            .collect();
        let outcome = drive(handles, &data, &plan, &retry);
        stop.store(true, Ordering::Relaxed);
        let snapshots = sampler.join().expect("sampler thread never panics");
        (outcome, snapshots, handle)
    });
    outcome.expect("feeder completes under faults");
    (snapshots, handle)
}

/// Invariant 3 plus the sweep over every sampled snapshot.
fn check_run(seed: u64, shards: usize, policy: Backpressure) {
    let (snapshots, handle) = sampled_run(seed, shards, policy, 8, 600);
    assert!(
        !snapshots.is_empty(),
        "the sampler always takes at least the final snapshot"
    );
    for (i, s) in snapshots.iter().enumerate() {
        assert_coherent(s, &format!("seed {seed} snapshot {i}"));
    }
    for pair in snapshots.windows(2) {
        assert_monotone(&pair[0], &pair[1]);
    }
    // The registry outlives the engine; after serve() returns it is
    // frozen and the inequality tightens to the exact ledger.
    let terminal = handle.stats();
    assert_eq!(terminal.streams.len(), 8);
    for st in &terminal.streams {
        assert_eq!(
            st.records_in + st.drops + st.quarantined_after,
            st.pushed,
            "stream {}: terminal ledger out of balance",
            st.stream
        );
        assert!(st.done || st.state.is_quarantined());
        assert_eq!(st.queue_depth, 0, "stream {}: ring not drained", st.stream);
    }
}

#[test]
fn snapshots_stay_coherent_under_blocking_policy() {
    check_run(0xC0FFEE, 3, Backpressure::Block);
}

#[test]
fn snapshots_stay_coherent_under_drop_oldest_policy() {
    // DropOldest is the adversarial case: an accepted record can be
    // evicted by the very call that pushed it, so `drops` and `pushed`
    // race unless the ring orders its counter stores.
    check_run(0xDEAD_BEEF, 2, Backpressure::DropOldest);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 4 } else { 10 }))]

    /// Arbitrary seeds x shard counts x policies: every mid-load
    /// snapshot satisfies coherence and monotonicity, every terminal
    /// one the exact ledger. `PROPTEST_SEED` rotates the sweep in CI.
    #[test]
    fn concurrent_snapshots_never_tear(
        seed in 0u64..u64::MAX,
        shards in 1usize..5,
        policy_pick in 0usize..2,
    ) {
        let policy = if policy_pick == 1 {
            Backpressure::DropOldest
        } else {
            Backpressure::Block
        };
        check_run(seed, shards, policy);
    }
}

/// Soak-style leak check: after a warm-up round, repeating fresh-engine
/// rounds (the `serve_soak --minutes` loop in miniature) must not grow
/// the process's peak RSS beyond an allocator-noise allowance.
#[test]
fn repeated_rounds_do_not_grow_peak_rss() {
    const ROUNDS: u64 = 12;
    const ALLOWANCE_KB: u64 = 65_536;
    let round = |seed: u64| {
        let (snapshots, _) = sampled_run(seed, 2, Backpressure::Block, 8, 600);
        drop(snapshots);
    };
    round(1); // warm allocator pools and thread stacks
    let Some(base) = vm_hwm_kb() else {
        eprintln!("VmHWM unavailable on this platform; skipping the leak bound");
        return;
    };
    for r in 2..2 + ROUNDS {
        round(r);
    }
    let last = vm_hwm_kb().expect("VmHWM stays readable");
    let delta = last.saturating_sub(base);
    assert!(
        delta <= ALLOWANCE_KB,
        "peak RSS grew {delta} kB over {ROUNDS} rounds (> {ALLOWANCE_KB} kB): \
         the serving engine is leaking per-round state"
    );
}
