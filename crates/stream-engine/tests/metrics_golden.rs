//! Golden-format suite for the Prometheus text exposition and the
//! metrics endpoint.
//!
//! The exposition format is an *interface*: dashboards, alert rules and
//! scrape configs are written against metric names and label sets, so a
//! rename or re-ordering is a breaking change that must show up as a
//! test diff, not as a silently broken dashboard. The render is pinned
//! three ways:
//!
//! 1. **byte-exact** against a committed fixture
//!    (`tests/golden/serving_stats.prom`; regenerate deliberately with
//!    `UPDATE_GOLDEN=1 cargo test -p stream-engine --test
//!    metrics_golden`);
//! 2. **label escaping** for names carrying spaces, quotes, backslashes
//!    and newlines (Prometheus text exposition 0.0.4 escaping rules);
//! 3. **parse-back** through a hand-rolled exposition-syntax validator:
//!    every line must be a well-formed comment or sample.
//!
//! The endpoint half serves a real engine over real TCP and reconciles
//! the scraped counters with [`stream_engine::StatsHandle::stats`].

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;
use stream_engine::{
    feed_all, render_prometheus, render_prometheus_with_net, render_stats_json,
    render_stats_json_with_net, serve, ConnStats, EngineConfig, NetStats, QuarantineCause,
    ServingStats, ShardStats, SnapshotWriter, StreamOptions, StreamState, StreamStats,
    TumblingWindowMean,
};

/// A fixed, fully deterministic snapshot exercising every family the
/// renderer emits: an active stream, a done stream, and a quarantined
/// stream whose name needs all three label escapes.
fn fixture() -> ServingStats {
    let mk = |stream: usize, shard: usize, name: &str| StreamStats {
        stream,
        name: name.to_string(),
        shard,
        records_in: 1000 + stream as u64 * 111,
        drops: stream as u64,
        quarantined_after: 0,
        pushed: 1000 + stream as u64 * 112,
        healed: stream as u64 * 2,
        skipped: 0,
        retries: stream as u64 * 3,
        queue_depth: 4 - stream,
        done: false,
        state: StreamState::Active,
        p50: Duration::from_nanos(2048),
        p99: Duration::from_nanos(65_536),
        mean: Duration::from_nanos(3_000),
    };
    let mut sensor_a = mk(0, 0, "sensor/A");
    sensor_a.done = true;
    sensor_a.state = StreamState::Done;
    sensor_a.queue_depth = 0;
    let sensor_b = mk(1, 1, "sensor \"B\" \\ west");
    let mut sensor_c = mk(2, 0, "sensor\nC");
    sensor_c.state = StreamState::Quarantined {
        cause: QuarantineCause::OperatorPanic {
            message: "boom \"quoted\" \\ and\nnewline".to_string(),
        },
        at_record: 777,
    };
    sensor_c.quarantined_after = 55;
    ServingStats {
        streams: vec![sensor_a, sensor_b, sensor_c],
        shards: vec![
            ShardStats {
                shard: 0,
                streams: 2,
                active: 1,
                quarantined: 1,
                records_in: 2222,
                drops: 2,
                queue_depth: 2,
                p50: Duration::from_nanos(2048),
                p99: Duration::from_nanos(65_536),
            },
            ShardStats {
                shard: 1,
                streams: 1,
                active: 1,
                quarantined: 0,
                records_in: 1111,
                drops: 1,
                queue_depth: 3,
                p50: Duration::from_nanos(4096),
                p99: Duration::from_nanos(131_072),
            },
        ],
        uptime: Duration::from_millis(12_345),
    }
}

/// A fixed ingestion-tier snapshot: two open producer connections (one
/// with a label-escape-needing peer name) and one already closed.
fn net_fixture() -> NetStats {
    let mk = |conn: u64, peer: &str, open: bool| ConnStats {
        conn,
        peer: peer.to_string(),
        open,
        streams: if open { 2 } else { 0 },
        frames: 100 + conn * 17,
        records: 5_000 + conn * 13,
        throttle_events: conn,
        protocol_errors: conn / 2,
        uptime: Duration::from_millis(2_000 + conn * 500),
    };
    NetStats {
        accepted: 3,
        active: 2,
        connections: vec![
            mk(0, "127.0.0.1:50001", true),
            mk(1, "bench \"B\" \\ east\nclient", true),
            mk(2, "127.0.0.1:50003", false),
        ],
    }
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/serving_stats.prom"
);

#[test]
fn render_matches_committed_golden_byte_for_byte() {
    let rendered = render_prometheus_with_net(&fixture(), Some(&net_fixture()));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("writing golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden fixture missing: run UPDATE_GOLDEN=1 cargo test -p stream-engine \
         --test metrics_golden and commit the result",
    );
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/serving_stats.prom — \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1 and commit"
    );
}

#[test]
fn label_values_escape_backslash_quote_and_newline() {
    let out = render_prometheus_with_net(&fixture(), Some(&net_fixture()));
    // `sensor "B" \ west` must appear with escaped quotes + backslash.
    assert!(
        out.contains(r#"name="sensor \"B\" \\ west""#),
        "missing escaped quote/backslash label:\n{out}"
    );
    // The newline in `sensor\nC` must be the two-character sequence \n,
    // never a literal line break inside a label.
    assert!(
        out.contains(r#"name="sensor\nC""#),
        "missing escaped newline label:\n{out}"
    );
    // Peer labels on net series go through the same escaper.
    assert!(
        out.contains(r#"peer="bench \"B\" \\ east\nclient""#),
        "missing escaped peer label:\n{out}"
    );
    for line in out.lines() {
        assert!(
            !line.ends_with('\\'),
            "dangling escape at end of line: {line:?}"
        );
    }
}

/// A parsed exposition sample: metric name, label pairs, value.
type Sample = (String, Vec<(String, String)>, f64);

/// Splits a sample line into (name, labels, value), honouring escapes
/// inside quoted label values. Returns None if the line is malformed.
fn parse_sample(line: &str) -> Option<Sample> {
    fn is_name_char(c: char, first: bool) -> bool {
        c.is_ascii_alphabetic()
            || c == '_'
            || c == ':'
            || (!first && (c.is_ascii_digit() || c == '.'))
    }
    let mut chars = line.chars().peekable();
    let mut name = String::new();
    while let Some(&c) = chars.peek() {
        if is_name_char(c, name.is_empty()) {
            name.push(c);
            chars.next();
        } else {
            break;
        }
    }
    if name.is_empty() {
        return None;
    }
    let mut labels = Vec::new();
    if chars.peek() == Some(&'{') {
        chars.next();
        loop {
            let mut key = String::new();
            while let Some(&c) = chars.peek() {
                if is_name_char(c, key.is_empty()) {
                    key.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            if key.is_empty() || chars.next() != Some('=') || chars.next() != Some('"') {
                return None;
            }
            let mut value = String::new();
            loop {
                match chars.next()? {
                    '\\' => match chars.next()? {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        _ => return None,
                    },
                    '"' => break,
                    '\n' => return None, // literal newline in a label
                    c => value.push(c),
                }
            }
            labels.push((key, value));
            match chars.next()? {
                ',' => continue,
                '}' => break,
                _ => return None,
            }
        }
    }
    if chars.next() != Some(' ') {
        return None;
    }
    let value: String = chars.collect();
    value.trim().parse::<f64>().ok().map(|v| (name, labels, v))
}

#[test]
fn every_line_is_valid_exposition_syntax() {
    let out = render_prometheus_with_net(&fixture(), Some(&net_fixture()));
    let mut samples = 0usize;
    let mut helped: Vec<String> = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    for line in out.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            assert!(!name.is_empty(), "HELP without a metric name: {line:?}");
            helped.push(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            assert!(
                matches!(kind, "counter" | "gauge"),
                "unknown TYPE {kind:?} in {line:?}"
            );
            typed.push(name.to_string());
        } else if !line.is_empty() {
            let (name, labels, _) = parse_sample(line)
                .unwrap_or_else(|| panic!("not a valid exposition sample: {line:?}"));
            assert!(
                typed.contains(&name),
                "sample {name} appears before its TYPE header"
            );
            // Counters must carry the conventional _total suffix; the
            // suffix must never appear on a gauge.
            let is_counter = name.ends_with("_total");
            let type_line = out
                .lines()
                .find(|l| l.starts_with(&format!("# TYPE {name} ")))
                .unwrap();
            assert_eq!(
                type_line.ends_with("counter"),
                is_counter,
                "_total suffix disagrees with TYPE for {name}"
            );
            for (key, _) in &labels {
                assert!(!key.is_empty());
            }
            samples += 1;
        }
    }
    assert_eq!(helped, typed, "every HELP pairs with a TYPE in order");
    assert!(
        samples > 30,
        "expected a full render, got {samples} samples"
    );
}

#[test]
fn counters_reconcile_with_the_snapshot() {
    let stats = fixture();
    let out = render_prometheus(&stats);
    let find = |name: &str, stream: &str| -> f64 {
        out.lines()
            .filter_map(parse_sample_line_for(name, stream))
            .next()
            .unwrap_or_else(|| panic!("no sample {name} for stream {stream}:\n{out}"))
    };
    fn parse_sample_line_for<'a>(
        name: &'a str,
        stream: &'a str,
    ) -> impl Fn(&str) -> Option<f64> + 'a {
        move |line: &str| {
            let (n, labels, v) = parse_sample(line)?;
            (n == name && labels.iter().any(|(k, val)| k == "stream" && val == stream)).then_some(v)
        }
    }
    for s in &stats.streams {
        let id = s.stream.to_string();
        assert_eq!(
            find("class_stream_records_in_total", &id),
            s.records_in as f64
        );
        assert_eq!(find("class_stream_drops_total", &id), s.drops as f64);
        assert_eq!(find("class_stream_pushed_total", &id), s.pushed as f64);
        assert_eq!(
            find("class_stream_quarantined_after_total", &id),
            s.quarantined_after as f64
        );
    }
}

#[test]
fn net_families_reconcile_and_degrade_cleanly() {
    let stats = fixture();
    let net = net_fixture();
    // Without an ingest tier both renders stay byte-identical to the
    // plain ones — attaching the network tier is purely additive.
    assert_eq!(
        render_prometheus_with_net(&stats, None),
        render_prometheus(&stats)
    );
    assert_eq!(
        render_stats_json_with_net(&stats, None),
        render_stats_json(&stats)
    );
    let out = render_prometheus_with_net(&stats, Some(&net));
    assert!(out.contains("class_net_connections 2\n"), "{out}");
    assert!(out.contains("class_net_connections_total 3\n"), "{out}");
    assert!(
        out.contains(
            r#"class_net_conn_frames_total{conn="1",peer="bench \"B\" \\ east\nclient"} 117"#
        ),
        "{out}"
    );
    assert!(
        out.contains(r#"class_net_conn_open{conn="2",peer="127.0.0.1:50003"} 0"#),
        "closed connections stay listed: {out}"
    );
    let json = render_stats_json_with_net(&stats, Some(&net));
    assert!(json.contains("\"net\": {"), "{json}");
    assert!(json.contains("\"accepted\": 3, \"active\": 2"), "{json}");
    assert!(
        json.contains("\"conn\": 2, \"peer\": \"127.0.0.1:50003\", \"open\": false"),
        "{json}"
    );
}

/// Minimal HTTP/1.1 GET against the metrics listener.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(addr).expect("connecting to the metrics endpoint");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP head/body split");
    (head.to_string(), body.to_string())
}

#[test]
fn live_endpoint_serves_scrapes_that_reconcile_with_stats() {
    let n_streams = 6usize;
    let points = 400usize;
    let data: Vec<Vec<f64>> = (0..n_streams)
        .map(|k| {
            (0..points)
                .map(|t| (t as f64 * 0.2 + k as f64).sin())
                .collect()
        })
        .collect();
    let (results, (_addr, server, handle, mid_scrape)) = serve(EngineConfig::new(2), |engine| {
        let server = engine
            .serve_metrics("127.0.0.1:0")
            .expect("binding an ephemeral metrics port");
        let addr = server.addr();
        let handles: Vec<_> = (0..n_streams)
            .map(|k| {
                engine.register_with(
                    StreamOptions {
                        name: Some(format!("live/{k}")),
                        ..StreamOptions::default()
                    },
                    move || TumblingWindowMean::new(8),
                )
            })
            .collect();
        // One scrape while the engine is demonstrably live.
        let (head, body) = http_get(addr, "/metrics");
        let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
        feed_all(handles, &slices).expect("feed completes");
        (addr, server, engine.stats_handle(), (head, body))
    });
    assert_eq!(results.len(), n_streams);

    let (head, body) = mid_scrape;
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "exposition content type: {head}"
    );
    assert!(body.contains("class_engine_streams 6"), "{body}");

    // After serving completes the registry is frozen: a fresh scrape
    // must agree exactly with the snapshot and with the results.
    let stats = handle.stats();
    let (_, body) = http_get(server.addr(), "/metrics");
    for s in &stats.streams {
        assert_eq!(s.records_in, points as u64);
        let needle = format!(
            "class_stream_records_in_total{{stream=\"{}\",shard=\"{}\",name=\"live/{}\"}} {}",
            s.stream, s.shard, s.stream, s.records_in
        );
        assert!(body.contains(&needle), "missing {needle:?} in:\n{body}");
    }
    assert_eq!(
        body.matches("class_stream_done").count(),
        2 + n_streams, // HELP + TYPE + one sample per stream
        "every stream reports done-ness"
    );

    // Route handling: /stats.json is the JSON view, anything else 404s.
    let (head, json_body) = http_get(server.addr(), "/stats.json");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("application/json"), "{head}");
    assert!(json_body.contains("\"schema\": \"class-serving-stats/v1\""));
    // uptime keeps ticking between the scrape and this render; every
    // non-time-derived line must match byte for byte.
    let stable = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("uptime_s") && !l.contains("records_per_sec"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        stable(&json_body),
        stable(&render_stats_json(&stats)),
        "JSON route renders the live snapshot"
    );
    let (head, _) = http_get(server.addr(), "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    assert!(server.scrapes() >= 2, "scrape counter advanced");
}

#[test]
fn unattached_endpoint_returns_503_until_a_source_arrives() {
    let server = stream_engine::MetricsServer::bind("127.0.0.1:0").expect("bind");
    let (head, _) = http_get(server.addr(), "/metrics");
    assert!(head.starts_with("HTTP/1.1 503"), "{head}");
}

#[test]
fn snapshot_writer_maintains_a_parseable_file_and_flushes_on_drop() {
    let path =
        std::env::temp_dir().join(format!("class_snapshot_test_{}.json", std::process::id()));
    let n_streams = 3usize;
    let data: Vec<Vec<f64>> = (0..n_streams)
        .map(|k| {
            (0..300)
                .map(|t| (t as f64 * 0.3 + k as f64).cos())
                .collect()
        })
        .collect();
    let (results, handle) = serve(EngineConfig::new(1), |engine| {
        let writer = SnapshotWriter::start(
            engine.stats_handle(),
            path.clone(),
            Duration::from_millis(10),
        );
        let handles: Vec<_> = (0..n_streams)
            .map(|_| engine.register(move || TumblingWindowMean::new(4)))
            .collect();
        let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
        feed_all(handles, &slices).expect("feed completes");
        drop(writer); // final flush happens here, while the engine is live
        engine.stats_handle()
    });
    assert_eq!(results.len(), n_streams);
    let doc = std::fs::read_to_string(&path).expect("snapshot file exists after drop");
    assert!(
        doc.contains("\"schema\": \"class-serving-stats/v1\""),
        "mid-run snapshot carries the schema: {doc}"
    );

    // A writer over the now-frozen registry flushes the terminal ledger
    // on drop; everything except the still-ticking uptime-derived lines
    // must match a direct render byte for byte.
    let writer = SnapshotWriter::start(handle.clone(), path.clone(), Duration::from_millis(10));
    drop(writer);
    let doc = std::fs::read_to_string(&path).expect("snapshot file exists after drop");
    let stable = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("uptime_s") && !l.contains("records_per_sec"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(stable(&doc), stable(&render_stats_json(&handle.stats())));
    assert!(!std::path::Path::new(&format!("{}.tmp", path.display())).exists());
    std::fs::remove_file(&path).ok();
}
