//! Differential tests of multivariate serving: a fused
//! [`MultivariateClass`] registered as **one** engine stream must be
//! exactly reproducible from the votes of stand-alone per-channel
//! [`ClassSegmenter`]s replayed through the serving engine (block
//! policy, lossless rings) and fed into a fresh [`VoteFuser`]. This pins
//! the whole chain — interleaved ring transport, frame reassembly in the
//! operator, per-channel seed derivation, and the fusion state machine —
//! to exact equality, not a tolerance.

use class_core::stats::SplitMix64;
use class_core::{
    ClassConfig, ClassSegmenter, MultivariateClass, MultivariateConfig, VoteFuser, WidthSelection,
};
use stream_engine::{
    serve, Backpressure, EngineConfig, MultiChannelReplaySource, MultivariateSegmenterOperator,
    Record, RingConfig, SegmenterOperator,
};

const N_CHANNELS: usize = 3;

/// Channels 0 and 1 change regime at `cp`; channel 2 is pure noise.
fn three_channel_stream(n: usize, cp: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(seed);
    let mut channels: Vec<Vec<f64>> = (0..N_CHANNELS).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        let f = if i < cp { 0.15 } else { 0.45 };
        channels[0].push((i as f64 * f).sin() + 0.05 * (rng.next_f64() - 0.5));
        channels[1].push((i as f64 * f * 1.1).cos() + 0.05 * (rng.next_f64() - 0.5));
        channels[2].push(rng.next_f64() - 0.5);
    }
    channels
}

fn base_cfg() -> ClassConfig {
    let mut c = ClassConfig::with_window_size(1500);
    c.width = WidthSelection::Fixed(30);
    c.log10_alpha = -12.0;
    c
}

/// Serves the fused multivariate segmenter as one engine stream over a
/// deliberately tiny ring (the interleaved feed must survive real
/// backpressure) and returns its output records in emission order.
fn serve_fused(channels: &[Vec<f64>], cfg: &MultivariateConfig) -> Vec<Record<u64>> {
    let source = MultiChannelReplaySource::new(channels.to_vec());
    let interleaved = source.interleaved();
    let config = EngineConfig {
        shards: 1,
        ring: RingConfig::new(64, Backpressure::Block),
    };
    let cfg = cfg.clone();
    let (mut results, ()) = serve(config, move |engine| {
        let mut handle = engine.register(move || {
            MultivariateSegmenterOperator::new(MultivariateClass::new(cfg, N_CHANNELS))
        });
        for v in interleaved {
            handle.push(v).expect("engine alive");
        }
    });
    results.remove(0).output
}

/// Serves one stand-alone `ClassSegmenter` per channel (each built from
/// the multivariate config's own per-channel derivation) as independent
/// engine streams and returns each channel's timed votes.
fn serve_per_channel(channels: &[Vec<f64>], cfg: &MultivariateConfig) -> Vec<Vec<Record<u64>>> {
    let config = EngineConfig {
        shards: 2,
        ring: RingConfig::new(64, Backpressure::Block),
    };
    let (results, ()) = serve(config, |engine| {
        let handles: Vec<_> = (0..N_CHANNELS)
            .map(|i| {
                let chan_cfg = cfg.channel_config(i);
                engine.register(move || SegmenterOperator::new(ClassSegmenter::new(chan_cfg)))
            })
            .collect();
        let slices: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();
        stream_engine::feed_all(handles, &slices).expect("feed completes");
    });
    results.into_iter().map(|r| r.output).collect()
}

/// Replays per-channel votes through a fresh fusion state machine,
/// reproducing what the fused segmenter computed online: at every frame,
/// each channel's votes for that frame arrive in channel order, then the
/// fuser steps; flush-time votes (timestamp `u64::MAX`) arrive after the
/// stream, in channel order, and are fused by `finish`.
fn refuse_votes(votes: &[Vec<Record<u64>>], n_frames: usize, cfg: &MultivariateConfig) -> Vec<u64> {
    let mut fuser = VoteFuser::new(cfg.fusion);
    let mut fused = Vec::new();
    let mut cursors = vec![0usize; votes.len()];
    for t in 0..n_frames as u64 {
        for (c, chan_votes) in votes.iter().enumerate() {
            while cursors[c] < chan_votes.len() && chan_votes[cursors[c]].timestamp == t {
                fuser.vote(c, chan_votes[cursors[c]].value);
                cursors[c] += 1;
            }
        }
        if let Some(cp) = fuser.step(t) {
            fused.push(cp);
        }
    }
    for (c, chan_votes) in votes.iter().enumerate() {
        for rec in &chan_votes[cursors[c]..] {
            assert_eq!(rec.timestamp, u64::MAX, "non-monotonic vote timestamps");
            fuser.vote(c, rec.value);
        }
    }
    fuser.finish(&mut fused);
    fused
}

#[test]
fn fused_stream_equals_per_channel_votes_refused() {
    let channels = three_channel_stream(5000, 2500, 41);
    let cfg = MultivariateConfig::new(base_cfg(), N_CHANNELS);

    let fused_records = serve_fused(&channels, &cfg);
    let fused: Vec<u64> = fused_records.iter().map(|r| r.value).collect();
    let votes = serve_per_channel(&channels, &cfg);
    let replayed = refuse_votes(&votes, channels[0].len(), &cfg);

    assert_eq!(fused, replayed, "fused output not reproducible from votes");
    assert!(
        fused
            .iter()
            .any(|&c| (c as i64 - 2500).unsigned_abs() < 500),
        "shared change missed: {fused:?}"
    );
    // At least two channels voted (quorum-of-2 fired).
    let voting_channels = votes.iter().filter(|v| !v.is_empty()).count();
    assert!(
        voting_channels >= 2,
        "only {voting_channels} channels voted"
    );
}

#[test]
fn fused_stream_is_deterministic_across_engine_runs() {
    let channels = three_channel_stream(4000, 2000, 7);
    let cfg = MultivariateConfig::new(base_cfg(), N_CHANNELS);
    let a = serve_fused(&channels, &cfg);
    let b = serve_fused(&channels, &cfg);
    assert_eq!(a, b);

    // And identical to stepping the segmenter in-process, frame by frame
    // (the engine's interleaved transport adds nothing and loses nothing).
    let mut mv = MultivariateClass::new(cfg, N_CHANNELS);
    let mut local = Vec::new();
    let mut row = vec![0.0; N_CHANNELS];
    for t in 0..channels[0].len() {
        for (c, chan) in channels.iter().enumerate() {
            row[c] = chan[t];
        }
        mv.step(&row, &mut local);
    }
    mv.finalize(&mut local);
    let engine_cps: Vec<u64> = a.iter().map(|r| r.value).collect();
    assert_eq!(engine_cps, local);
}

#[test]
fn frame_timestamps_divide_out_the_channel_count() {
    // A fused stream's step-time reports carry the frame index, not the
    // interleaved record index.
    let channels = three_channel_stream(5000, 2500, 41);
    let cfg = MultivariateConfig::new(base_cfg(), N_CHANNELS);
    let records = serve_fused(&channels, &cfg);
    for rec in &records {
        if rec.timestamp != u64::MAX {
            assert!(
                (rec.timestamp as usize) < channels[0].len(),
                "timestamp {} is not a frame index",
                rec.timestamp
            );
        }
    }
}
