//! Backpressure-policy semantics of the serving engine, per policy:
//!
//! * `block` is lossless — every record is delivered in order, so a
//!   ClaSS stream served through the engine scores *exactly* like the
//!   single-threaded pipeline and the standalone segmenter;
//! * `drop-oldest` accounts for every record — processed + dropped
//!   equals pushed, and what survives is the freshest suffix-window of
//!   the feed in order;
//! * `error` surfaces a typed overflow to the producer and never
//!   delivers the rejected record;
//!
//! plus a property test interleaving many streams of arbitrary lengths
//! through tiny rings on varying shard counts.

use class_core::stats::SplitMix64;
use class_core::{ClassConfig, ClassSegmenter, StreamingSegmenter, WidthSelection};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use stream_engine::{
    feed_all, serve, Backpressure, EngineConfig, Operator, OverflowError, Pipeline, PushError,
    Record, RingConfig, SegmenterOperator, TumblingWindowMean,
};

/// Two-regime stream: sine whose frequency doubles at `cp`.
fn freq_shift(n: usize, cp: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let f = if i < cp { 0.18 } else { 0.42 };
            (i as f64 * f).sin() + 0.05 * (rng.next_f64() - 0.5)
        })
        .collect()
}

fn class_cfg() -> ClassConfig {
    let mut cfg = ClassConfig::with_window_size(1_200);
    cfg.width = WidthSelection::Fixed(30);
    cfg.warmup = Some(800);
    cfg.log10_alpha = -12.0;
    cfg.seed = 7;
    cfg
}

#[test]
fn block_preserves_every_record_and_scores_equal_the_single_stream_path() {
    let xs = freq_shift(4_000, 2_000, 11);

    // Standalone segmenter — the ground truth for the streaming scores.
    let mut standalone = ClassSegmenter::new(class_cfg());
    let mut direct_cps = Vec::new();
    for &x in &xs {
        standalone.step(x, &mut direct_cps);
    }

    // Single-threaded pipeline.
    let pipeline = Pipeline::source_type::<f64>()
        .then(SegmenterOperator::new(ClassSegmenter::new(class_cfg())));
    let (pipe_records, _) = pipeline.run(xs.iter().copied());

    // The serving engine with a deliberately tiny blocking ring: the
    // producer stalls repeatedly, but no record may be lost or reordered.
    let config = EngineConfig {
        shards: 2,
        ring: RingConfig::new(8, Backpressure::Block),
    };
    let (results, ()) = serve(config, |engine| {
        let xs = &xs;
        let handle = engine.register(|| SegmenterOperator::new(ClassSegmenter::new(class_cfg())));
        feed_all(vec![handle], &[xs.as_slice()]).expect("feed completes");
    });
    let r = &results[0];

    assert_eq!(r.records_in as usize, xs.len(), "lossless: every record");
    assert_eq!(r.drops, 0);
    // Full record-level equality with the pipeline: values, emission
    // timestamps, and flush-emitted records all survive the ring transit.
    assert_eq!(r.output, pipe_records, "engine == pipeline, exactly");
    let engine_cps: Vec<u64> = r
        .output
        .iter()
        .filter(|rec| rec.timestamp != u64::MAX) // streamed, not flush-emitted
        .map(|rec| rec.value)
        .collect();
    assert_eq!(engine_cps, direct_cps, "engine == standalone, exactly");
    assert!(!engine_cps.is_empty(), "the change point was detected");
}

/// An operator that parks on a shared gate before its first record —
/// letting tests hold a shard deliberately busy while producers run on.
struct Gated {
    gate: Arc<Mutex<()>>,
}

impl Operator for Gated {
    type In = f64;
    type Out = f64;

    fn process(&mut self, rec: Record<f64>, out: &mut Vec<Record<f64>>) {
        drop(self.gate.lock().expect("gate"));
        out.push(rec);
    }

    fn name(&self) -> &'static str {
        "gated"
    }
}

#[test]
fn drop_oldest_accounts_for_every_record_and_keeps_the_freshest_in_order() {
    let gate = Arc::new(Mutex::new(()));
    let total = 5_000u64;
    let config = EngineConfig {
        shards: 1,
        ring: RingConfig::new(16, Backpressure::DropOldest),
    };
    let (results, ()) = serve(config, |engine| {
        let gate_for_op = Arc::clone(&gate);
        let mut handle = engine.register(move || Gated { gate: gate_for_op });
        // Stall the shard so the tiny ring must overflow, then let the
        // producer outrun the consumer for the whole feed.
        let held = gate.lock().expect("gate");
        for v in 0..total {
            handle.push(v as f64).expect("drop-oldest always accepts");
        }
        drop(held);
    });
    let r = &results[0];
    assert_eq!(
        r.records_in + r.drops,
        total,
        "every pushed record is either processed or counted as dropped"
    );
    assert!(r.drops > 0, "the stalled consumer must have overflowed");
    // Survivors keep source order and source positions, and the tail of
    // the feed (the freshest records at close time) always survives.
    let stamps: Vec<u64> = r.output.iter().map(|rec| rec.timestamp).collect();
    assert!(stamps.windows(2).all(|w| w[0] < w[1]), "order preserved");
    assert_eq!(*stamps.last().unwrap(), total - 1, "freshest record kept");
}

#[test]
fn error_policy_surfaces_a_typed_overflow_and_loses_only_rejected_records() {
    let gate = Arc::new(Mutex::new(()));
    let capacity = 4usize;
    let config = EngineConfig {
        shards: 1,
        ring: RingConfig::new(capacity, Backpressure::Error),
    };
    let (results, (accepted, overflow)) = serve(config, |engine| {
        let gate_for_op = Arc::clone(&gate);
        let mut handle = engine.register(move || Gated { gate: gate_for_op });
        let held = gate.lock().expect("gate");
        let mut accepted = 0u64;
        let mut overflow: Option<OverflowError> = None;
        // With the shard stalled, a bounded number of pushes must hit
        // the typed overflow (the ring plus one in-flight batch).
        for v in 0..10_000 {
            match handle.push(v as f64) {
                Ok(()) => accepted += 1,
                Err(PushError::Overflow(e)) => {
                    overflow = Some(e);
                    break;
                }
                Err(e) => panic!("unexpected push error: {e}"),
            }
        }
        drop(held);
        (accepted, overflow)
    });
    let overflow = overflow.expect("the full ring must reject a record");
    assert_eq!(overflow.capacity, capacity, "typed error names the ring");
    let r = &results[0];
    // Everything accepted before the overflow is delivered; the
    // rejected record never reaches the operator.
    assert_eq!(r.records_in, accepted);
    assert_eq!(r.drops, 0, "error policy drops nothing silently");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 16 } else { 64 }))]

    /// Arbitrary interleavings: many streams of arbitrary lengths and
    /// values, fed through tiny blocking rings onto 1..4 shards, must
    /// each reproduce the single-threaded pipeline's output exactly.
    #[test]
    fn interleaved_streams_match_the_pipeline_per_stream(
        streams in prop::collection::vec(
            prop::collection::vec(-1000.0f64..1000.0, 0..120),
            2..7,
        ),
        shards in 1usize..4,
        ring in 1usize..9,
        width in 1usize..6,
    ) {
        let config = EngineConfig {
            shards,
            ring: RingConfig::new(ring, Backpressure::Block),
        };
        let (results, ()) = serve(config, |engine| {
            let handles: Vec<_> = (0..streams.len())
                .map(|_| engine.register(move || TumblingWindowMean::new(width)))
                .collect();
            let slices: Vec<&[f64]> = streams.iter().map(|s| s.as_slice()).collect();
            feed_all(handles, &slices).expect("feed completes");
        });
        prop_assert_eq!(results.len(), streams.len());
        for (k, r) in results.iter().enumerate() {
            let (want, _) = Pipeline::source_type::<f64>()
                .then(TumblingWindowMean::new(width))
                .run(streams[k].iter().copied());
            prop_assert_eq!(r.records_in as usize, streams[k].len());
            prop_assert_eq!(r.drops, 0u64);
            prop_assert_eq!(&r.output, &want);
        }
    }
}
