//! Fault-injection suite (requires `--features fault-inject`): proves the
//! engine's blast-radius containment contract under deterministic faults.
//!
//! The contract, for every injected fault:
//!
//! 1. **Containment** — streams the plan does not touch produce output
//!    bit-identical to a fault-free run (under a lossless ring policy);
//! 2. **Exact accounting** — every stream's ledger balances:
//!    `records_in + drops + quarantined_after == pushed`, and the
//!    feeder-side `offered == accepted + rejected` with
//!    `accepted == pushed`;
//! 3. **Attribution** — a stream ends quarantined only if the plan
//!    targeted it, with the cause and record index preserved.

use proptest::prelude::*;
use stream_engine::{
    drive, serve, silence_injected_panics, Backpressure, DriveOutcome, EngineConfig, FaultKind,
    FaultPlan, FaultingOperator, GuardConfig, GuardTrip, QuarantineCause, RetryPolicy, RingConfig,
    StreamFault, StreamOptions, StreamResult, StreamState, TumblingWindowMean,
    INJECTED_PANIC_PREFIX,
};

/// Deterministic synthetic feeds: per-stream phase-shifted sines with a
/// small varying ramp, so no clean stream ever repeats a value twice in
/// a row (the flatline guard must stay quiet on clean data).
fn synth(n_streams: usize, points: usize) -> Vec<Vec<f64>> {
    (0..n_streams)
        .map(|k| {
            (0..points)
                .map(|t| (t as f64 * 0.17 + k as f64 * 1.3).sin() * 10.0 + (t % 13) as f64 * 0.01)
                .collect()
        })
        .collect()
}

fn plan_one(stream: usize, kind: FaultKind) -> FaultPlan {
    FaultPlan {
        seed: 0,
        faults: vec![StreamFault { stream, kind }],
    }
}

/// Serves `data` through `FaultingOperator<TumblingWindowMean>` under
/// `plan`, with the plan's data faults applied. Storm-targeted streams
/// get a tiny `error`-policy ring (the only policy under which storms
/// reject); everything else uses (`ring_cap`, `policy`).
fn run_fleet(
    data: &[Vec<f64>],
    plan: &FaultPlan,
    shards: usize,
    policy: Backpressure,
    ring_cap: usize,
    guard: Option<GuardConfig>,
    width: usize,
) -> (Vec<StreamResult<f64>>, DriveOutcome) {
    let mut corrupted: Vec<Vec<f64>> = data.to_vec();
    for (k, xs) in corrupted.iter_mut().enumerate() {
        plan.corrupt(k, xs);
    }
    let (results, outcome) = serve(EngineConfig::new(shards), |engine| {
        let handles: Vec<_> = (0..corrupted.len())
            .map(|k| {
                let kind = plan.fault_for(k);
                let ring = if matches!(kind, Some(FaultKind::OverflowStorm { .. })) {
                    RingConfig::new(8, Backpressure::Error)
                } else {
                    RingConfig::new(ring_cap, policy)
                };
                engine.register_with(
                    StreamOptions {
                        ring,
                        guard,
                        ..StreamOptions::default()
                    },
                    move || FaultingOperator::new(TumblingWindowMean::new(width), kind),
                )
            })
            .collect();
        drive(handles, &corrupted, plan, &RetryPolicy::default())
    });
    (results, outcome.expect("feeder completes under faults"))
}

/// The containment + accounting invariant, checked stream by stream.
/// `lossless` additionally demands clean streams be bit-identical to
/// `baseline` (only valid under the `block` policy).
fn assert_contained(
    results: &[StreamResult<f64>],
    baseline: &[StreamResult<f64>],
    outcome: &DriveOutcome,
    plan: &FaultPlan,
    points: usize,
    lossless: bool,
) {
    assert_eq!(results.len(), baseline.len());
    for (k, r) in results.iter().enumerate() {
        assert_eq!(
            r.records_in + r.drops + r.quarantined_after,
            r.pushed,
            "stream {k}: ledger out of balance"
        );
        assert_eq!(
            outcome.offered[k],
            outcome.accepted[k] + outcome.rejected[k],
            "stream {k}: offered != accepted + rejected"
        );
        assert_eq!(
            outcome.accepted[k], r.pushed,
            "stream {k}: feeder accepted disagrees with ring pushed"
        );
        if r.is_quarantined() {
            assert!(
                plan.fault_for(k).is_some(),
                "stream {k} quarantined without being targeted: {:?}",
                r.state
            );
        } else if plan.is_clean(k) && lossless {
            assert!(matches!(r.state, StreamState::Done), "stream {k} not done");
            assert_eq!(r.records_in, points as u64, "stream {k} lost records");
            assert_eq!(r.drops, 0, "stream {k} dropped records");
            assert_eq!(
                r.output, baseline[k].output,
                "stream {k} output diverged from the fault-free run"
            );
        }
    }
}

const STREAMS: usize = 12;
const POINTS: usize = 2_000;
const SHARDS: usize = 3;

#[test]
fn operator_panic_is_contained_to_its_stream() {
    silence_injected_panics();
    let data = synth(STREAMS, POINTS);
    let clean = FaultPlan::none();
    let (baseline, _) = run_fleet(&data, &clean, SHARDS, Backpressure::Block, 32, None, 7);
    let plan = plan_one(4, FaultKind::PanicAt { record: 500 });
    let (results, outcome) = run_fleet(&data, &plan, SHARDS, Backpressure::Block, 32, None, 7);
    assert_contained(&results, &baseline, &outcome, &plan, POINTS, true);

    let r = &results[4];
    assert!(r.is_quarantined());
    let (cause, at_record) = r.quarantine().expect("stream 4 is quarantined");
    assert_eq!(at_record, 500, "quarantine records the faulting position");
    match cause {
        QuarantineCause::OperatorPanic { message } => {
            assert!(message.starts_with(INJECTED_PANIC_PREFIX), "{message}");
        }
        other => panic!("expected an operator panic cause, got {other}"),
    }
    assert_eq!(r.records_in, 500, "records before the fault were processed");
    assert_eq!(
        r.quarantined_after,
        r.pushed - 500,
        "everything from the faulting record on is drained and discarded"
    );
    assert_eq!(
        results.iter().filter(|r| r.is_quarantined()).count(),
        1,
        "exactly one stream quarantined"
    );
}

#[test]
fn flush_panic_quarantines_after_full_processing() {
    silence_injected_panics();
    let data = synth(STREAMS, POINTS);
    let clean = FaultPlan::none();
    let (baseline, _) = run_fleet(&data, &clean, SHARDS, Backpressure::Block, 32, None, 7);
    let plan = plan_one(2, FaultKind::PanicInFlush);
    let (results, outcome) = run_fleet(&data, &plan, SHARDS, Backpressure::Block, 32, None, 7);
    assert_contained(&results, &baseline, &outcome, &plan, POINTS, true);

    let r = &results[2];
    let (cause, at_record) = r.quarantine().expect("flush panic quarantines");
    assert!(matches!(cause, QuarantineCause::OperatorPanic { .. }));
    assert_eq!(at_record, POINTS as u64, "the fault hit at end-of-stream");
    assert_eq!(r.records_in, POINTS as u64, "every record was processed");
    assert_eq!(r.quarantined_after, 0, "nothing was left to discard");
}

#[test]
fn nan_burst_trips_the_guard_on_exactly_its_stream() {
    silence_injected_panics();
    let data = synth(STREAMS, POINTS);
    let guard = Some(GuardConfig::new(4, 0));
    let clean = FaultPlan::none();
    let (baseline, _) = run_fleet(&data, &clean, SHARDS, Backpressure::Block, 32, guard, 7);
    let plan = plan_one(1, FaultKind::NanBurst { at: 600, len: 9 });
    let (results, outcome) = run_fleet(&data, &plan, SHARDS, Backpressure::Block, 32, guard, 7);
    assert_contained(&results, &baseline, &outcome, &plan, POINTS, true);

    let r = &results[1];
    let (cause, at_record) = r.quarantine().expect("a 9-NaN burst trips a 4-NaN guard");
    assert!(
        matches!(
            cause,
            QuarantineCause::InputGuard(GuardTrip::NanBurst { len: 4 })
        ),
        "unexpected cause: {cause}"
    );
    // NaNs at 600..=602 heal (3 of them); the 4th consecutive NaN at
    // index 603 trips the guard before being consumed.
    assert_eq!(at_record, 603);
    assert_eq!(r.records_in, 603);
    assert_eq!(r.healed, 3, "the burst prefix healed before the trip");
}

#[test]
fn short_nan_burst_heals_without_quarantine() {
    silence_injected_panics();
    let data = synth(STREAMS, POINTS);
    let guard = Some(GuardConfig::new(8, 0));
    let clean = FaultPlan::none();
    let (baseline, _) = run_fleet(&data, &clean, SHARDS, Backpressure::Block, 32, guard, 7);
    let plan = plan_one(5, FaultKind::NanBurst { at: 600, len: 3 });
    let (results, outcome) = run_fleet(&data, &plan, SHARDS, Backpressure::Block, 32, guard, 7);
    assert_contained(&results, &baseline, &outcome, &plan, POINTS, true);

    let r = &results[5];
    assert!(!r.is_quarantined(), "a sub-threshold burst must heal");
    assert!(matches!(r.state, StreamState::Done));
    assert_eq!(r.records_in, POINTS as u64);
    assert_eq!(
        r.healed, 3,
        "each NaN was healed with the last finite value"
    );
    // Healing substitutes values, so means differ — but no record is
    // lost: the output shape matches the fault-free run exactly.
    assert_eq!(r.output.len(), baseline[5].output.len());
}

#[test]
fn source_stall_delays_but_loses_nothing() {
    silence_injected_panics();
    let data = synth(STREAMS, POINTS);
    let clean = FaultPlan::none();
    let (baseline, _) = run_fleet(&data, &clean, SHARDS, Backpressure::Block, 32, None, 7);
    let plan = plan_one(
        0,
        FaultKind::Stall {
            at: 700,
            millis: 30,
        },
    );
    let (results, outcome) = run_fleet(&data, &plan, SHARDS, Backpressure::Block, 32, None, 7);
    assert_contained(&results, &baseline, &outcome, &plan, POINTS, true);

    // A stall is pure latency: even the targeted stream finishes with
    // bit-identical output.
    let r = &results[0];
    assert!(matches!(r.state, StreamState::Done));
    assert_eq!(r.output, baseline[0].output);
    assert_eq!(r.records_in, POINTS as u64);
}

#[test]
fn overflow_storm_rejections_are_counted_at_the_edge() {
    silence_injected_panics();
    let data = synth(STREAMS, POINTS);
    let clean = FaultPlan::none();
    let (baseline, _) = run_fleet(&data, &clean, SHARDS, Backpressure::Block, 32, None, 7);
    let plan = plan_one(3, FaultKind::OverflowStorm { at: 500, len: 800 });
    let (results, outcome) = run_fleet(&data, &plan, SHARDS, Backpressure::Block, 32, None, 7);
    assert_contained(&results, &baseline, &outcome, &plan, POINTS, true);

    // Every record was offered exactly once; under the error policy a
    // rejection is real loss at the edge, never silent.
    let r = &results[3];
    assert_eq!(outcome.offered[3], POINTS as u64);
    assert!(
        matches!(r.state, StreamState::Done),
        "storms never quarantine"
    );
    assert_eq!(r.drops, 0, "error policy drops nothing silently");
    assert_eq!(r.records_in, POINTS as u64 - outcome.rejected[3]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(debug_assertions) { 6 } else { 16 }))]

    /// Arbitrary seeded fault plans interleaved with ring policies and
    /// shard counts: containment, attribution, and exact accounting must
    /// hold for every combination. `PROPTEST_SEED` rotates the plans in
    /// CI; any failure replays locally with the printed seed.
    #[test]
    fn seeded_fault_plans_never_breach_containment(
        seed in 0u64..u64::MAX,
        shards in 1usize..5,
        ring_cap in 4usize..33,
        policy_pick in 0usize..2,
    ) {
        let drop_oldest = policy_pick == 1;
        silence_injected_panics();
        let (n_streams, points) = (6usize, 400usize);
        let data = synth(n_streams, points);
        let guard = Some(GuardConfig::new(4, 6));
        let clean = FaultPlan::none();
        let (baseline, _) =
            run_fleet(&data, &clean, shards, Backpressure::Block, ring_cap, guard, 5);
        let policy = if drop_oldest { Backpressure::DropOldest } else { Backpressure::Block };
        let plan = FaultPlan::seeded(seed, n_streams, points, 0.4);
        let (results, outcome) = run_fleet(&data, &plan, shards, policy, ring_cap, guard, 5);
        // Bit-identity for clean streams is only promised by lossless
        // rings; the ledger and attribution invariants hold regardless.
        assert_contained(&results, &baseline, &outcome, &plan, points, !drop_oldest);
    }
}
