//! The multi-stream serving engine: a sharded worker pool over bounded
//! SPSC ring buffers.
//!
//! The paper's throughput experiment (§4.4) deploys ClaSS inside Apache
//! Flink and shows feed rates far above real sensor rates. Flink scales
//! by *keyed sharding*: operators for many streams are multiplexed onto a
//! fixed set of task slots, records travel through bounded network
//! buffers, and no stream owns a thread. This module reproduces that
//! execution model:
//!
//! * [`serve`] opens an engine with `shards` worker threads. Serving any
//!   number of streams costs exactly `shards + 1` threads — the workers
//!   plus the caller's ingest thread; there is no per-stream source
//!   thread.
//! * Each registered stream is a **state machine** (its operator plus a
//!   ring consumer) hash-assigned to a shard and stepped by that shard's
//!   event loop in drained batches.
//! * Records travel through fixed-capacity [`crate::ring`] buffers whose
//!   full-ring behaviour is the per-stream [`Backpressure`] policy
//!   (block / drop-oldest / error).
//! * [`ServingEngine::stats`] takes a live [`ServingStats`] snapshot —
//!   per-stream and per-shard p50/p99 latency, queue depth, and drop
//!   counts — while the engine runs. [`ServingEngine::stats_handle`]
//!   hands out a cloneable, `'static` [`StatsHandle`] to the same
//!   snapshots, so an exporter thread (see [`crate::metrics`]) can keep
//!   observing the engine from outside the serving scope, and
//!   [`ServingEngine::serve_metrics`] binds a Prometheus/JSON HTTP
//!   endpoint over it in one call.
//!
//! ## Fault tolerance
//!
//! A long-running deployment must survive a faulting stream, not die
//! with it. Three mechanisms contain faults to the stream that raised
//! them:
//!
//! * **Panic isolation + quarantine.** Every operator step and flush runs
//!   under [`std::panic::catch_unwind`]. A panicking operator moves its
//!   stream to [`StreamState::Quarantined`] with the panic message and
//!   the record index where processing stopped; the shard worker and all
//!   sibling streams keep running. A quarantined stream's ring keeps
//!   draining (so its producer never deadlocks) but the drained records
//!   are discarded and counted, preserving the accounting ledger
//!   `records_in + drops + quarantined_after == pushed` for every stream.
//! * **Input guards.** [`StreamOptions::guard`] installs a per-stream
//!   [`InputGuard`] that heals or skips non-finite values and quarantines
//!   on NaN bursts or flatlined (stuck-at) feeds before degraded data
//!   reaches operator state.
//! * **Ingest retry/backoff.** [`StreamHandle::push_with_retry`] and
//!   [`feed_all`] return typed [`IngestError`]s — bounded
//!   exponential-backoff retries under a [`RetryPolicy`] instead of
//!   panicking on transient ring-full or a wedged engine.
//!
//! ```
//! use stream_engine::{serve, EngineConfig, MapOperator};
//!
//! fn double(x: f64) -> f64 {
//!     x * 2.0
//! }
//!
//! let (results, ()) = serve(EngineConfig::new(2), |engine| {
//!     let mut handles: Vec<_> = (0..8)
//!         .map(|_| engine.register(|| MapOperator::new(double as fn(f64) -> f64)))
//!         .collect();
//!     for h in &mut handles {
//!         for v in 0..100 {
//!             h.push(v as f64).unwrap();
//!         }
//!     }
//! });
//! assert_eq!(results.len(), 8);
//! assert!(results.iter().all(|r| r.records_in == 100));
//! ```

use crate::guard::{GuardConfig, GuardTrip, GuardVerdict, InputGuard};
use crate::latency::{LatencyHistogram, ServingStats, ShardStats, StreamStats};
use crate::operator::Operator;
use crate::ring::{self, PushError, RingConfig, RingCounters};
use crate::Record;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Records a shard worker moves out of a ring per lock acquisition.
const DRAIN_BATCH: usize = 256;
/// Records the bulk feeder pushes per ring visit.
const FEED_CHUNK: usize = 64;
/// How long an idle worker (or starved feeder) sleeps before re-polling.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Locks a monitor mutex, recovering from poisoning. Monitor state
/// (latency histogram, quarantine cell) is only ever mutated by the
/// owning shard between operator steps — never *during* user code — so a
/// poisoned lock means some unrelated holder panicked while the data
/// itself is consistent; stats must keep flowing for surviving streams.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Engine-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads; streams are hash-partitioned across them.
    pub shards: usize,
    /// Default ring configuration for [`ServingEngine::register`].
    pub ring: RingConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            ring: RingConfig::default(),
        }
    }
}

impl EngineConfig {
    /// A config with `shards` workers and default rings.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// How a shard attributes operator time to the latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Timing {
    /// Two clock reads per record: exact per-record latencies. Right for
    /// operators whose step dominates a clock read (ClaSS: microseconds).
    #[default]
    PerRecord,
    /// Two clock reads per drained batch; the batch average is recorded
    /// for each record ([`LatencyHistogram::record_n`]). Right for
    /// nanosecond-scale operators the per-record clock would distort.
    Batch,
}

/// Per-stream registration options.
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    /// Ring capacity and backpressure policy.
    pub ring: RingConfig,
    /// Latency attribution granularity.
    pub timing: Timing,
    /// Pin to a specific shard (modulo the shard count) instead of the
    /// default hash assignment — for callers that balance load
    /// themselves (e.g. the eval matrix runner's bin packing).
    pub shard: Option<usize>,
    /// Degraded-input policy, consulted per record before the operator.
    /// `None` (the default) delivers values verbatim with zero overhead.
    pub guard: Option<GuardConfig>,
    /// Human-readable stream name, carried into [`StreamStats`] and the
    /// metrics exposition's `name` label (e.g. an archive file name).
    /// Defaults to `stream-<id>` so label sets stay stable without it.
    pub name: Option<String>,
}

/// Why a stream was taken out of service.
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineCause {
    /// The operator panicked during `process` or `flush`; the payload's
    /// message is preserved.
    OperatorPanic {
        /// The panic payload, stringified.
        message: String,
    },
    /// The stream's [`InputGuard`] tripped on degraded input.
    InputGuard(GuardTrip),
}

impl std::fmt::Display for QuarantineCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineCause::OperatorPanic { message } => {
                write!(f, "operator panic: {message}")
            }
            QuarantineCause::InputGuard(trip) => write!(f, "input guard: {trip}"),
        }
    }
}

/// Lifecycle state of a served stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum StreamState {
    /// Registered and being served.
    #[default]
    Active,
    /// Closed, drained, and flushed normally.
    Done,
    /// Taken out of service at `at_record`; subsequent input is drained
    /// from the ring and discarded (counted as `quarantined_after`) so
    /// the producer never wedges.
    Quarantined {
        /// What took the stream down.
        cause: QuarantineCause,
        /// Records processed before the fault — the index of the first
        /// record the operator did *not* complete.
        at_record: u64,
    },
}

impl StreamState {
    /// Whether the stream was quarantined.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, StreamState::Quarantined { .. })
    }

    /// Quarantine cause and fault position, if quarantined.
    pub fn quarantine(&self) -> Option<(&QuarantineCause, u64)> {
        match self {
            StreamState::Quarantined { cause, at_record } => Some((cause, *at_record)),
            _ => None,
        }
    }
}

impl std::fmt::Display for StreamState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamState::Active => write!(f, "active"),
            StreamState::Done => write!(f, "done"),
            StreamState::Quarantined { cause, at_record } => {
                write!(f, "quarantined at record {at_record}: {cause}")
            }
        }
    }
}

/// Bounded exponential backoff for ingest retries: attempt `k` sleeps
/// `min(base_delay << k, max_delay)` before retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total push attempts (>= 1); `1` means fail on the first overflow.
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_delay: Duration,
    /// Cap on the per-retry sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Twelve attempts, 100 µs doubling to a 20 ms cap — rides out a
    /// consumer pause of ~100 ms before giving up.
    fn default() -> Self {
        Self {
            max_attempts: 12,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first overflow.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Sleep before retry number `attempt` (0-based).
    fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        exp.min(self.max_delay)
    }
}

/// Stall detection for [`feed_all`]: the feeder gives up only after
/// `FEED_STALL_ROUNDS` *consecutive* no-progress rounds with exponential
/// backoff between them (~20 s of total silence across every stream) —
/// generous enough that only a genuinely wedged engine trips it.
const FEED_STALL_ROUNDS: u32 = 400;
const FEED_STALL_MAX_DELAY: Duration = Duration::from_millis(50);

/// A typed ingest failure, returned instead of panicking the feeder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Every attempt found the ring full under the `error` policy.
    RetriesExhausted {
        /// Stream whose ring rejected the record.
        stream: usize,
        /// Attempts made (the policy's `max_attempts`).
        attempts: u32,
        /// Capacity of the rejecting ring.
        capacity: usize,
    },
    /// The stream's shard is gone; no record can be delivered.
    Disconnected {
        /// Stream whose consumer disappeared.
        stream: usize,
    },
    /// No stream accepted a single record for the full stall window: the
    /// engine is wedged (or an operator is blocked indefinitely).
    Stalled {
        /// Cumulative time slept with zero progress.
        waited: Duration,
        /// Streams that still had data to deliver.
        pending: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::RetriesExhausted {
                stream,
                attempts,
                capacity,
            } => write!(
                f,
                "stream {stream}: ring (capacity {capacity}) still full after {attempts} attempts"
            ),
            IngestError::Disconnected { stream } => {
                write!(f, "stream {stream}: shard worker disconnected")
            }
            IngestError::Stalled { waited, pending } => write!(
                f,
                "ingest stalled: no progress on {pending} pending streams after {waited:?}"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// Shared live-accounting cell, written by the shard and read by
/// [`ServingEngine::stats`].
///
/// Ledger counters cross threads with release/acquire ordering: the
/// shard publishes `records_in` / `quarantined_after` (and the ring its
/// `drops`) with `Release` stores, and [`StatsRegistry::snapshot`] reads
/// them with `Acquire` loads *before* reading `pushed` — so a live
/// snapshot always satisfies
/// `records_in + drops + quarantined_after <= pushed` even mid-batch
/// (every consumed or evicted record's push happens-before the counter
/// value the snapshot observed).
#[derive(Debug)]
struct StreamMonitor {
    id: usize,
    shard: usize,
    name: String,
    records_in: AtomicU64,
    quarantined_after: AtomicU64,
    healed: AtomicU64,
    skipped: AtomicU64,
    done: AtomicBool,
    quarantine: Mutex<Option<(QuarantineCause, u64)>>,
    latency: Mutex<LatencyHistogram>,
    counters: Arc<RingCounters>,
}

impl StreamMonitor {
    fn state(&self) -> StreamState {
        if let Some((cause, at_record)) = lock_recover(&self.quarantine).clone() {
            return StreamState::Quarantined { cause, at_record };
        }
        if self.done.load(Ordering::Relaxed) {
            StreamState::Done
        } else {
            StreamState::Active
        }
    }
}

/// The engine's shared monitor table plus serving clock. Lives behind an
/// `Arc` with no borrowed data, so [`StatsHandle`]s cloned from it are
/// `'static`: a metrics exporter keeps snapshotting (final, frozen
/// stats) even after [`serve`] has returned and the workers are gone.
#[derive(Debug)]
struct StatsRegistry {
    shards: usize,
    started: Instant,
    monitors: Mutex<Vec<Arc<StreamMonitor>>>,
}

impl StatsRegistry {
    fn new(shards: usize) -> Self {
        Self {
            shards,
            started: Instant::now(),
            monitors: Mutex::new(Vec::new()),
        }
    }

    /// Looks up one stream's monitor by id.
    fn monitor(&self, id: usize) -> Option<Arc<StreamMonitor>> {
        lock_recover(&self.monitors)
            .iter()
            .find(|m| m.id == id)
            .cloned()
    }

    /// Takes a consistent-enough live snapshot (see [`StreamMonitor`]
    /// for the ordering contract that keeps the ledger inequality true).
    fn snapshot(&self) -> ServingStats {
        let shards = self.shards;
        let monitors: Vec<Arc<StreamMonitor>> = lock_recover(&self.monitors).clone();
        let uptime = self.started.elapsed();
        let mut streams = Vec::with_capacity(monitors.len());
        let mut shard_hists = vec![LatencyHistogram::new(); shards];
        let mut shard_stats: Vec<ShardStats> = (0..shards)
            .map(|shard| ShardStats {
                shard,
                streams: 0,
                active: 0,
                quarantined: 0,
                records_in: 0,
                drops: 0,
                queue_depth: 0,
                p50: Duration::ZERO,
                p99: Duration::ZERO,
            })
            .collect();
        for m in monitors.iter() {
            let hist = lock_recover(&m.latency).clone();
            // Ledger left-hand side first (Acquire), `pushed` last: any
            // record counted below was pushed before these loads, so the
            // later `pushed` read can only be >= the sum.
            let records_in = m.records_in.load(Ordering::Acquire);
            let drops = m.counters.drops.load(Ordering::Acquire);
            let quarantined_after = m.quarantined_after.load(Ordering::Acquire);
            let pushed = m.counters.pushed.load(Ordering::Acquire);
            let queue_depth = m.counters.depth();
            let done = m.done.load(Ordering::Relaxed);
            let state = m.state();
            let agg = &mut shard_stats[m.shard];
            agg.streams += 1;
            agg.active += usize::from(!done);
            agg.quarantined += usize::from(state.is_quarantined());
            agg.records_in += records_in;
            agg.drops += drops;
            agg.queue_depth += queue_depth;
            shard_hists[m.shard].merge(&hist);
            streams.push(StreamStats {
                stream: m.id,
                name: m.name.clone(),
                shard: m.shard,
                records_in,
                drops,
                quarantined_after,
                pushed,
                healed: m.healed.load(Ordering::Relaxed),
                skipped: m.skipped.load(Ordering::Relaxed),
                retries: m.counters.retries.load(Ordering::Relaxed),
                queue_depth,
                done,
                state,
                p50: hist.quantile(0.5),
                p99: hist.quantile(0.99),
                mean: hist.mean(),
            });
        }
        // Concurrent registrars may interleave monitor insertion, so the
        // table order is not guaranteed to be id order; the snapshot is.
        streams.sort_by_key(|s| s.stream);
        for (agg, hist) in shard_stats.iter_mut().zip(&shard_hists) {
            agg.p50 = hist.quantile(0.5);
            agg.p99 = hist.quantile(0.99);
        }
        ServingStats {
            streams,
            shards: shard_stats,
            uptime,
        }
    }
}

/// A cloneable, `'static` window onto a serving engine's live stats.
///
/// Obtained from [`ServingEngine::stats_handle`]; every call to
/// [`StatsHandle::stats`] takes a fresh [`ServingStats`] snapshot. The
/// handle stays valid after [`serve`] returns — it then reports the
/// final, frozen accounting — which is what lets a metrics endpoint or
/// snapshot writer run on a plain `std::thread::spawn` thread.
#[derive(Debug, Clone)]
pub struct StatsHandle {
    registry: Arc<StatsRegistry>,
}

impl StatsHandle {
    /// Takes a live snapshot (identical to [`ServingEngine::stats`]).
    pub fn stats(&self) -> ServingStats {
        self.registry.snapshot()
    }
}

/// The producer end of one registered stream. Push records with
/// [`StreamHandle::push`] / [`StreamHandle::try_feed`]; drop the handle
/// to close the stream (the shard drains the ring, flushes the operator,
/// and reports the stream's [`StreamResult`]).
#[derive(Debug)]
pub struct StreamHandle {
    producer: ring::Producer<Record<f64>>,
    id: usize,
    t: u64,
    scratch: Vec<Record<f64>>,
}

impl StreamHandle {
    /// Stream id (registration order); results are sorted by it.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Pushes one observation, stamping it with the next source
    /// position. Applies the stream's backpressure policy: `Block`
    /// waits, `DropOldest` always succeeds (evicting), `Error` fails
    /// with a typed overflow. The source position advances on every
    /// call — under `Error` a rejected observation's position is
    /// consumed, like a sensor reading lost at the edge.
    pub fn push(&mut self, value: f64) -> Result<(), PushError> {
        let rec = Record::new(self.t, value);
        self.t += 1;
        self.producer.push(rec)
    }

    /// [`StreamHandle::push`] with bounded exponential-backoff retries
    /// on transient ring-full under the `error` policy, returning a
    /// typed [`IngestError`] once the policy is exhausted. As with
    /// `push`, the source position is consumed exactly once per call,
    /// whether or not the record is eventually accepted.
    pub fn push_with_retry(&mut self, value: f64, retry: &RetryPolicy) -> Result<(), IngestError> {
        let rec = Record::new(self.t, value);
        self.t += 1;
        let attempts = retry.max_attempts.max(1);
        for attempt in 0..attempts {
            match self.producer.push(rec) {
                Ok(()) => {
                    if attempt > 0 {
                        self.producer.note_retries(u64::from(attempt));
                    }
                    return Ok(());
                }
                Err(PushError::Disconnected) => {
                    return Err(IngestError::Disconnected { stream: self.id })
                }
                Err(PushError::Overflow(e)) => {
                    if attempt + 1 == attempts {
                        self.producer.note_retries(u64::from(attempt));
                        return Err(IngestError::RetriesExhausted {
                            stream: self.id,
                            attempts,
                            capacity: e.capacity,
                        });
                    }
                    std::thread::sleep(retry.delay(attempt));
                }
            }
        }
        unreachable!("the retry loop returns on every branch of its final attempt")
    }

    /// Non-blocking bulk push of up to one ring capacity of
    /// observations under one ring lock; returns how many were accepted
    /// (the source position advances by exactly that many). Never
    /// blocks and never reports overflow — it accepts what fits
    /// (everything offered, under `DropOldest`). Callers that want a
    /// smaller granularity (e.g. fairness across many streams, as in
    /// [`feed_all`]) pass a smaller slice.
    pub fn try_feed(&mut self, values: &[f64]) -> Result<usize, PushError> {
        self.scratch.clear();
        self.scratch.extend(
            values
                .iter()
                .take(self.producer.capacity())
                .enumerate()
                .map(|(i, &v)| Record::new(self.t + i as u64, v)),
        );
        let n = self.producer.try_feed(&self.scratch)?;
        self.t += n as u64;
        Ok(n)
    }

    /// Records currently queued in this stream's ring.
    pub fn queue_depth(&self) -> usize {
        self.producer.depth()
    }

    /// Records evicted so far by the `drop-oldest` policy.
    pub fn drops(&self) -> u64 {
        self.producer.drops()
    }

    /// Records accepted into the ring so far (rejected pushes excluded).
    pub fn pushed(&self) -> u64 {
        self.producer.pushed()
    }

    /// Closes the stream (equivalent to dropping the handle).
    pub fn close(self) {}
}

/// Everything a shard needs to start serving one stream. The operator is
/// built *on* the shard via the factory, so it never crosses threads.
struct NewStream<'env, Op> {
    id: usize,
    consumer: ring::Consumer<Record<f64>>,
    factory: Box<dyn FnOnce() -> Op + Send + 'env>,
    monitor: Arc<StreamMonitor>,
    timing: Timing,
    guard: Option<GuardConfig>,
}

/// Final accounting for one served stream. The ledger is exact for every
/// stream, faulted or not:
/// `records_in + drops + quarantined_after == pushed`.
#[derive(Debug, Clone)]
pub struct StreamResult<Out> {
    /// Stream id (registration order).
    pub stream: usize,
    /// Shard that served the stream.
    pub shard: usize,
    /// Output records emitted by the operator (flush included; for a
    /// quarantined stream, whatever was emitted before the fault).
    pub output: Vec<Record<Out>>,
    /// Records consumed while healthy: operator-processed plus
    /// guard-healed/skipped.
    pub records_in: u64,
    /// Records evicted by the `drop-oldest` backpressure policy. For a
    /// lossless policy this is 0 and `records_in` equals the pushes.
    pub drops: u64,
    /// Records drained and discarded after (and including) the fault.
    /// Zero for a healthy stream.
    pub quarantined_after: u64,
    /// Records accepted into the ring over the stream's lifetime.
    pub pushed: u64,
    /// Non-finite values replaced by the input guard.
    pub healed: u64,
    /// Records the input guard dropped before the operator.
    pub skipped: u64,
    /// Ingest backoff retries performed against this stream's ring.
    pub retries: u64,
    /// Terminal state: [`StreamState::Done`] or
    /// [`StreamState::Quarantined`].
    pub state: StreamState,
    /// Operator-busy wall time (processing + flush, excluding queueing).
    pub busy: Duration,
    /// Per-record operator latency distribution.
    pub latency: LatencyHistogram,
}

impl<Out> StreamResult<Out> {
    /// Operator throughput in records per second of busy time.
    pub fn throughput(&self) -> f64 {
        self.records_in as f64 / self.busy.as_secs_f64().max(1e-9)
    }

    /// Whether the stream ended quarantined.
    pub fn is_quarantined(&self) -> bool {
        self.state.is_quarantined()
    }

    /// Quarantine cause and fault position, if quarantined.
    pub fn quarantine(&self) -> Option<(&QuarantineCause, u64)> {
        self.state.quarantine()
    }

    /// Left-hand side of the accounting ledger; equals
    /// [`StreamResult::pushed`] for every completed stream.
    pub fn accounted(&self) -> u64 {
        self.records_in + self.drops + self.quarantined_after
    }
}

/// A running engine, usable only inside [`serve`]'s body closure.
///
/// Registration (and pushing, via the returned [`StreamHandle`]s)
/// happens on the caller's thread; the `shards` workers step the stream
/// state machines. All handles must be dropped before the body returns —
/// an open handle means an unfinished stream and [`serve`] would wait
/// for it forever.
pub struct ServingEngine<'scope, 'env, Op>
where
    Op: Operator<In = f64>,
    Op::Out: Send,
{
    config: EngineConfig,
    inboxes: Vec<mpsc::Sender<NewStream<'env, Op>>>,
    workers: Vec<std::thread::ScopedJoinHandle<'scope, Vec<StreamResult<Op::Out>>>>,
    registry: Arc<StatsRegistry>,
    next_id: Arc<AtomicUsize>,
}

impl<'scope, 'env, Op> ServingEngine<'scope, 'env, Op>
where
    Op: Operator<In = f64> + 'env,
    Op::Out: Send + 'env,
{
    fn start(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        config: EngineConfig,
    ) -> ServingEngine<'scope, 'env, Op> {
        let shards = config.shards.max(1);
        let mut inboxes = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel::<NewStream<'env, Op>>();
            inboxes.push(tx);
            workers.push(scope.spawn(move || shard_worker(rx)));
        }
        ServingEngine {
            config: EngineConfig { shards, ..config },
            inboxes,
            workers,
            registry: Arc::new(StatsRegistry::new(shards)),
            next_id: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Worker threads the engine holds (== configured shards).
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Registers a stream with the engine-default ring and timing; the
    /// operator is built on the owning shard via `factory`.
    pub fn register(&mut self, factory: impl FnOnce() -> Op + Send + 'env) -> StreamHandle {
        self.register_with(
            StreamOptions {
                ring: self.config.ring,
                ..StreamOptions::default()
            },
            factory,
        )
    }

    /// Registers a stream with explicit per-stream options.
    pub fn register_with(
        &mut self,
        opts: StreamOptions,
        factory: impl FnOnce() -> Op + Send + 'env,
    ) -> StreamHandle {
        self.register_stream(opts, factory)
            .expect("registration inbox open: workers hold receivers until join()")
    }

    /// Registers a stream at runtime, returning a typed error instead of
    /// panicking if the engine is no longer accepting registrations.
    /// Equivalent to [`ServingEngine::register_with`] otherwise.
    pub fn register_stream(
        &mut self,
        opts: StreamOptions,
        factory: impl FnOnce() -> Op + Send + 'env,
    ) -> Result<StreamHandle, RegisterError> {
        register_stream_inner(&self.inboxes, &self.registry, &self.next_id, opts, factory)
    }

    /// Detaches a stream from the live engine: closes its handle, waits
    /// for the owning shard to drain, flush, and retire it, and returns
    /// the stream's final (exact) ledger. The engine keeps serving every
    /// other stream throughout — this is the shard-safe handoff the
    /// network tier uses when a producer sends DETACH.
    pub fn detach_stream(&self, handle: StreamHandle) -> DetachReport {
        detach_stream_inner(&self.registry, handle)
    }

    /// A cloneable, `Send` registration surface over this engine.
    ///
    /// A [`Registrar`] can leave the body closure's thread — the network
    /// ingest tier hands one clone to each producer connection thread —
    /// and registers/detaches streams on the live engine exactly like
    /// [`ServingEngine::register_stream`] / [`ServingEngine::detach_stream`].
    ///
    /// **Shutdown contract:** every clone must be dropped before the
    /// [`serve`] body returns. Shard workers keep running while any
    /// registrar holds their inboxes open, so a leaked clone would make
    /// `serve` wait forever.
    pub fn registrar(&self) -> Registrar<'env, Op> {
        Registrar {
            inboxes: self.inboxes.clone(),
            registry: Arc::clone(&self.registry),
            next_id: Arc::clone(&self.next_id),
            default_ring: self.config.ring,
        }
    }

    /// Takes a live snapshot of per-stream and per-shard accounting.
    pub fn stats(&self) -> ServingStats {
        self.registry.snapshot()
    }

    /// A cloneable, `'static` [`StatsHandle`] over the same snapshots as
    /// [`ServingEngine::stats`] — hand it to exporter threads (it stays
    /// valid, frozen, after [`serve`] returns).
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle {
            registry: Arc::clone(&self.registry),
        }
    }

    /// Binds a [`crate::metrics::MetricsServer`] on `addr` (e.g.
    /// `"127.0.0.1:9599"`, port `0` for ephemeral) and attaches this
    /// engine's stats to it: `GET /metrics` serves Prometheus text
    /// exposition, `GET /stats.json` the JSON snapshot. The returned
    /// server keeps serving (final stats) until dropped.
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<crate::metrics::MetricsServer> {
        let server = crate::metrics::MetricsServer::bind(addr)?;
        server.attach(self.stats_handle());
        Ok(server)
    }

    fn join(self) -> Vec<StreamResult<Op::Out>> {
        // Closing the inboxes tells workers no more registrations come;
        // they exit once every assigned stream is closed and drained.
        drop(self.inboxes);
        let registered = self.next_id.load(Ordering::Relaxed);
        let mut results: Vec<StreamResult<Op::Out>> = Vec::with_capacity(registered);
        for w in self.workers {
            results.extend(
                w.join().expect(
                    "shard workers never panic: operator faults are caught and quarantined",
                ),
            );
        }
        results.sort_by_key(|r| r.stream);
        results
    }
}

/// Registration refused: the engine is shutting down and its shard
/// workers no longer accept new streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterError;

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stream registration refused: the engine is shutting down"
        )
    }
}

impl std::error::Error for RegisterError {}

/// Final per-stream accounting returned by a detach. The ledger is
/// exact: `records_in + drops + quarantined_after == pushed` — the
/// shard has drained, flushed, and retired the stream before the
/// detach call returns.
#[derive(Debug, Clone)]
pub struct DetachReport {
    /// Stream id (registration order).
    pub stream: usize,
    /// Records consumed while healthy.
    pub records_in: u64,
    /// Records evicted by the `drop-oldest` policy.
    pub drops: u64,
    /// Records drained and discarded after a fault.
    pub quarantined_after: u64,
    /// Records accepted into the ring over the stream's lifetime.
    pub pushed: u64,
    /// Terminal state: [`StreamState::Done`] or quarantined.
    pub state: StreamState,
}

/// A cloneable, `Send` registration surface over a live engine — see
/// [`ServingEngine::registrar`] for semantics and the shutdown contract.
pub struct Registrar<'env, Op>
where
    Op: Operator<In = f64>,
    Op::Out: Send,
{
    inboxes: Vec<mpsc::Sender<NewStream<'env, Op>>>,
    registry: Arc<StatsRegistry>,
    next_id: Arc<AtomicUsize>,
    default_ring: RingConfig,
}

impl<'env, Op> Clone for Registrar<'env, Op>
where
    Op: Operator<In = f64>,
    Op::Out: Send,
{
    fn clone(&self) -> Self {
        Self {
            inboxes: self.inboxes.clone(),
            registry: Arc::clone(&self.registry),
            next_id: Arc::clone(&self.next_id),
            default_ring: self.default_ring,
        }
    }
}

impl<'env, Op> std::fmt::Debug for Registrar<'env, Op>
where
    Op: Operator<In = f64>,
    Op::Out: Send,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registrar")
            .field("shards", &self.inboxes.len())
            .field("default_ring", &self.default_ring)
            .finish()
    }
}

impl<'env, Op> Registrar<'env, Op>
where
    Op: Operator<In = f64> + 'env,
    Op::Out: Send + 'env,
{
    /// Registers a stream on the live engine (see
    /// [`ServingEngine::register_stream`]).
    pub fn register_stream(
        &self,
        opts: StreamOptions,
        factory: impl FnOnce() -> Op + Send + 'env,
    ) -> Result<StreamHandle, RegisterError> {
        register_stream_inner(&self.inboxes, &self.registry, &self.next_id, opts, factory)
    }

    /// Detaches a stream and waits for its shard to retire it (see
    /// [`ServingEngine::detach_stream`]).
    pub fn detach_stream(&self, handle: StreamHandle) -> DetachReport {
        detach_stream_inner(&self.registry, handle)
    }

    /// The engine's default ring configuration, for callers (the wire
    /// REGISTER path) that let the engine pick capacity/policy.
    pub fn default_ring(&self) -> RingConfig {
        self.default_ring
    }

    /// A cloneable, `'static` stats handle over the same engine.
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle {
            registry: Arc::clone(&self.registry),
        }
    }
}

/// Shared registration path for [`ServingEngine::register_stream`] and
/// [`Registrar::register_stream`].
fn register_stream_inner<'env, Op>(
    inboxes: &[mpsc::Sender<NewStream<'env, Op>>],
    registry: &Arc<StatsRegistry>,
    next_id: &AtomicUsize,
    opts: StreamOptions,
    factory: impl FnOnce() -> Op + Send + 'env,
) -> Result<StreamHandle, RegisterError>
where
    Op: Operator<In = f64> + 'env,
    Op::Out: Send + 'env,
{
    let id = next_id.fetch_add(1, Ordering::Relaxed);
    let shards = inboxes.len();
    let shard = match opts.shard {
        Some(s) => s % shards,
        None => (splitmix64(id as u64) % shards as u64) as usize,
    };
    let (producer, consumer) = ring::ring(opts.ring);
    let monitor = Arc::new(StreamMonitor {
        id,
        shard,
        name: opts.name.unwrap_or_else(|| format!("stream-{id}")),
        records_in: AtomicU64::new(0),
        quarantined_after: AtomicU64::new(0),
        healed: AtomicU64::new(0),
        skipped: AtomicU64::new(0),
        done: AtomicBool::new(false),
        quarantine: Mutex::new(None),
        latency: Mutex::new(LatencyHistogram::new()),
        counters: producer.counters(),
    });
    lock_recover(&registry.monitors).push(Arc::clone(&monitor));
    if inboxes[shard]
        .send(NewStream {
            id,
            consumer,
            factory: Box::new(factory),
            monitor,
            timing: opts.timing,
            guard: opts.guard,
        })
        .is_err()
    {
        // The worker is gone (engine tearing down): undo the monitor so
        // the registry never advertises a stream nobody serves.
        lock_recover(&registry.monitors).retain(|m| m.id != id);
        return Err(RegisterError);
    }
    Ok(StreamHandle {
        producer,
        id,
        t: 0,
        scratch: Vec::with_capacity(FEED_CHUNK),
    })
}

/// Shared detach path: close the handle, wait for the shard to retire
/// the stream, report the final ledger.
fn detach_stream_inner(registry: &Arc<StatsRegistry>, handle: StreamHandle) -> DetachReport {
    let id = handle.id();
    let monitor = registry
        .monitor(id)
        .expect("a live StreamHandle always has a registered monitor");
    drop(handle); // closes the ring: the shard drains, flushes, retires
    while !monitor.done.load(Ordering::Acquire) {
        std::thread::sleep(IDLE_PARK);
    }
    // Acquire on `done` paired with the shard's Release store makes the
    // final counter values below visible: the ledger is exact.
    DetachReport {
        stream: id,
        records_in: monitor.records_in.load(Ordering::Acquire),
        drops: monitor.counters.drops.load(Ordering::Acquire),
        quarantined_after: monitor.quarantined_after.load(Ordering::Acquire),
        pushed: monitor.counters.pushed.load(Ordering::Acquire),
        state: monitor.state(),
    }
}

/// Opens a serving engine, runs `body` with it (register streams, push
/// records, snapshot stats), then drains every stream and returns all
/// [`StreamResult`]s (sorted by stream id) alongside the body's return
/// value. The engine's worker threads live exactly as long as this call.
pub fn serve<'env, Op, R>(
    config: EngineConfig,
    body: impl for<'scope> FnOnce(&mut ServingEngine<'scope, 'env, Op>) -> R,
) -> (Vec<StreamResult<Op::Out>>, R)
where
    Op: Operator<In = f64> + 'env,
    Op::Out: Send + 'env,
{
    std::thread::scope(|scope| {
        let mut engine = ServingEngine::start(scope, config);
        let ret = body(&mut engine);
        (engine.join(), ret)
    })
}

/// Per-stream ingest accounting from one [`feed_all`] run.
#[derive(Debug, Clone, Default)]
pub struct FeedReport {
    /// Records accepted per stream, indexed like the handles.
    pub pushed: Vec<u64>,
    /// No-progress rounds the feeder backed off on (0 = never starved).
    pub backoff_rounds: u64,
}

impl FeedReport {
    /// Total records accepted across all streams.
    pub fn total_pushed(&self) -> u64 {
        self.pushed.iter().sum()
    }
}

/// Drives many in-memory streams to completion through their handles:
/// non-blocking round-robin bulk pushes, so one full ring never stalls
/// the others (no head-of-line blocking), with each handle closed the
/// moment its data is exhausted so its shard can flush early. `handles`
/// and `data` are matched by index.
///
/// Starvation is bounded: if *no* stream accepts a single record for
/// ~20 s of exponentially backed-off rounds, the engine is wedged and
/// `feed_all` returns [`IngestError::Stalled`] instead of spinning
/// forever (a quarantined stream keeps draining, so it never stalls the
/// feeder).
pub fn feed_all(handles: Vec<StreamHandle>, data: &[&[f64]]) -> Result<FeedReport, IngestError> {
    assert_eq!(
        handles.len(),
        data.len(),
        "one data slice per stream handle"
    );
    let mut slots: Vec<Option<StreamHandle>> = handles.into_iter().map(Some).collect();
    let mut cursors = vec![0usize; data.len()];
    let mut remaining = slots.len();
    let mut report = FeedReport {
        pushed: vec![0; data.len()],
        backoff_rounds: 0,
    };
    let mut stall_rounds: u32 = 0;
    let mut waited = Duration::ZERO;
    while remaining > 0 {
        let mut progressed = false;
        for i in 0..slots.len() {
            let Some(handle) = slots[i].as_mut() else {
                continue;
            };
            let xs = data[i];
            if cursors[i] >= xs.len() {
                slots[i] = None; // close: the shard finishes the stream
                remaining -= 1;
                progressed = true;
                continue;
            }
            let end = (cursors[i] + FEED_CHUNK).min(xs.len());
            let n = match handle.try_feed(&xs[cursors[i]..end]) {
                Ok(n) => n,
                Err(PushError::Disconnected) => {
                    return Err(IngestError::Disconnected {
                        stream: handle.id(),
                    })
                }
                // try_feed never reports overflow: it accepts what fits.
                Err(PushError::Overflow(_)) => 0,
            };
            if n > 0 {
                cursors[i] += n;
                report.pushed[i] += n as u64;
                progressed = true;
            }
        }
        if progressed {
            stall_rounds = 0;
        } else {
            // Every unfinished ring is full: the consumers own the pace.
            // Back off exponentially; give up only after a silence long
            // enough to mean the engine is wedged.
            stall_rounds += 1;
            report.backoff_rounds += 1;
            if stall_rounds >= FEED_STALL_ROUNDS {
                return Err(IngestError::Stalled {
                    waited,
                    pending: remaining,
                });
            }
            let delay = IDLE_PARK
                .saturating_mul(1u32.checked_shl(stall_rounds.min(16)).unwrap_or(u32::MAX))
                .min(FEED_STALL_MAX_DELAY);
            waited += delay;
            std::thread::sleep(delay);
        }
    }
    Ok(report)
}

/// One stream's live state on its shard. `op` is `None` once the stream
/// is quarantined (the faulted operator is dropped immediately, under
/// its own panic boundary).
struct ActiveStream<Op: Operator<In = f64>> {
    id: usize,
    consumer: ring::Consumer<Record<f64>>,
    op: Option<Op>,
    guard: Option<InputGuard>,
    timing: Timing,
    output: Vec<Record<Op::Out>>,
    records_in: u64,
    quarantined_after: u64,
    quarantine: Option<(QuarantineCause, u64)>,
    busy: Duration,
    monitor: Arc<StreamMonitor>,
}

impl<Op: Operator<In = f64>> ActiveStream<Op> {
    /// Moves the stream to quarantine: publishes the cause, drops the
    /// operator behind a panic boundary (a faulting operator may panic
    /// again in `Drop`), and from here on the shard drains-and-discards
    /// the ring so the producer never wedges.
    fn enter_quarantine(&mut self, cause: QuarantineCause) {
        let at_record = self.records_in;
        *lock_recover(&self.monitor.quarantine) = Some((cause.clone(), at_record));
        self.quarantine = Some((cause, at_record));
        let op = self.op.take();
        let _ = catch_unwind(AssertUnwindSafe(move || drop(op)));
    }
}

/// Stringifies a panic payload (the common `&str` / `String` cases).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "opaque panic payload".to_string(),
        },
    }
}

/// Steps one drained batch through the stream's guard and operator under
/// a panic boundary, updating all per-stream accounting. On a fault
/// (operator panic or guard trip) the stream enters quarantine: records
/// consumed before the fault stay in `records_in`, the faulting record
/// and the rest of the batch count into `quarantined_after`.
///
/// `AssertUnwindSafe` invariant: on unwind the operator (the only
/// not-unwind-safe capture) is dropped without being touched again —
/// `enter_quarantine` takes it straight into a guarded `drop` — so no
/// code ever observes its possibly-inconsistent state.
fn step_batch<Op>(st: &mut ActiveStream<Op>, batch: &mut Vec<Record<f64>>, n: usize)
where
    Op: Operator<In = f64>,
{
    let done = Cell::new(0u64);
    let stepped = Cell::new(0u64);
    let trip: Cell<Option<GuardTrip>> = Cell::new(None);
    // Record into a batch-local histogram so the monitor lock is held
    // for a merge, not across up to DRAIN_BATCH operator calls — a
    // stats() snapshot never waits on a processing batch.
    let mut local = LatencyHistogram::new();
    let mut busy = Duration::ZERO;
    let timing = st.timing;
    let op = st
        .op
        .as_mut()
        .expect("step_batch is only called on healthy streams (op present)");
    let output = &mut st.output;
    let mut guard = st.guard.as_mut();
    let t0 = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        for rec in batch.drain(..) {
            let verdict = match guard.as_deref_mut() {
                Some(g) => g.inspect(rec.value),
                None => GuardVerdict::Pass(rec.value),
            };
            match verdict {
                GuardVerdict::Pass(value) => {
                    match timing {
                        Timing::PerRecord => {
                            let s0 = Instant::now();
                            op.process(Record::new(rec.timestamp, value), output);
                            let dt = s0.elapsed();
                            busy += dt;
                            local.record(dt);
                        }
                        Timing::Batch => op.process(Record::new(rec.timestamp, value), output),
                    }
                    stepped.set(stepped.get() + 1);
                }
                GuardVerdict::Skip => {}
                GuardVerdict::Trip(t) => {
                    trip.set(Some(t));
                    return;
                }
            }
            done.set(done.get() + 1);
        }
    }));
    if timing == Timing::Batch {
        let dt = t0.elapsed();
        busy += dt;
        local.record_n(dt, stepped.get());
    }
    st.busy += busy;
    st.records_in += done.get();
    // Release pairs with the Acquire loads in `StatsRegistry::snapshot`:
    // the consumed records' pushes happen-before this store, so any
    // snapshot that sees it also sees at least that many pushes.
    st.monitor
        .records_in
        .store(st.records_in, Ordering::Release);
    lock_recover(&st.monitor.latency).merge(&local);
    if let Some(g) = st.guard.as_ref() {
        st.monitor.healed.store(g.healed(), Ordering::Relaxed);
        st.monitor.skipped.store(g.skipped(), Ordering::Relaxed);
    }
    let cause = match outcome {
        Ok(()) => trip.take().map(QuarantineCause::InputGuard),
        Err(payload) => Some(QuarantineCause::OperatorPanic {
            message: panic_message(payload),
        }),
    };
    if let Some(cause) = cause {
        // The faulting record and the rest of the batch were consumed
        // from the ring but never completed: they count as quarantined.
        st.quarantined_after += n as u64 - done.get();
        st.monitor
            .quarantined_after
            .store(st.quarantined_after, Ordering::Release);
        st.enter_quarantine(cause);
    }
}

/// The shard event loop: accept registrations, round-robin over owned
/// streams draining + stepping each, flush and retire finished streams,
/// park briefly when fully idle. Operator faults quarantine their stream
/// (never the shard), so this function itself never panics. Returns the
/// shard's stream results.
fn shard_worker<'env, Op>(inbox: mpsc::Receiver<NewStream<'env, Op>>) -> Vec<StreamResult<Op::Out>>
where
    Op: Operator<In = f64>,
    Op::Out: Send,
{
    let mut active: Vec<ActiveStream<Op>> = Vec::new();
    let mut finished: Vec<StreamResult<Op::Out>> = Vec::new();
    let mut batch: Vec<Record<f64>> = Vec::with_capacity(DRAIN_BATCH);
    let mut inbox_open = true;
    let accept = |ns: NewStream<'env, Op>| ActiveStream {
        id: ns.id,
        consumer: ns.consumer,
        op: Some((ns.factory)()),
        guard: ns.guard.map(InputGuard::new),
        timing: ns.timing,
        output: Vec::new(),
        records_in: 0,
        quarantined_after: 0,
        quarantine: None,
        busy: Duration::ZERO,
        monitor: ns.monitor,
    };
    loop {
        while inbox_open {
            match inbox.try_recv() {
                Ok(ns) => active.push(accept(ns)),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => inbox_open = false,
            }
        }
        let mut progressed = false;
        let mut i = 0;
        while i < active.len() {
            let st = &mut active[i];
            batch.clear();
            let n = st.consumer.drain_into(&mut batch, DRAIN_BATCH);
            if n > 0 {
                progressed = true;
                if st.quarantine.is_some() {
                    // Drain-and-discard: the producer must never wedge
                    // on a stream that is already out of service.
                    batch.clear();
                    st.quarantined_after += n as u64;
                    st.monitor
                        .quarantined_after
                        .store(st.quarantined_after, Ordering::Release);
                } else {
                    step_batch(st, &mut batch, n);
                }
            }
            // `is_finished` re-checks emptiness: a producer that closed
            // mid-drain still gets its tail drained on the next visit.
            if n < DRAIN_BATCH && st.consumer.is_finished() {
                let mut st = active.swap_remove(i);
                progressed = true;
                if st.quarantine.is_none() {
                    let op = st
                        .op
                        .as_mut()
                        .expect("healthy streams keep their operator until flush");
                    let output = &mut st.output;
                    let t0 = Instant::now();
                    let outcome = catch_unwind(AssertUnwindSafe(|| op.flush(output)));
                    st.busy += t0.elapsed();
                    if let Err(payload) = outcome {
                        st.enter_quarantine(QuarantineCause::OperatorPanic {
                            message: panic_message(payload),
                        });
                    }
                }
                // Release pairs with a detach's Acquire poll on `done`:
                // once the close is observed, every final counter store
                // above is too, so the detach report's ledger is exact.
                st.monitor.done.store(true, Ordering::Release);
                let latency = lock_recover(&st.monitor.latency).clone();
                let state = match &st.quarantine {
                    Some((cause, at_record)) => StreamState::Quarantined {
                        cause: cause.clone(),
                        at_record: *at_record,
                    },
                    None => StreamState::Done,
                };
                finished.push(StreamResult {
                    stream: st.id,
                    shard: st.monitor.shard,
                    output: st.output,
                    records_in: st.records_in,
                    drops: st.monitor.counters.drops.load(Ordering::Relaxed),
                    quarantined_after: st.quarantined_after,
                    pushed: st.monitor.counters.pushed.load(Ordering::Relaxed),
                    healed: st.guard.as_ref().map_or(0, |g| g.healed()),
                    skipped: st.guard.as_ref().map_or(0, |g| g.skipped()),
                    retries: st.monitor.counters.retries.load(Ordering::Relaxed),
                    state,
                    busy: st.busy,
                    latency,
                });
                continue; // swap_remove put a new stream at index i
            }
            i += 1;
        }
        if !inbox_open && active.is_empty() {
            return finished;
        }
        if !progressed {
            if inbox_open {
                // Idle but still accepting: block on the inbox with a
                // timeout so ring polls keep happening.
                match inbox.recv_timeout(IDLE_PARK) {
                    Ok(ns) => active.push(accept(ns)),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => inbox_open = false,
                }
            } else {
                std::thread::sleep(IDLE_PARK);
            }
        }
    }
}

/// SplitMix64 finalizer — the stream-id hash for shard assignment.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardAction;
    use crate::operator::TumblingWindowMean;
    use crate::ring::Backpressure;

    #[test]
    fn streams_are_served_and_results_sorted_by_id() {
        let (results, pushed) = serve(EngineConfig::new(3), |engine| {
            let mut handles: Vec<_> = (0..10)
                .map(|_| engine.register(|| TumblingWindowMean::new(4)))
                .collect();
            let mut pushed = 0u64;
            for (k, h) in handles.iter_mut().enumerate() {
                for v in 0..(40 + k) {
                    h.push(v as f64).unwrap();
                    pushed += 1;
                }
            }
            pushed
        });
        assert_eq!(results.len(), 10);
        assert_eq!(results.iter().map(|r| r.records_in).sum::<u64>(), pushed);
        for (k, r) in results.iter().enumerate() {
            assert_eq!(r.stream, k);
            assert_eq!(r.records_in, 40 + k as u64);
            assert_eq!(r.drops, 0);
            assert_eq!(r.state, StreamState::Done);
            assert_eq!(r.accounted(), r.pushed);
            assert!(r.shard < 3);
            // 4-record tumbling mean of 0..n: first window mean is 1.5.
            assert_eq!(r.output[0].value, 1.5);
            assert_eq!(r.latency.count(), r.records_in);
        }
    }

    #[test]
    fn stats_snapshot_reports_completion() {
        let (results, observed) = serve(EngineConfig::new(2), |engine| {
            let mut h0 = engine.register(|| TumblingWindowMean::new(2));
            let h1 = engine.register(|| TumblingWindowMean::new(2));
            for v in 0..50 {
                h0.push(v as f64).unwrap();
            }
            drop(h0);
            let stats = engine.stats();
            assert_eq!(stats.streams.len(), 2);
            assert_eq!(stats.shards.len(), 2);
            assert_eq!(
                stats.shards.iter().map(|s| s.streams).sum::<usize>(),
                2,
                "every stream belongs to exactly one shard"
            );
            drop(h1);
            stats
        });
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].records_in, 50);
        assert_eq!(results[1].records_in, 0);
        // The empty stream produced no latency samples anywhere.
        assert_eq!(observed.streams[1].records_in, 0);
        assert_eq!(observed.quarantined(), 0);
    }

    #[test]
    fn hash_assignment_is_deterministic_and_pinning_wins() {
        let (results, ()) = serve(EngineConfig::new(4), |engine| {
            for _ in 0..8 {
                engine.register(|| TumblingWindowMean::new(2)).close();
            }
            let pinned = engine.register_with(
                StreamOptions {
                    shard: Some(2),
                    ..StreamOptions::default()
                },
                || TumblingWindowMean::new(2),
            );
            assert_eq!(pinned.id(), 8);
            pinned.close();
        });
        assert_eq!(results[8].shard, 2);
        let (again, ()) = serve(EngineConfig::new(4), |engine| {
            for _ in 0..8 {
                engine.register(|| TumblingWindowMean::new(2)).close();
            }
        });
        for k in 0..8 {
            assert_eq!(results[k].shard, again[k].shard, "stream {k}");
        }
    }

    #[test]
    fn feed_all_drives_unequal_streams_through_tiny_rings() {
        let data: Vec<Vec<f64>> = (0..12)
            .map(|k| (0..(k * 97 % 400)).map(|i| i as f64).collect())
            .collect();
        let config = EngineConfig {
            shards: 3,
            ring: RingConfig::new(4, Backpressure::Block),
        };
        let (results, report) = serve(config, |engine| {
            let handles: Vec<_> = (0..data.len())
                .map(|_| engine.register(|| TumblingWindowMean::new(1)))
                .collect();
            let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
            feed_all(handles, &slices).expect("feed completes")
        });
        assert_eq!(
            report.total_pushed() as usize,
            data.iter().map(Vec::len).sum::<usize>()
        );
        for (k, r) in results.iter().enumerate() {
            assert_eq!(r.records_in as usize, data[k].len());
            assert_eq!(report.pushed[k], r.pushed);
            // Width-1 windows echo the stream: order fully preserved.
            let got: Vec<f64> = r.output.iter().map(|rec| rec.value).collect();
            assert_eq!(got, data[k]);
        }
    }

    /// An operator that panics when it sees a sentinel value.
    struct PanicOn {
        sentinel: f64,
        inner: TumblingWindowMean,
    }

    impl Operator for PanicOn {
        type In = f64;
        type Out = f64;

        fn process(&mut self, record: Record<f64>, out: &mut Vec<Record<f64>>) {
            assert!(record.value != self.sentinel, "injected sentinel fault");
            self.inner.process(record, out);
        }

        fn flush(&mut self, out: &mut Vec<Record<f64>>) {
            self.inner.flush(out);
        }

        fn name(&self) -> &'static str {
            "panic-on"
        }
    }

    #[test]
    fn operator_panic_quarantines_only_its_stream() {
        let n_streams = 6usize;
        let points = 200usize;
        let (results, ()) = serve(EngineConfig::new(2), |engine| {
            let handles: Vec<_> = (0..n_streams)
                .map(|k| {
                    engine.register(move || PanicOn {
                        sentinel: if k == 3 { 77.0 } else { f64::NEG_INFINITY },
                        inner: TumblingWindowMean::new(4),
                    })
                })
                .collect();
            let data: Vec<Vec<f64>> = (0..n_streams)
                .map(|_| {
                    (0..points)
                        .map(|i| if i == 50 { 77.0 } else { i as f64 })
                        .collect()
                })
                .collect();
            let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
            feed_all(handles, &slices).expect("quarantined streams keep draining");
        });
        assert_eq!(results.len(), n_streams);
        for (k, r) in results.iter().enumerate() {
            assert_eq!(r.accounted(), r.pushed, "stream {k} ledger");
            assert_eq!(r.pushed, points as u64, "stream {k} pushed");
            if k == 3 {
                let (cause, at_record) = r.quarantine().expect("stream 3 faulted");
                assert_eq!(at_record, 50, "processing stopped at the sentinel");
                assert_eq!(r.records_in, 50);
                assert_eq!(r.quarantined_after, points as u64 - 50);
                match cause {
                    QuarantineCause::OperatorPanic { message } => {
                        assert!(message.contains("injected sentinel fault"), "{message}");
                    }
                    other => panic!("unexpected cause {other:?}"),
                }
            } else {
                assert_eq!(r.state, StreamState::Done, "stream {k} survived");
                assert_eq!(r.records_in, points as u64);
                assert_eq!(r.quarantined_after, 0);
            }
        }
    }

    #[test]
    fn guard_trip_quarantines_and_stats_expose_the_state() {
        let opts = StreamOptions {
            guard: Some(GuardConfig::new(3, 0)),
            ..StreamOptions::default()
        };
        let (results, stats) = serve(EngineConfig::new(1), |engine| {
            let mut h = engine.register_with(opts, || TumblingWindowMean::new(2));
            for v in 0..10 {
                h.push(v as f64).unwrap();
            }
            for _ in 0..5 {
                h.push(f64::NAN).unwrap();
            }
            drop(h);
            // Wait for the shard to observe the fault.
            loop {
                let s = engine.stats();
                if s.streams[0].done {
                    break s;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
        });
        let r = &results[0];
        let (cause, at_record) = r.quarantine().expect("guard tripped");
        assert!(matches!(
            cause,
            QuarantineCause::InputGuard(GuardTrip::NanBurst { len: 3 })
        ));
        // 10 finite + 2 healed NaNs consumed; the third NaN tripped.
        assert_eq!(at_record, 12);
        assert_eq!(r.healed, 2);
        assert_eq!(r.accounted(), r.pushed);
        assert_eq!(stats.streams[0].state, r.state);
        assert_eq!(stats.quarantined(), 1);
        assert_eq!(stats.shards[0].quarantined, 1);
    }

    #[test]
    fn guard_heals_nans_without_quarantine() {
        let opts = StreamOptions {
            guard: Some(GuardConfig {
                non_finite: GuardAction::Heal,
                ..GuardConfig::default()
            }),
            ..StreamOptions::default()
        };
        let (results, ()) = serve(EngineConfig::new(1), |engine| {
            let mut h = engine.register_with(opts, || TumblingWindowMean::new(1));
            for v in [1.0, f64::NAN, 3.0, f64::INFINITY] {
                h.push(v).unwrap();
            }
        });
        let r = &results[0];
        assert_eq!(r.state, StreamState::Done);
        assert_eq!(r.records_in, 4);
        assert_eq!(r.healed, 2);
        let got: Vec<f64> = r.output.iter().map(|rec| rec.value).collect();
        assert_eq!(got, vec![1.0, 1.0, 3.0, 3.0]);
    }

    /// A handle over a raw ring, bypassing `serve` so the consumer side
    /// is fully under test control.
    fn raw_handle(cfg: RingConfig, id: usize) -> (StreamHandle, ring::Consumer<Record<f64>>) {
        let (producer, consumer) = ring::ring(cfg);
        (
            StreamHandle {
                producer,
                id,
                t: 0,
                scratch: Vec::new(),
            },
            consumer,
        )
    }

    #[test]
    fn push_with_retry_exhausts_into_a_typed_error() {
        let (mut h, _consumer) = raw_handle(RingConfig::new(2, Backpressure::Error), 7);
        h.push(1.0).unwrap();
        h.push(2.0).unwrap();
        let retry = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(200),
        };
        let err = h.push_with_retry(3.0, &retry).unwrap_err();
        assert_eq!(
            err,
            IngestError::RetriesExhausted {
                stream: 7,
                attempts: 3,
                capacity: 2
            }
        );
        // Only the accepted records count as pushed; retries are counted.
        assert_eq!(h.pushed(), 2);
        let counters = h.producer.counters();
        assert_eq!(counters.retries.load(Ordering::Relaxed), 2);
        // The position was consumed exactly once for the failed record.
        h.push(4.0).unwrap_err();
        assert_eq!(h.t, 4);
    }

    #[test]
    fn push_with_retry_succeeds_once_the_consumer_drains() {
        let (mut h, mut consumer) = raw_handle(RingConfig::new(1, Backpressure::Error), 0);
        h.push(0.0).unwrap();
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            let mut out = Vec::new();
            while consumer.drain_into(&mut out, usize::MAX) == 0 {
                std::thread::sleep(Duration::from_micros(100));
            }
            (out, consumer)
        });
        let err = h.push_with_retry(1.0, &RetryPolicy::default());
        assert_eq!(err, Ok(()));
        assert!(
            h.producer.counters().retries.load(Ordering::Relaxed) >= 1,
            "the successful push went through the backoff path"
        );
        let (out, _consumer) = drainer.join().unwrap();
        assert_eq!(out[0].value, 0.0);
    }

    #[test]
    fn push_with_retry_reports_disconnect_immediately() {
        let (mut h, consumer) = raw_handle(RingConfig::new(4, Backpressure::Block), 3);
        drop(consumer);
        let t0 = Instant::now();
        let err = h.push_with_retry(1.0, &RetryPolicy::default()).unwrap_err();
        assert_eq!(err, IngestError::Disconnected { stream: 3 });
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "no pointless backoff against a dead consumer"
        );
    }
}
