//! The multi-stream serving engine: a sharded worker pool over bounded
//! SPSC ring buffers.
//!
//! The paper's throughput experiment (§4.4) deploys ClaSS inside Apache
//! Flink and shows feed rates far above real sensor rates. Flink scales
//! by *keyed sharding*: operators for many streams are multiplexed onto a
//! fixed set of task slots, records travel through bounded network
//! buffers, and no stream owns a thread. This module reproduces that
//! execution model:
//!
//! * [`serve`] opens an engine with `shards` worker threads. Serving any
//!   number of streams costs exactly `shards + 1` threads — the workers
//!   plus the caller's ingest thread; there is no per-stream source
//!   thread.
//! * Each registered stream is a **state machine** (its operator plus a
//!   ring consumer) hash-assigned to a shard and stepped by that shard's
//!   event loop in drained batches.
//! * Records travel through fixed-capacity [`crate::ring`] buffers whose
//!   full-ring behaviour is the per-stream [`Backpressure`] policy
//!   (block / drop-oldest / error).
//! * [`ServingEngine::stats`] takes a live [`ServingStats`] snapshot —
//!   per-stream and per-shard p50/p99 latency, queue depth, and drop
//!   counts — while the engine runs.
//!
//! ```
//! use stream_engine::{serve, EngineConfig, MapOperator};
//!
//! fn double(x: f64) -> f64 {
//!     x * 2.0
//! }
//!
//! let (results, ()) = serve(EngineConfig::new(2), |engine| {
//!     let mut handles: Vec<_> = (0..8)
//!         .map(|_| engine.register(|| MapOperator::new(double as fn(f64) -> f64)))
//!         .collect();
//!     for h in &mut handles {
//!         for v in 0..100 {
//!             h.push(v as f64).unwrap();
//!         }
//!     }
//! });
//! assert_eq!(results.len(), 8);
//! assert!(results.iter().all(|r| r.records_in == 100));
//! ```

use crate::latency::{LatencyHistogram, ServingStats, ShardStats, StreamStats};
use crate::operator::Operator;
use crate::ring::{self, PushError, RingConfig, RingCounters};
use crate::Record;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Records a shard worker moves out of a ring per lock acquisition.
const DRAIN_BATCH: usize = 256;
/// Records the bulk feeder pushes per ring visit.
const FEED_CHUNK: usize = 64;
/// How long an idle worker (or starved feeder) sleeps before re-polling.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Engine-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads; streams are hash-partitioned across them.
    pub shards: usize,
    /// Default ring configuration for [`ServingEngine::register`].
    pub ring: RingConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            ring: RingConfig::default(),
        }
    }
}

impl EngineConfig {
    /// A config with `shards` workers and default rings.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// How a shard attributes operator time to the latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Timing {
    /// Two clock reads per record: exact per-record latencies. Right for
    /// operators whose step dominates a clock read (ClaSS: microseconds).
    #[default]
    PerRecord,
    /// Two clock reads per drained batch; the batch average is recorded
    /// for each record ([`LatencyHistogram::record_n`]). Right for
    /// nanosecond-scale operators the per-record clock would distort.
    Batch,
}

/// Per-stream registration options.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamOptions {
    /// Ring capacity and backpressure policy.
    pub ring: RingConfig,
    /// Latency attribution granularity.
    pub timing: Timing,
    /// Pin to a specific shard (modulo the shard count) instead of the
    /// default hash assignment — for callers that balance load
    /// themselves (e.g. the eval matrix runner's bin packing).
    pub shard: Option<usize>,
}

/// Shared live-accounting cell, written by the shard and read by
/// [`ServingEngine::stats`].
#[derive(Debug)]
struct StreamMonitor {
    shard: usize,
    records_in: AtomicU64,
    done: AtomicBool,
    latency: Mutex<LatencyHistogram>,
    counters: Arc<RingCounters>,
}

/// The producer end of one registered stream. Push records with
/// [`StreamHandle::push`] / [`StreamHandle::try_feed`]; drop the handle
/// to close the stream (the shard drains the ring, flushes the operator,
/// and reports the stream's [`StreamResult`]).
#[derive(Debug)]
pub struct StreamHandle {
    producer: ring::Producer<Record<f64>>,
    id: usize,
    t: u64,
    scratch: Vec<Record<f64>>,
}

impl StreamHandle {
    /// Stream id (registration order); results are sorted by it.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Pushes one observation, stamping it with the next source
    /// position. Applies the stream's backpressure policy: `Block`
    /// waits, `DropOldest` always succeeds (evicting), `Error` fails
    /// with a typed overflow. The source position advances on every
    /// call — under `Error` a rejected observation's position is
    /// consumed, like a sensor reading lost at the edge.
    pub fn push(&mut self, value: f64) -> Result<(), PushError> {
        let rec = Record::new(self.t, value);
        self.t += 1;
        self.producer.push(rec)
    }

    /// Non-blocking bulk push of up to one ring capacity of
    /// observations under one ring lock; returns how many were accepted
    /// (the source position advances by exactly that many). Never
    /// blocks and never reports overflow — it accepts what fits
    /// (everything offered, under `DropOldest`). Callers that want a
    /// smaller granularity (e.g. fairness across many streams, as in
    /// [`feed_all`]) pass a smaller slice.
    pub fn try_feed(&mut self, values: &[f64]) -> Result<usize, PushError> {
        self.scratch.clear();
        self.scratch.extend(
            values
                .iter()
                .take(self.producer.capacity())
                .enumerate()
                .map(|(i, &v)| Record::new(self.t + i as u64, v)),
        );
        let n = self.producer.try_feed(&self.scratch)?;
        self.t += n as u64;
        Ok(n)
    }

    /// Records currently queued in this stream's ring.
    pub fn queue_depth(&self) -> usize {
        self.producer.depth()
    }

    /// Records evicted so far by the `drop-oldest` policy.
    pub fn drops(&self) -> u64 {
        self.producer.drops()
    }

    /// Closes the stream (equivalent to dropping the handle).
    pub fn close(self) {}
}

/// Everything a shard needs to start serving one stream. The operator is
/// built *on* the shard via the factory, so it never crosses threads.
struct NewStream<'env, Op> {
    id: usize,
    consumer: ring::Consumer<Record<f64>>,
    factory: Box<dyn FnOnce() -> Op + Send + 'env>,
    monitor: Arc<StreamMonitor>,
    timing: Timing,
}

/// Final accounting for one served stream.
#[derive(Debug, Clone)]
pub struct StreamResult<Out> {
    /// Stream id (registration order).
    pub stream: usize,
    /// Shard that served the stream.
    pub shard: usize,
    /// Output records emitted by the operator (flush included).
    pub output: Vec<Record<Out>>,
    /// Records processed by the operator.
    pub records_in: u64,
    /// Records evicted by the `drop-oldest` backpressure policy. For a
    /// lossless policy this is 0 and `records_in` equals the pushes.
    pub drops: u64,
    /// Operator-busy wall time (processing + flush, excluding queueing).
    pub busy: Duration,
    /// Per-record operator latency distribution.
    pub latency: LatencyHistogram,
}

impl<Out> StreamResult<Out> {
    /// Operator throughput in records per second of busy time.
    pub fn throughput(&self) -> f64 {
        self.records_in as f64 / self.busy.as_secs_f64().max(1e-9)
    }
}

/// A running engine, usable only inside [`serve`]'s body closure.
///
/// Registration (and pushing, via the returned [`StreamHandle`]s)
/// happens on the caller's thread; the `shards` workers step the stream
/// state machines. All handles must be dropped before the body returns —
/// an open handle means an unfinished stream and [`serve`] would wait
/// for it forever.
pub struct ServingEngine<'scope, 'env, Op>
where
    Op: Operator<In = f64>,
    Op::Out: Send,
{
    config: EngineConfig,
    inboxes: Vec<mpsc::Sender<NewStream<'env, Op>>>,
    workers: Vec<std::thread::ScopedJoinHandle<'scope, Vec<StreamResult<Op::Out>>>>,
    monitors: Vec<Arc<StreamMonitor>>,
}

impl<'scope, 'env, Op> ServingEngine<'scope, 'env, Op>
where
    Op: Operator<In = f64> + 'env,
    Op::Out: Send + 'env,
{
    fn start(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        config: EngineConfig,
    ) -> ServingEngine<'scope, 'env, Op> {
        let shards = config.shards.max(1);
        let mut inboxes = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::channel::<NewStream<'env, Op>>();
            inboxes.push(tx);
            workers.push(scope.spawn(move || shard_worker(rx)));
        }
        ServingEngine {
            config: EngineConfig { shards, ..config },
            inboxes,
            workers,
            monitors: Vec::new(),
        }
    }

    /// Worker threads the engine holds (== configured shards).
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Registers a stream with the engine-default ring and timing; the
    /// operator is built on the owning shard via `factory`.
    pub fn register(&mut self, factory: impl FnOnce() -> Op + Send + 'env) -> StreamHandle {
        self.register_with(
            StreamOptions {
                ring: self.config.ring,
                ..StreamOptions::default()
            },
            factory,
        )
    }

    /// Registers a stream with explicit per-stream options.
    pub fn register_with(
        &mut self,
        opts: StreamOptions,
        factory: impl FnOnce() -> Op + Send + 'env,
    ) -> StreamHandle {
        let id = self.monitors.len();
        let shards = self.workers.len();
        let shard = match opts.shard {
            Some(s) => s % shards,
            None => (splitmix64(id as u64) % shards as u64) as usize,
        };
        let (producer, consumer) = ring::ring(opts.ring);
        let monitor = Arc::new(StreamMonitor {
            shard,
            records_in: AtomicU64::new(0),
            done: AtomicBool::new(false),
            latency: Mutex::new(LatencyHistogram::new()),
            counters: producer.counters(),
        });
        self.monitors.push(Arc::clone(&monitor));
        self.inboxes[shard]
            .send(NewStream {
                id,
                consumer,
                factory: Box::new(factory),
                monitor,
                timing: opts.timing,
            })
            .expect("shard worker alive");
        StreamHandle {
            producer,
            id,
            t: 0,
            scratch: Vec::with_capacity(FEED_CHUNK),
        }
    }

    /// Takes a live snapshot of per-stream and per-shard accounting.
    pub fn stats(&self) -> ServingStats {
        let shards = self.workers.len();
        let mut streams = Vec::with_capacity(self.monitors.len());
        let mut shard_hists = vec![LatencyHistogram::new(); shards];
        let mut shard_stats: Vec<ShardStats> = (0..shards)
            .map(|shard| ShardStats {
                shard,
                streams: 0,
                active: 0,
                records_in: 0,
                drops: 0,
                queue_depth: 0,
                p50: Duration::ZERO,
                p99: Duration::ZERO,
            })
            .collect();
        for (id, m) in self.monitors.iter().enumerate() {
            let hist = m.latency.lock().expect("latency lock").clone();
            let records_in = m.records_in.load(Ordering::Relaxed);
            let drops = m.counters.drops.load(Ordering::Relaxed);
            let queue_depth = m.counters.depth.load(Ordering::Relaxed);
            let done = m.done.load(Ordering::Relaxed);
            let agg = &mut shard_stats[m.shard];
            agg.streams += 1;
            agg.active += usize::from(!done);
            agg.records_in += records_in;
            agg.drops += drops;
            agg.queue_depth += queue_depth;
            shard_hists[m.shard].merge(&hist);
            streams.push(StreamStats {
                stream: id,
                shard: m.shard,
                records_in,
                drops,
                queue_depth,
                done,
                p50: hist.quantile(0.5),
                p99: hist.quantile(0.99),
                mean: hist.mean(),
            });
        }
        for (agg, hist) in shard_stats.iter_mut().zip(&shard_hists) {
            agg.p50 = hist.quantile(0.5);
            agg.p99 = hist.quantile(0.99);
        }
        ServingStats {
            streams,
            shards: shard_stats,
        }
    }

    fn join(self) -> Vec<StreamResult<Op::Out>> {
        // Closing the inboxes tells workers no more registrations come;
        // they exit once every assigned stream is closed and drained.
        drop(self.inboxes);
        let mut results: Vec<StreamResult<Op::Out>> = Vec::with_capacity(self.monitors.len());
        for w in self.workers {
            results.extend(w.join().expect("shard worker panicked"));
        }
        results.sort_by_key(|r| r.stream);
        results
    }
}

/// Opens a serving engine, runs `body` with it (register streams, push
/// records, snapshot stats), then drains every stream and returns all
/// [`StreamResult`]s (sorted by stream id) alongside the body's return
/// value. The engine's worker threads live exactly as long as this call.
pub fn serve<'env, Op, R>(
    config: EngineConfig,
    body: impl for<'scope> FnOnce(&mut ServingEngine<'scope, 'env, Op>) -> R,
) -> (Vec<StreamResult<Op::Out>>, R)
where
    Op: Operator<In = f64> + 'env,
    Op::Out: Send + 'env,
{
    std::thread::scope(|scope| {
        let mut engine = ServingEngine::start(scope, config);
        let ret = body(&mut engine);
        (engine.join(), ret)
    })
}

/// Drives many in-memory streams to completion through their handles:
/// non-blocking round-robin bulk pushes, so one full ring never stalls
/// the others (no head-of-line blocking), with each handle closed the
/// moment its data is exhausted so its shard can flush early. `handles`
/// and `data` are matched by index.
pub fn feed_all(handles: Vec<StreamHandle>, data: &[&[f64]]) {
    assert_eq!(
        handles.len(),
        data.len(),
        "one data slice per stream handle"
    );
    let mut slots: Vec<Option<StreamHandle>> = handles.into_iter().map(Some).collect();
    let mut cursors = vec![0usize; data.len()];
    let mut remaining = slots.len();
    while remaining > 0 {
        let mut progressed = false;
        for i in 0..slots.len() {
            let Some(handle) = slots[i].as_mut() else {
                continue;
            };
            let xs = data[i];
            if cursors[i] >= xs.len() {
                slots[i] = None; // close: the shard finishes the stream
                remaining -= 1;
                progressed = true;
                continue;
            }
            let end = (cursors[i] + FEED_CHUNK).min(xs.len());
            let n = handle
                .try_feed(&xs[cursors[i]..end])
                .expect("shard worker alive");
            if n > 0 {
                cursors[i] += n;
                progressed = true;
            }
        }
        if !progressed {
            // Every unfinished ring is full: the consumers own the pace.
            std::thread::sleep(IDLE_PARK);
        }
    }
}

/// One stream's live state on its shard.
struct ActiveStream<Op: Operator<In = f64>> {
    id: usize,
    consumer: ring::Consumer<Record<f64>>,
    op: Op,
    timing: Timing,
    output: Vec<Record<Op::Out>>,
    records_in: u64,
    busy: Duration,
    monitor: Arc<StreamMonitor>,
}

/// The shard event loop: accept registrations, round-robin over owned
/// streams draining + stepping each, flush and retire finished streams,
/// park briefly when fully idle. Returns the shard's stream results.
fn shard_worker<'env, Op>(inbox: mpsc::Receiver<NewStream<'env, Op>>) -> Vec<StreamResult<Op::Out>>
where
    Op: Operator<In = f64>,
    Op::Out: Send,
{
    let mut active: Vec<ActiveStream<Op>> = Vec::new();
    let mut finished: Vec<StreamResult<Op::Out>> = Vec::new();
    let mut batch: Vec<Record<f64>> = Vec::with_capacity(DRAIN_BATCH);
    let mut inbox_open = true;
    let accept = |ns: NewStream<'env, Op>| ActiveStream {
        id: ns.id,
        consumer: ns.consumer,
        op: (ns.factory)(),
        timing: ns.timing,
        output: Vec::new(),
        records_in: 0,
        busy: Duration::ZERO,
        monitor: ns.monitor,
    };
    loop {
        while inbox_open {
            match inbox.try_recv() {
                Ok(ns) => active.push(accept(ns)),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => inbox_open = false,
            }
        }
        let mut progressed = false;
        let mut i = 0;
        while i < active.len() {
            let st = &mut active[i];
            batch.clear();
            let n = st.consumer.drain_into(&mut batch, DRAIN_BATCH);
            if n > 0 {
                progressed = true;
                match st.timing {
                    Timing::PerRecord => {
                        // Record into a batch-local histogram so the
                        // monitor lock is held for a merge, not across
                        // up to DRAIN_BATCH operator calls — a stats()
                        // snapshot never waits on a processing batch.
                        let mut local = LatencyHistogram::new();
                        for rec in batch.drain(..) {
                            let t0 = Instant::now();
                            st.op.process(rec, &mut st.output);
                            let dt = t0.elapsed();
                            st.busy += dt;
                            local.record(dt);
                        }
                        st.monitor
                            .latency
                            .lock()
                            .expect("latency lock")
                            .merge(&local);
                    }
                    Timing::Batch => {
                        let t0 = Instant::now();
                        for rec in batch.drain(..) {
                            st.op.process(rec, &mut st.output);
                        }
                        let dt = t0.elapsed();
                        st.busy += dt;
                        st.monitor
                            .latency
                            .lock()
                            .expect("latency lock")
                            .record_n(dt, n as u64);
                    }
                }
                st.records_in += n as u64;
                st.monitor
                    .records_in
                    .store(st.records_in, Ordering::Relaxed);
            }
            // `is_finished` re-checks emptiness: a producer that closed
            // mid-drain still gets its tail drained on the next visit.
            if n < DRAIN_BATCH && st.consumer.is_finished() {
                let mut st = active.swap_remove(i);
                progressed = true;
                let t0 = Instant::now();
                st.op.flush(&mut st.output);
                st.busy += t0.elapsed();
                st.monitor.done.store(true, Ordering::Relaxed);
                let latency = st.monitor.latency.lock().expect("latency lock").clone();
                finished.push(StreamResult {
                    stream: st.id,
                    shard: st.monitor.shard,
                    output: st.output,
                    records_in: st.records_in,
                    drops: st.monitor.counters.drops.load(Ordering::Relaxed),
                    busy: st.busy,
                    latency,
                });
                continue; // swap_remove put a new stream at index i
            }
            i += 1;
        }
        if !inbox_open && active.is_empty() {
            return finished;
        }
        if !progressed {
            if inbox_open {
                // Idle but still accepting: block on the inbox with a
                // timeout so ring polls keep happening.
                match inbox.recv_timeout(IDLE_PARK) {
                    Ok(ns) => active.push(accept(ns)),
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => inbox_open = false,
                }
            } else {
                std::thread::sleep(IDLE_PARK);
            }
        }
    }
}

/// SplitMix64 finalizer — the stream-id hash for shard assignment.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::TumblingWindowMean;
    use crate::ring::Backpressure;

    #[test]
    fn streams_are_served_and_results_sorted_by_id() {
        let (results, pushed) = serve(EngineConfig::new(3), |engine| {
            let mut handles: Vec<_> = (0..10)
                .map(|_| engine.register(|| TumblingWindowMean::new(4)))
                .collect();
            let mut pushed = 0u64;
            for (k, h) in handles.iter_mut().enumerate() {
                for v in 0..(40 + k) {
                    h.push(v as f64).unwrap();
                    pushed += 1;
                }
            }
            pushed
        });
        assert_eq!(results.len(), 10);
        assert_eq!(results.iter().map(|r| r.records_in).sum::<u64>(), pushed);
        for (k, r) in results.iter().enumerate() {
            assert_eq!(r.stream, k);
            assert_eq!(r.records_in, 40 + k as u64);
            assert_eq!(r.drops, 0);
            assert!(r.shard < 3);
            // 4-record tumbling mean of 0..n: first window mean is 1.5.
            assert_eq!(r.output[0].value, 1.5);
            assert_eq!(r.latency.count(), r.records_in);
        }
    }

    #[test]
    fn stats_snapshot_reports_completion() {
        let (results, observed) = serve(EngineConfig::new(2), |engine| {
            let mut h0 = engine.register(|| TumblingWindowMean::new(2));
            let h1 = engine.register(|| TumblingWindowMean::new(2));
            for v in 0..50 {
                h0.push(v as f64).unwrap();
            }
            drop(h0);
            let stats = engine.stats();
            assert_eq!(stats.streams.len(), 2);
            assert_eq!(stats.shards.len(), 2);
            assert_eq!(
                stats.shards.iter().map(|s| s.streams).sum::<usize>(),
                2,
                "every stream belongs to exactly one shard"
            );
            drop(h1);
            stats
        });
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].records_in, 50);
        assert_eq!(results[1].records_in, 0);
        // The empty stream produced no latency samples anywhere.
        assert_eq!(observed.streams[1].records_in, 0);
    }

    #[test]
    fn hash_assignment_is_deterministic_and_pinning_wins() {
        let (results, ()) = serve(EngineConfig::new(4), |engine| {
            for _ in 0..8 {
                engine.register(|| TumblingWindowMean::new(2)).close();
            }
            let pinned = engine.register_with(
                StreamOptions {
                    shard: Some(2),
                    ..StreamOptions::default()
                },
                || TumblingWindowMean::new(2),
            );
            assert_eq!(pinned.id(), 8);
            pinned.close();
        });
        assert_eq!(results[8].shard, 2);
        let (again, ()) = serve(EngineConfig::new(4), |engine| {
            for _ in 0..8 {
                engine.register(|| TumblingWindowMean::new(2)).close();
            }
        });
        for k in 0..8 {
            assert_eq!(results[k].shard, again[k].shard, "stream {k}");
        }
    }

    #[test]
    fn feed_all_drives_unequal_streams_through_tiny_rings() {
        let data: Vec<Vec<f64>> = (0..12)
            .map(|k| (0..(k * 97 % 400)).map(|i| i as f64).collect())
            .collect();
        let config = EngineConfig {
            shards: 3,
            ring: RingConfig::new(4, Backpressure::Block),
        };
        let (results, ()) = serve(config, |engine| {
            let handles: Vec<_> = (0..data.len())
                .map(|_| engine.register(|| TumblingWindowMean::new(1)))
                .collect();
            let slices: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
            feed_all(handles, &slices);
        });
        for (k, r) in results.iter().enumerate() {
            assert_eq!(r.records_in as usize, data[k].len());
            // Width-1 windows echo the stream: order fully preserved.
            let got: Vec<f64> = r.output.iter().map(|rec| rec.value).collect();
            assert_eq!(got, data[k]);
        }
    }
}
