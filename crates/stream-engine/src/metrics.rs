//! Live metrics export: Prometheus text exposition and JSON snapshots
//! over a minimal std-only HTTP listener.
//!
//! The paper's §5.6 deployment runs ClaSS as an always-on Flink
//! operator; operating such a deployment means watching it. This module
//! turns a [`ServingStats`] snapshot into the two formats operators
//! actually consume:
//!
//! * [`render_prometheus`] — Prometheus text exposition (format 0.0.4)
//!   with **stable label sets**: every per-stream series carries
//!   `stream` (id), `shard`, and `name` labels, every per-shard series a
//!   `shard` label, in a fixed family order so scrapes diff cleanly.
//! * [`render_stats_json`] — a self-describing JSON document
//!   (`class-serving-stats/v1`) for headless runs and the
//!   `class-cli serve-status` view.
//! * [`MetricsServer`] — a `std::net::TcpListener` on its own thread
//!   serving `GET /metrics` and `GET /stats.json` from an attached
//!   [`StatsHandle`]; [`crate::ServingEngine::serve_metrics`] is the
//!   one-call way to get one. No async runtime, no HTTP dependency: a
//!   scrape is one request per connection, which is exactly what
//!   Prometheus and `curl` do.
//! * [`SnapshotWriter`] — periodic atomic (`tmp` + rename) JSON
//!   snapshots to a file, the "either source" half of `serve-status`
//!   when no port can be opened.

use crate::engine::StatsHandle;
use crate::latency::{ServingStats, ShardStats, StreamStats};
use crate::net::{ConnStats, NetStats, NetStatsHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Schema identifier stamped into every [`render_stats_json`] document.
pub const STATS_JSON_SCHEMA: &str = "class-serving-stats/v1";

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline get backslash-escaped per the exposition format spec.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a JSON string value (quote, backslash, control characters).
fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One family's HELP/TYPE header.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// A metric-family table entry: series name, HELP text, and the
/// accessor pulling its value out of a per-shard snapshot.
type ShardFamily = (&'static str, &'static str, fn(&ShardStats) -> u64);

/// A metric-family table entry over per-stream snapshots.
type StreamFamily = (&'static str, &'static str, fn(&StreamStats) -> u64);

/// The per-stream label set, shared by every `class_stream_*` series.
fn stream_labels(s: &StreamStats) -> String {
    format!(
        "stream=\"{}\",shard=\"{}\",name=\"{}\"",
        s.stream,
        s.shard,
        escape_label(&s.name)
    )
}

/// Renders a [`ServingStats`] snapshot as Prometheus text exposition
/// (format 0.0.4). Families appear in a fixed order; series within a
/// family are ordered by shard index / stream id, so two renders of the
/// same snapshot are byte-identical (pinned by a golden-fixture test).
pub fn render_prometheus(stats: &ServingStats) -> String {
    render_prometheus_with_net(stats, None)
}

/// [`render_prometheus`] plus the network ingestion tier's families
/// (`class_net_*`): engine-level connection/frame totals and one series
/// per producer connection (`conn`/`peer` labels). With `net: None` the
/// output is byte-identical to [`render_prometheus`].
pub fn render_prometheus_with_net(stats: &ServingStats, net: Option<&NetStats>) -> String {
    let mut out = String::with_capacity(4096);

    // Engine-level gauges.
    family(
        &mut out,
        "class_engine_uptime_seconds",
        "gauge",
        "Time since the serving engine started.",
    );
    out.push_str(&format!(
        "class_engine_uptime_seconds {}\n",
        stats.uptime.as_secs_f64()
    ));
    family(
        &mut out,
        "class_engine_streams",
        "gauge",
        "Streams registered with the engine.",
    );
    out.push_str(&format!("class_engine_streams {}\n", stats.streams.len()));
    family(
        &mut out,
        "class_engine_active_streams",
        "gauge",
        "Streams not yet done (quarantined streams still draining count).",
    );
    out.push_str(&format!(
        "class_engine_active_streams {}\n",
        stats.active_streams()
    ));
    family(
        &mut out,
        "class_engine_quarantined_streams",
        "gauge",
        "Streams taken out of service by a fault.",
    );
    out.push_str(&format!(
        "class_engine_quarantined_streams {}\n",
        stats.quarantined()
    ));

    // Per-shard families, one series per shard.
    let shard_gauges: [ShardFamily; 6] = [
        (
            "class_shard_streams",
            "Streams assigned to the shard (finished ones included).",
            |s| s.streams as u64,
        ),
        (
            "class_shard_active_streams",
            "Streams the shard is still serving.",
            |s| s.active as u64,
        ),
        (
            "class_shard_quarantined_streams",
            "Streams quarantined on the shard.",
            |s| s.quarantined as u64,
        ),
        (
            "class_shard_records_in_total",
            "Records processed across the shard's streams.",
            |s| s.records_in,
        ),
        (
            "class_shard_drops_total",
            "Backpressure drops across the shard's streams.",
            |s| s.drops,
        ),
        (
            "class_shard_queue_depth",
            "Sum of the shard's ring-buffer depths.",
            |s| s.queue_depth as u64,
        ),
    ];
    for (name, help, get) in shard_gauges {
        let kind = if name.ends_with("_total") {
            "counter"
        } else {
            "gauge"
        };
        family(&mut out, name, kind, help);
        for s in &stats.shards {
            out.push_str(&format!("{name}{{shard=\"{}\"}} {}\n", s.shard, get(s)));
        }
    }
    family(
        &mut out,
        "class_shard_latency_seconds",
        "gauge",
        "Per-record operator latency quantiles over the shard's merged histogram.",
    );
    for s in &stats.shards {
        out.push_str(&format!(
            "class_shard_latency_seconds{{shard=\"{}\",quantile=\"0.5\"}} {}\n",
            s.shard,
            s.p50.as_secs_f64()
        ));
        out.push_str(&format!(
            "class_shard_latency_seconds{{shard=\"{}\",quantile=\"0.99\"}} {}\n",
            s.shard,
            s.p99.as_secs_f64()
        ));
    }

    // Per-stream families, one series per stream.
    let stream_counters: [StreamFamily; 7] = [
        (
            "class_stream_records_in_total",
            "Records consumed while healthy (operator-processed plus guard-healed/skipped).",
            |s| s.records_in,
        ),
        (
            "class_stream_drops_total",
            "Records evicted by the drop-oldest backpressure policy.",
            |s| s.drops,
        ),
        (
            "class_stream_quarantined_after_total",
            "Records drained and discarded after the stream was quarantined.",
            |s| s.quarantined_after,
        ),
        (
            "class_stream_pushed_total",
            "Records accepted into the stream's ring.",
            |s| s.pushed,
        ),
        (
            "class_stream_healed_total",
            "Non-finite values the input guard replaced.",
            |s| s.healed,
        ),
        (
            "class_stream_skipped_total",
            "Records the input guard dropped before the operator.",
            |s| s.skipped,
        ),
        (
            "class_stream_retries_total",
            "Ingest backoff retries against the stream's ring.",
            |s| s.retries,
        ),
    ];
    for (name, help, get) in stream_counters {
        family(&mut out, name, "counter", help);
        for s in &stats.streams {
            out.push_str(&format!("{name}{{{}}} {}\n", stream_labels(s), get(s)));
        }
    }
    family(
        &mut out,
        "class_stream_queue_depth",
        "gauge",
        "Records currently queued in the stream's ring buffer.",
    );
    for s in &stats.streams {
        out.push_str(&format!(
            "class_stream_queue_depth{{{}}} {}\n",
            stream_labels(s),
            s.queue_depth
        ));
    }
    family(
        &mut out,
        "class_stream_done",
        "gauge",
        "1 once the stream is closed, drained, and flushed.",
    );
    for s in &stats.streams {
        out.push_str(&format!(
            "class_stream_done{{{}}} {}\n",
            stream_labels(s),
            u8::from(s.done)
        ));
    }
    family(
        &mut out,
        "class_stream_quarantined",
        "gauge",
        "1 if the stream was taken out of service by a fault.",
    );
    for s in &stats.streams {
        out.push_str(&format!(
            "class_stream_quarantined{{{}}} {}\n",
            stream_labels(s),
            u8::from(s.state.is_quarantined())
        ));
    }
    family(
        &mut out,
        "class_stream_latency_seconds",
        "gauge",
        "Per-record operator latency quantiles.",
    );
    for s in &stats.streams {
        out.push_str(&format!(
            "class_stream_latency_seconds{{{},quantile=\"0.5\"}} {}\n",
            stream_labels(s),
            s.p50.as_secs_f64()
        ));
        out.push_str(&format!(
            "class_stream_latency_seconds{{{},quantile=\"0.99\"}} {}\n",
            stream_labels(s),
            s.p99.as_secs_f64()
        ));
    }
    family(
        &mut out,
        "class_stream_latency_mean_seconds",
        "gauge",
        "Mean per-record operator latency.",
    );
    for s in &stats.streams {
        out.push_str(&format!(
            "class_stream_latency_mean_seconds{{{}}} {}\n",
            stream_labels(s),
            s.mean.as_secs_f64()
        ));
    }

    if let Some(net) = net {
        render_net_families(&mut out, net);
    }
    out
}

/// The per-connection label set, shared by every `class_net_conn_*`
/// series.
fn conn_labels(c: &ConnStats) -> String {
    format!("conn=\"{}\",peer=\"{}\"", c.conn, escape_label(&c.peer))
}

/// A metric-family table entry over per-connection snapshots.
type ConnFamily = (&'static str, &'static str, fn(&ConnStats) -> u64);

/// Appends the network ingestion tier's metric families.
fn render_net_families(out: &mut String, net: &NetStats) {
    family(
        out,
        "class_net_connections",
        "gauge",
        "Producer connections currently open.",
    );
    out.push_str(&format!("class_net_connections {}\n", net.active));
    family(
        out,
        "class_net_connections_total",
        "counter",
        "Producer connections ever accepted.",
    );
    out.push_str(&format!("class_net_connections_total {}\n", net.accepted));
    family(
        out,
        "class_net_frames_total",
        "counter",
        "Protocol frames received across all connections.",
    );
    out.push_str(&format!("class_net_frames_total {}\n", net.frames()));
    family(
        out,
        "class_net_records_total",
        "counter",
        "Record values accepted into rings over the wire.",
    );
    out.push_str(&format!("class_net_records_total {}\n", net.records()));
    family(
        out,
        "class_net_throttle_total",
        "counter",
        "THROTTLE frames sent (block-policy backpressure stalls).",
    );
    out.push_str(&format!(
        "class_net_throttle_total {}\n",
        net.throttle_events()
    ));
    family(
        out,
        "class_net_errors_total",
        "counter",
        "Typed protocol ERROR frames sent to producers.",
    );
    out.push_str(&format!(
        "class_net_errors_total {}\n",
        net.protocol_errors()
    ));

    let conn_gauges: [ConnFamily; 2] = [
        (
            "class_net_conn_open",
            "1 while the producer connection is open.",
            |c| u64::from(c.open),
        ),
        (
            "class_net_conn_streams",
            "Streams currently attached by the connection.",
            |c| c.streams as u64,
        ),
    ];
    for (name, help, get) in conn_gauges {
        family(out, name, "gauge", help);
        for c in &net.connections {
            out.push_str(&format!("{name}{{{}}} {}\n", conn_labels(c), get(c)));
        }
    }
    let conn_counters: [ConnFamily; 4] = [
        (
            "class_net_conn_frames_total",
            "Protocol frames received on the connection.",
            |c| c.frames,
        ),
        (
            "class_net_conn_records_total",
            "Record values the connection fed into rings.",
            |c| c.records,
        ),
        (
            "class_net_conn_throttle_total",
            "THROTTLE frames sent to the connection.",
            |c| c.throttle_events,
        ),
        (
            "class_net_conn_errors_total",
            "Typed ERROR frames sent to the connection.",
            |c| c.protocol_errors,
        ),
    ];
    for (name, help, get) in conn_counters {
        family(out, name, "counter", help);
        for c in &net.connections {
            out.push_str(&format!("{name}{{{}}} {}\n", conn_labels(c), get(c)));
        }
    }
    family(
        out,
        "class_net_conn_frames_per_sec",
        "gauge",
        "Frames per second over the connection's lifetime.",
    );
    for c in &net.connections {
        out.push_str(&format!(
            "class_net_conn_frames_per_sec{{{}}} {}\n",
            conn_labels(c),
            c.frames_per_sec()
        ));
    }
}

/// Renders a [`ServingStats`] snapshot as a `class-serving-stats/v1`
/// JSON document — the payload behind `GET /stats.json`, the
/// [`SnapshotWriter`] file, and `class-cli serve-status`.
pub fn render_stats_json(stats: &ServingStats) -> String {
    render_stats_json_with_net(stats, None)
}

/// [`render_stats_json`] plus a `"net"` object describing the network
/// ingestion tier (additive — the schema stays `class-serving-stats/v1`
/// and the object is simply absent when no ingest server is attached).
pub fn render_stats_json_with_net(stats: &ServingStats, net: Option<&NetStats>) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{STATS_JSON_SCHEMA}\",\n"));
    out.push_str(&format!(
        "  \"uptime_s\": {:.3},\n",
        stats.uptime.as_secs_f64()
    ));
    out.push_str("  \"totals\": {");
    out.push_str(&format!(
        "\"streams\": {}, \"active\": {}, \"quarantined\": {}, \"records_in\": {}, \
         \"drops\": {}, \"queue_depth\": {}, \"records_per_sec\": {:.1}",
        stats.streams.len(),
        stats.active_streams(),
        stats.quarantined(),
        stats.records_in(),
        stats.drops(),
        stats.queue_depth(),
        stats.records_per_sec()
    ));
    out.push_str("},\n");
    out.push_str("  \"shards\": [\n");
    for (i, s) in stats.shards.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shard\": {}, \"streams\": {}, \"active\": {}, \"quarantined\": {}, \
             \"records_in\": {}, \"drops\": {}, \"queue_depth\": {}, \"p50_ns\": {}, \
             \"p99_ns\": {}}}{}\n",
            s.shard,
            s.streams,
            s.active,
            s.quarantined,
            s.records_in,
            s.drops,
            s.queue_depth,
            s.p50.as_nanos(),
            s.p99.as_nanos(),
            if i + 1 < stats.shards.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"streams\": [\n");
    for (i, s) in stats.streams.iter().enumerate() {
        let state = if s.state.is_quarantined() {
            "quarantined"
        } else if s.done {
            "done"
        } else {
            "active"
        };
        let quarantine = match s.state.quarantine() {
            Some((cause, at_record)) => format!(
                "{{\"at_record\": {at_record}, \"cause\": \"{}\"}}",
                escape_json(&cause.to_string())
            ),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"stream\": {}, \"name\": \"{}\", \"shard\": {}, \"state\": \"{state}\", \
             \"records_in\": {}, \"drops\": {}, \"quarantined_after\": {}, \"pushed\": {}, \
             \"healed\": {}, \"skipped\": {}, \"retries\": {}, \"queue_depth\": {}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}, \"quarantine\": {quarantine}}}{}\n",
            s.stream,
            escape_json(&s.name),
            s.shard,
            s.records_in,
            s.drops,
            s.quarantined_after,
            s.pushed,
            s.healed,
            s.skipped,
            s.retries,
            s.queue_depth,
            s.p50.as_nanos(),
            s.p99.as_nanos(),
            s.mean.as_nanos(),
            if i + 1 < stats.streams.len() { "," } else { "" }
        ));
    }
    match net {
        None => out.push_str("  ]\n}\n"),
        Some(net) => {
            out.push_str("  ],\n");
            out.push_str("  \"net\": {\n");
            out.push_str(&format!(
                "    \"accepted\": {}, \"active\": {}, \"frames\": {}, \"records\": {}, \
                 \"throttle_events\": {}, \"protocol_errors\": {},\n",
                net.accepted,
                net.active,
                net.frames(),
                net.records(),
                net.throttle_events(),
                net.protocol_errors()
            ));
            out.push_str("    \"connections\": [\n");
            for (i, c) in net.connections.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"conn\": {}, \"peer\": \"{}\", \"open\": {}, \"streams\": {}, \
                     \"frames\": {}, \"records\": {}, \"throttle_events\": {}, \
                     \"protocol_errors\": {}, \"uptime_s\": {:.3}, \"frames_per_sec\": {:.1}}}{}\n",
                    c.conn,
                    escape_json(&c.peer),
                    c.open,
                    c.streams,
                    c.frames,
                    c.records,
                    c.throttle_events,
                    c.protocol_errors,
                    c.uptime.as_secs_f64(),
                    c.frames_per_sec(),
                    if i + 1 < net.connections.len() {
                        ","
                    } else {
                        ""
                    }
                ));
            }
            out.push_str("    ]\n  }\n}\n");
        }
    }
    out
}

/// Peak resident set size in kB from `/proc/self/status`, if available
/// (Linux). The soak binaries and leak tests bound this.
pub fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A minimal std-only HTTP metrics endpoint on its own thread.
///
/// Serves `GET /metrics` (Prometheus text exposition) and
/// `GET /stats.json` (the JSON snapshot) from the currently attached
/// [`StatsHandle`]; `503` until one is attached, `404` elsewhere. The
/// listener accepts non-blockingly and shuts down on [`Drop`].
///
/// [`MetricsServer::attach`] is callable repeatedly — a multi-round soak
/// re-attaches each round's engine while the endpoint (and its scrape
/// URL) stays up.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    source: Arc<Mutex<Option<StatsHandle>>>,
    net_source: Arc<Mutex<Option<NetStatsHandle>>>,
    stop: Arc<AtomicBool>,
    scrapes: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9599"`; port `0` picks an
    /// ephemeral port, read back via [`MetricsServer::addr`]) and starts
    /// the listener thread. No stats are served until
    /// [`MetricsServer::attach`].
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let source: Arc<Mutex<Option<StatsHandle>>> = Arc::new(Mutex::new(None));
        let net_source: Arc<Mutex<Option<NetStatsHandle>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));
        let thread = {
            let source = Arc::clone(&source);
            let net_source = Arc::clone(&net_source);
            let stop = Arc::clone(&stop);
            let scrapes = Arc::clone(&scrapes);
            std::thread::Builder::new()
                .name("class-metrics".into())
                .spawn(move || listen_loop(listener, &source, &net_source, &stop, &scrapes))?
        };
        Ok(MetricsServer {
            addr,
            source,
            net_source,
            stop,
            scrapes,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port `0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Attaches (or replaces) the stats source served from now on.
    pub fn attach(&self, handle: StatsHandle) {
        *lock(&self.source) = Some(handle);
    }

    /// Attaches (or replaces) a network ingestion tier: `/metrics`
    /// grows the `class_net_*` families and `/stats.json` a `"net"`
    /// object (see [`crate::IngestServer::net_stats`]).
    pub fn attach_net(&self, handle: NetStatsHandle) {
        *lock(&self.net_source) = Some(handle);
    }

    /// How many `/metrics` scrapes have been answered.
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Accept-poll cadence; also bounds shutdown latency on `Drop`.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

fn listen_loop(
    listener: TcpListener,
    source: &Mutex<Option<StatsHandle>>,
    net_source: &Mutex<Option<NetStatsHandle>>,
    stop: &AtomicBool,
    scrapes: &AtomicU64,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                // A failed scrape must not take the listener down.
                let _ = handle_conn(conn, source, net_source, scrapes);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_conn(
    mut conn: TcpStream,
    source: &Mutex<Option<StatsHandle>>,
    net_source: &Mutex<Option<NetStatsHandle>>,
    scrapes: &AtomicU64,
) -> std::io::Result<()> {
    conn.set_nonblocking(false)?;
    conn.set_read_timeout(Some(Duration::from_secs(2)))?;
    conn.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = conn.read(&mut buf)?;
        if n == 0 || head.len() + n > 8192 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let request = String::from_utf8_lossy(&head);
    let path = request.split_whitespace().nth(1).unwrap_or("/").to_string();
    let snapshot = lock(source).as_ref().map(StatsHandle::stats);
    let net_snapshot = lock(net_source).as_ref().map(NetStatsHandle::stats);
    let (status, content_type, body) = match (path.as_str(), snapshot) {
        ("/metrics", Some(stats)) => {
            scrapes.fetch_add(1, Ordering::Relaxed);
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus_with_net(&stats, net_snapshot.as_ref()),
            )
        }
        ("/stats.json", Some(stats)) => (
            "200 OK",
            "application/json",
            render_stats_json_with_net(&stats, net_snapshot.as_ref()),
        ),
        ("/metrics" | "/stats.json", None) => (
            "503 Service Unavailable",
            "text/plain; charset=utf-8",
            "no serving engine attached\n".to_string(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics or /stats.json\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(response.as_bytes())
}

/// Periodically writes [`render_stats_json`] snapshots to a file
/// (atomically: a `.tmp` sibling renamed into place), for headless runs
/// where no port can be opened. A final snapshot is written on [`Drop`],
/// so the file always ends with the run's terminal stats.
#[derive(Debug)]
pub struct SnapshotWriter {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// How often the writer wakes to check for stop between snapshots.
const SNAPSHOT_POLL: Duration = Duration::from_millis(50);

impl SnapshotWriter {
    /// Starts snapshotting `handle` to `path` every `interval`.
    pub fn start(
        handle: StatsHandle,
        path: impl Into<PathBuf>,
        interval: Duration,
    ) -> SnapshotWriter {
        let path = path.into();
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("class-snapshots".into())
                .spawn(move || {
                    loop {
                        let _ = write_snapshot(&handle, &path);
                        let mut slept = Duration::ZERO;
                        while slept < interval && !stop.load(Ordering::Relaxed) {
                            std::thread::sleep(SNAPSHOT_POLL);
                            slept += SNAPSHOT_POLL;
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    // Terminal snapshot: the file ends at the final stats.
                    let _ = write_snapshot(&handle, &path);
                })
                .expect("spawning the snapshot writer thread")
        };
        SnapshotWriter {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the writer after one final snapshot (same as dropping it).
    pub fn stop(self) {}
}

impl Drop for SnapshotWriter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn write_snapshot(handle: &StatsHandle, path: &Path) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, render_stats_json(&handle.stats()))?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamState;
    use crate::latency::{ServingStats, StreamStats};

    fn one_stream(name: &str) -> ServingStats {
        ServingStats {
            streams: vec![StreamStats {
                stream: 0,
                name: name.to_string(),
                shard: 0,
                records_in: 10,
                drops: 1,
                quarantined_after: 0,
                pushed: 12,
                healed: 0,
                skipped: 0,
                retries: 0,
                queue_depth: 1,
                done: false,
                state: StreamState::Active,
                p50: Duration::from_nanos(1024),
                p99: Duration::from_nanos(4096),
                mean: Duration::from_nanos(1500),
            }],
            shards: Vec::new(),
            uptime: Duration::from_secs(2),
        }
    }

    #[test]
    fn label_escaping_covers_quotes_backslashes_newlines() {
        let rendered = render_prometheus(&one_stream("a \"quoted\\path\"\nline"));
        assert!(
            rendered.contains(r#"name="a \"quoted\\path\"\nline""#),
            "{rendered}"
        );
        // The raw newline must not appear inside any series line.
        for line in rendered.lines() {
            assert!(
                line.starts_with('#') || line.contains(' ') && !line.trim_end().is_empty(),
                "malformed line {line:?}"
            );
        }
    }

    #[test]
    fn json_escaping_keeps_document_single_value() {
        let doc = render_stats_json(&one_stream("tab\there \"q\" \\"));
        assert!(doc.contains(r#""name": "tab\there \"q\" \\""#), "{doc}");
    }

    #[test]
    fn counters_render_from_snapshot_fields() {
        let stats = one_stream("s");
        let rendered = render_prometheus(&stats);
        assert!(rendered
            .contains("class_stream_records_in_total{stream=\"0\",shard=\"0\",name=\"s\"} 10"));
        assert!(
            rendered.contains("class_stream_pushed_total{stream=\"0\",shard=\"0\",name=\"s\"} 12")
        );
        assert!(rendered.contains("class_engine_uptime_seconds 2"));
    }

    #[test]
    fn vm_hwm_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(vm_hwm_kb().unwrap() > 0);
        }
    }
}
