//! Stream operators: the unit of computation of the engine.

use crate::Record;
use class_core::{MultivariateClass, StreamingSegmenter};

/// A one-at-a-time stream operator transforming `In` records into zero or
/// more `Out` records. Mirrors Flink's `OneInputStreamOperator`.
pub trait Operator {
    /// Input payload type.
    type In;
    /// Output payload type.
    type Out;

    /// Processes one record, pushing any outputs into `out`.
    fn process(&mut self, rec: Record<Self::In>, out: &mut Vec<Record<Self::Out>>);

    /// Called once at end-of-stream; operators with buffered state may
    /// emit remaining output.
    fn flush(&mut self, _out: &mut Vec<Record<Self::Out>>) {}

    /// Operator name for logs and reports.
    fn name(&self) -> &'static str {
        "operator"
    }
}

/// Stateless 1:1 mapping operator.
pub struct MapOperator<I, O, F: FnMut(I) -> O> {
    f: F,
    _marker: core::marker::PhantomData<fn(I) -> O>,
}

impl<I, O, F: FnMut(I) -> O> MapOperator<I, O, F> {
    /// Wraps a mapping function.
    pub fn new(f: F) -> Self {
        Self {
            f,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<I, O, F: FnMut(I) -> O> Operator for MapOperator<I, O, F> {
    type In = I;
    type Out = O;

    fn process(&mut self, rec: Record<I>, out: &mut Vec<Record<O>>) {
        out.push(Record::new(rec.timestamp, (self.f)(rec.value)));
    }

    fn name(&self) -> &'static str {
        "map"
    }
}

/// Stateless filtering operator.
pub struct FilterOperator<T, F: FnMut(&T) -> bool> {
    f: F,
    _marker: core::marker::PhantomData<fn(&T)>,
}

impl<T, F: FnMut(&T) -> bool> FilterOperator<T, F> {
    /// Wraps a predicate.
    pub fn new(f: F) -> Self {
        Self {
            f,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<T, F: FnMut(&T) -> bool> Operator for FilterOperator<T, F> {
    type In = T;
    type Out = T;

    fn process(&mut self, rec: Record<T>, out: &mut Vec<Record<T>>) {
        if (self.f)(&rec.value) {
            out.push(rec);
        }
    }

    fn name(&self) -> &'static str {
        "filter"
    }
}

/// Tumbling-window mean aggregation (a classic pre-processing operator in
/// the IoT pipelines of §5; also used by tests as a non-trivial stateful
/// operator).
pub struct TumblingWindowMean {
    width: usize,
    sum: f64,
    count: usize,
    window_start: u64,
}

impl TumblingWindowMean {
    /// Creates an aggregator over windows of `width` records.
    pub fn new(width: usize) -> Self {
        assert!(width > 0);
        Self {
            width,
            sum: 0.0,
            count: 0,
            window_start: 0,
        }
    }
}

impl Operator for TumblingWindowMean {
    type In = f64;
    type Out = f64;

    fn process(&mut self, rec: Record<f64>, out: &mut Vec<Record<f64>>) {
        if self.count == 0 {
            self.window_start = rec.timestamp;
        }
        self.sum += rec.value;
        self.count += 1;
        if self.count == self.width {
            out.push(Record::new(self.window_start, self.sum / self.width as f64));
            self.sum = 0.0;
            self.count = 0;
        }
    }

    fn flush(&mut self, out: &mut Vec<Record<f64>>) {
        if self.count > 0 {
            out.push(Record::new(self.window_start, self.sum / self.count as f64));
            self.sum = 0.0;
            self.count = 0;
        }
    }

    fn name(&self) -> &'static str {
        "tumbling-window-mean"
    }
}

/// The paper's ClaSS window operator (§4.4): wraps any
/// [`StreamingSegmenter`] and emits one record per detected change point,
/// whose payload is the change point position.
pub struct SegmenterOperator<S: StreamingSegmenter> {
    seg: S,
    scratch: Vec<u64>,
}

impl<S: StreamingSegmenter> SegmenterOperator<S> {
    /// Wraps a segmenter.
    pub fn new(seg: S) -> Self {
        Self {
            seg,
            scratch: Vec::new(),
        }
    }

    /// Access to the wrapped segmenter.
    pub fn segmenter(&self) -> &S {
        &self.seg
    }
}

impl<S: StreamingSegmenter> Operator for SegmenterOperator<S> {
    type In = f64;
    type Out = u64;

    fn process(&mut self, rec: Record<f64>, out: &mut Vec<Record<u64>>) {
        self.scratch.clear();
        self.seg.step(rec.value, &mut self.scratch);
        for &cp in &self.scratch {
            out.push(Record::new(rec.timestamp, cp));
        }
    }

    fn flush(&mut self, out: &mut Vec<Record<u64>>) {
        self.scratch.clear();
        self.seg.finalize(&mut self.scratch);
        for &cp in &self.scratch {
            out.push(Record::new(u64::MAX, cp));
        }
    }

    fn name(&self) -> &'static str {
        "segmenter"
    }
}

/// The multivariate ClaSS window operator (paper §6 sensor fusion): one
/// multi-channel stream registers as **one** serving-engine stream. The
/// ring carries the channels interleaved frame-major (the layout
/// [`crate::MultiChannelReplaySource::interleaved`] produces); this
/// operator reassembles each frame and steps the fused segmenter once
/// per complete frame. Emitted records carry the change point position
/// (in frames) as payload and the frame index as timestamp, matching
/// [`SegmenterOperator`]'s convention (`u64::MAX` for flush-time
/// reports).
///
/// The interleaving contract requires **lossless transport**: register
/// the stream with the `Block` backpressure policy. A lossy ring
/// (`DropOldest`) evicts individual scalar records, which permanently
/// desynchronizes frame reassembly from the first drop on.
pub struct MultivariateSegmenterOperator {
    seg: MultivariateClass,
    row: Vec<f64>,
    scratch: Vec<u64>,
}

impl MultivariateSegmenterOperator {
    /// Wraps a fused multivariate segmenter.
    pub fn new(seg: MultivariateClass) -> Self {
        Self {
            row: Vec::with_capacity(seg.n_channels()),
            seg,
            scratch: Vec::new(),
        }
    }

    /// Access to the wrapped segmenter.
    pub fn segmenter(&self) -> &MultivariateClass {
        &self.seg
    }
}

impl Operator for MultivariateSegmenterOperator {
    type In = f64;
    type Out = u64;

    fn process(&mut self, rec: Record<f64>, out: &mut Vec<Record<u64>>) {
        self.row.push(rec.value);
        if self.row.len() == self.seg.n_channels() {
            // `rec` is the frame's last interleaved record, so the frame
            // index is its position divided by the channel count.
            let frame = rec.timestamp / self.seg.n_channels() as u64;
            self.scratch.clear();
            self.seg.step(&self.row, &mut self.scratch);
            self.row.clear();
            for &cp in &self.scratch {
                out.push(Record::new(frame, cp));
            }
        }
    }

    fn flush(&mut self, out: &mut Vec<Record<u64>>) {
        // A trailing partial frame (producer closed mid-frame) carries no
        // complete observation vector and is dropped.
        self.row.clear();
        self.scratch.clear();
        self.seg.finalize(&mut self.scratch);
        for &cp in &self.scratch {
            out.push(Record::new(u64::MAX, cp));
        }
    }

    fn name(&self) -> &'static str {
        "multivariate-segmenter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_transforms_values() {
        let mut op = MapOperator::new(|x: f64| x * 2.0);
        let mut out = Vec::new();
        op.process(Record::new(7, 1.5), &mut out);
        assert_eq!(out, vec![Record::new(7, 3.0)]);
        assert_eq!(op.name(), "map");
    }

    #[test]
    fn filter_drops_records() {
        let mut op = FilterOperator::new(|x: &f64| *x > 0.0);
        let mut out = Vec::new();
        op.process(Record::new(0, -1.0), &mut out);
        op.process(Record::new(1, 2.0), &mut out);
        assert_eq!(out, vec![Record::new(1, 2.0)]);
    }

    #[test]
    fn tumbling_mean_emits_per_window_and_flushes_remainder() {
        let mut op = TumblingWindowMean::new(3);
        let mut out = Vec::new();
        for (t, v) in [(0u64, 3.0), (1, 6.0), (2, 9.0), (3, 1.0)] {
            op.process(Record::new(t, v), &mut out);
        }
        assert_eq!(out, vec![Record::new(0, 6.0)]);
        op.flush(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], Record::new(3, 1.0));
    }

    #[test]
    fn segmenter_operator_forwards_cps() {
        struct Fake(u64);
        impl StreamingSegmenter for Fake {
            fn step(&mut self, _x: f64, cps: &mut Vec<u64>) {
                self.0 += 1;
                if self.0 % 5 == 0 {
                    cps.push(self.0 - 1);
                }
            }
            fn name(&self) -> &'static str {
                "fake"
            }
        }
        let mut op = SegmenterOperator::new(Fake(0));
        let mut out = Vec::new();
        for t in 0..10u64 {
            op.process(Record::new(t, 0.0), &mut out);
        }
        assert_eq!(out, vec![Record::new(4, 4), Record::new(9, 9)]);
    }
}
