//! Fixed-capacity ring buffers with explicit backpressure policies.
//!
//! The engine's transport between a stream's producer (the ingest side)
//! and the shard worker that steps its operator. Each ring is SPSC by
//! construction — one [`Producer`] held by the [`crate::StreamHandle`],
//! one [`Consumer`] owned by the stream's shard — and never reallocates
//! after creation, so a full ring exerts *backpressure* instead of
//! growing without bound (Flink's bounded network buffers; FLOSS's
//! bounded online model makes the same constant-memory argument for the
//! operator itself).
//!
//! What happens when the ring is full is the per-stream
//! [`Backpressure`] policy:
//!
//! * [`Backpressure::Block`] — the producer waits for space; every
//!   record is delivered (lossless, the default).
//! * [`Backpressure::DropOldest`] — the oldest queued record is evicted
//!   and counted; a lagging consumer sees the freshest window of the
//!   feed (live dashboards, lossy sensors).
//! * [`Backpressure::Error`] — the push fails with a typed
//!   [`OverflowError`] and the record is not enqueued; the caller
//!   decides (fail-fast ingestion).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Locks a ring mutex, recovering from poisoning. The inner state is a
/// plain `VecDeque` plus two flags and is never left mid-mutation by a
/// panic inside the critical sections below (no user code runs under the
/// lock), so a poisoned lock only means *some* thread panicked while
/// holding it — the data itself is always consistent and draining must
/// keep working so surviving streams are unaffected.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a full ring does to an incoming record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Wait for the consumer to free a slot; lossless (default).
    #[default]
    Block,
    /// Evict the oldest queued record and count it as a drop.
    DropOldest,
    /// Reject the push with a typed [`OverflowError`].
    Error,
}

/// Capacity + policy of one ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Maximum queued records (must be >= 1). The ring never holds more.
    pub capacity: usize,
    /// Full-ring behaviour.
    pub policy: Backpressure,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            policy: Backpressure::Block,
        }
    }
}

impl RingConfig {
    /// A config with the given capacity and policy.
    pub fn new(capacity: usize, policy: Backpressure) -> Self {
        Self { capacity, policy }
    }
}

/// Typed overflow under [`Backpressure::Error`]: the ring was full and
/// the record was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowError {
    /// Capacity of the ring that rejected the record.
    pub capacity: usize,
}

impl std::fmt::Display for OverflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ring buffer overflow: all {} slots full under the `error` backpressure policy",
            self.capacity
        )
    }
}

impl std::error::Error for OverflowError {}

/// Why a push did not (fully) succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Full ring under [`Backpressure::Error`]; the record was rejected.
    Overflow(OverflowError),
    /// The consumer (shard worker) is gone; no record can be delivered.
    Disconnected,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Overflow(e) => e.fmt(f),
            PushError::Disconnected => write!(f, "ring buffer consumer disconnected"),
        }
    }
}

impl std::error::Error for PushError {}

/// Depth/drop counters readable without touching the ring lock — the
/// engine's stats snapshot polls these from a third thread.
#[derive(Debug, Default)]
pub(crate) struct RingCounters {
    /// Records currently queued.
    pub(crate) depth: AtomicUsize,
    /// Records evicted under [`Backpressure::DropOldest`].
    pub(crate) drops: AtomicU64,
    /// Records ever accepted into the ring (rejected pushes excluded).
    /// The fault-accounting ledger balances against this:
    /// `processed + dropped + quarantined_after == pushed`.
    pub(crate) pushed: AtomicU64,
    /// Backoff retries the producer performed against this ring.
    pub(crate) retries: AtomicU64,
}

#[derive(Debug)]
struct Inner<T> {
    buf: VecDeque<T>,
    tx_closed: bool,
    rx_closed: bool,
}

#[derive(Debug)]
struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Producers blocked under [`Backpressure::Block`] wait here.
    not_full: Condvar,
    counters: Arc<RingCounters>,
    capacity: usize,
    policy: Backpressure,
}

/// Creates a bounded ring, returning its two ends.
pub fn ring<T>(cfg: RingConfig) -> (Producer<T>, Consumer<T>) {
    assert!(cfg.capacity >= 1, "ring capacity must be >= 1");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            buf: VecDeque::with_capacity(cfg.capacity),
            tx_closed: false,
            rx_closed: false,
        }),
        not_full: Condvar::new(),
        counters: Arc::new(RingCounters::default()),
        capacity: cfg.capacity,
        policy: cfg.policy,
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

/// The write end of a ring. Dropping it closes the stream: the consumer
/// drains what is queued, then observes end-of-stream.
#[derive(Debug)]
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Producer<T> {
    /// Pushes one record, applying the ring's backpressure policy when
    /// full: `Block` waits, `DropOldest` evicts and succeeds, `Error`
    /// returns [`PushError::Overflow`] without enqueueing.
    pub fn push(&mut self, item: T) -> Result<(), PushError> {
        let sh = &*self.shared;
        let mut inner = lock_recover(&sh.inner);
        loop {
            if inner.rx_closed {
                return Err(PushError::Disconnected);
            }
            if inner.buf.len() < sh.capacity {
                inner.buf.push_back(item);
                sh.counters.depth.store(inner.buf.len(), Ordering::Relaxed);
                sh.counters.pushed.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            match sh.policy {
                Backpressure::Block => {
                    inner = sh
                        .not_full
                        .wait(inner)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Backpressure::DropOldest => {
                    inner.buf.pop_front();
                    // Release pairs with the stats snapshot's Acquire
                    // load: the evicted record's push is sequenced
                    // before this increment, keeping the live ledger
                    // inequality (`lhs <= pushed`) observable.
                    sh.counters.drops.fetch_add(1, Ordering::Release);
                }
                Backpressure::Error => {
                    return Err(PushError::Overflow(OverflowError {
                        capacity: sh.capacity,
                    }));
                }
            }
        }
    }

    /// Non-blocking bulk push: enqueues a prefix of `items` under one
    /// lock acquisition and returns how many were accepted. `Block` and
    /// `Error` accept what fits without waiting or failing (this is the
    /// "try" flavour — the typed overflow only surfaces through
    /// [`Producer::push`]); `DropOldest` accepts everything, evicting as
    /// needed.
    pub fn try_feed(&mut self, items: &[T]) -> Result<usize, PushError>
    where
        T: Copy,
    {
        if items.is_empty() {
            return Ok(0);
        }
        let sh = &*self.shared;
        let mut inner = lock_recover(&sh.inner);
        if inner.rx_closed {
            return Err(PushError::Disconnected);
        }
        let accepted = match sh.policy {
            Backpressure::Block | Backpressure::Error => {
                let space = sh.capacity - inner.buf.len();
                let n = items.len().min(space);
                inner.buf.extend(items[..n].iter().copied());
                n
            }
            Backpressure::DropOldest => {
                let mut drops = 0u64;
                for &it in items {
                    if inner.buf.len() == sh.capacity {
                        inner.buf.pop_front();
                        drops += 1;
                    }
                    inner.buf.push_back(it);
                }
                // `pushed` before `drops`: a record accepted by this
                // very call may also be the one evicted by it, and a
                // lock-free stats reader must never observe the
                // eviction without its push.
                sh.counters
                    .pushed
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                if drops > 0 {
                    sh.counters.drops.fetch_add(drops, Ordering::Release);
                }
                items.len()
            }
        };
        sh.counters.depth.store(inner.buf.len(), Ordering::Relaxed);
        if !matches!(sh.policy, Backpressure::DropOldest) {
            sh.counters
                .pushed
                .fetch_add(accepted as u64, Ordering::Relaxed);
        }
        Ok(accepted)
    }

    /// Records currently queued (racy snapshot, lock-free).
    pub fn depth(&self) -> usize {
        self.shared.counters.depth.load(Ordering::Relaxed)
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Records evicted so far under [`Backpressure::DropOldest`].
    pub fn drops(&self) -> u64 {
        self.shared.counters.drops.load(Ordering::Relaxed)
    }

    /// Records ever accepted into the ring (rejected pushes excluded).
    pub fn pushed(&self) -> u64 {
        self.shared.counters.pushed.load(Ordering::Relaxed)
    }

    /// Counts `n` producer backoff retries against this ring.
    pub(crate) fn note_retries(&self, n: u64) {
        self.shared.counters.retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Shared counters handle for external stats snapshots.
    pub(crate) fn counters(&self) -> Arc<RingCounters> {
        Arc::clone(&self.shared.counters)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        let mut inner = lock_recover(&self.shared.inner);
        inner.tx_closed = true;
    }
}

/// The read end of a ring, owned by the stream's shard worker.
#[derive(Debug)]
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Consumer<T> {
    /// Moves up to `max` queued records into `out` under one lock
    /// acquisition, wakes any blocked producer, and returns the count.
    pub fn drain_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let sh = &*self.shared;
        let mut inner = lock_recover(&sh.inner);
        let n = inner.buf.len().min(max);
        out.extend(inner.buf.drain(..n));
        sh.counters.depth.store(inner.buf.len(), Ordering::Relaxed);
        if n > 0 {
            // SPSC: at most one producer can be parked on this ring.
            sh.not_full.notify_one();
        }
        n
    }

    /// End-of-stream: the producer is gone and the ring is drained.
    pub fn is_finished(&self) -> bool {
        let inner = lock_recover(&self.shared.inner);
        inner.tx_closed && inner.buf.is_empty()
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        let mut inner = lock_recover(&self.shared.inner);
        inner.rx_closed = true;
        drop(inner);
        // A producer blocked on a full ring must observe the disconnect.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_depth_accounting() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(4, Backpressure::Block));
        for v in 0..4 {
            tx.push(v).unwrap();
        }
        assert_eq!(tx.depth(), 4);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(tx.depth(), 1);
        assert_eq!(rx.drain_into(&mut out, 8), 1);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(!rx.is_finished());
        drop(tx);
        assert!(rx.is_finished());
    }

    #[test]
    fn drop_oldest_evicts_exactly_the_overflow_and_counts_it() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(4, Backpressure::DropOldest));
        for v in 0..10 {
            tx.push(v).unwrap();
        }
        assert_eq!(tx.drops(), 6);
        assert_eq!(tx.depth(), 4);
        let mut out = Vec::new();
        rx.drain_into(&mut out, usize::MAX);
        // The freshest window survives.
        assert_eq!(out, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drop_oldest_bulk_feed_counts_chunk_evictions() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(3, Backpressure::DropOldest));
        let items: Vec<u32> = (0..8).collect();
        assert_eq!(tx.try_feed(&items).unwrap(), 8);
        assert_eq!(tx.drops(), 5);
        let mut out = Vec::new();
        rx.drain_into(&mut out, usize::MAX);
        assert_eq!(out, vec![5, 6, 7]);
    }

    #[test]
    fn error_policy_surfaces_typed_overflow_and_rejects_the_record() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(2, Backpressure::Error));
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let err = tx.push(3).unwrap_err();
        assert_eq!(err, PushError::Overflow(OverflowError { capacity: 2 }));
        let mut out = Vec::new();
        rx.drain_into(&mut out, usize::MAX);
        // The rejected record never entered the ring.
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn try_feed_accepts_only_what_fits_under_block() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(3, Backpressure::Block));
        assert_eq!(tx.try_feed(&[1, 2, 3, 4, 5]).unwrap(), 3);
        let mut out = Vec::new();
        rx.drain_into(&mut out, 2);
        assert_eq!(tx.try_feed(&[4, 5, 6]).unwrap(), 2);
        rx.drain_into(&mut out, usize::MAX);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn blocked_producer_wakes_when_consumer_drains() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(1, Backpressure::Block));
        tx.push(0).unwrap();
        let pusher = std::thread::spawn(move || {
            tx.push(1).unwrap(); // blocks until the main thread drains
            tx.drops()
        });
        // Give the pusher a chance to park, then free a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut out = Vec::new();
        while out.len() < 2 {
            rx.drain_into(&mut out, usize::MAX);
        }
        assert_eq!(out, vec![0, 1]);
        assert_eq!(pusher.join().unwrap(), 0);
    }

    #[test]
    fn disconnected_consumer_fails_pushes() {
        let (mut tx, rx) = ring::<u32>(RingConfig::new(1, Backpressure::Block));
        drop(rx);
        assert_eq!(tx.push(1).unwrap_err(), PushError::Disconnected);
        assert_eq!(tx.try_feed(&[1, 2]).unwrap_err(), PushError::Disconnected);
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = ring::<u32>(RingConfig::new(0, Backpressure::Block));
    }
}
