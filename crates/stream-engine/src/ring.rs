//! Fixed-capacity lock-free ring buffers with explicit backpressure
//! policies.
//!
//! The engine's transport between a stream's producer (the ingest side)
//! and the shard worker that steps its operator. Each ring is SPSC by
//! construction — one [`Producer`] held by the [`crate::StreamHandle`],
//! one [`Consumer`] owned by the stream's shard — and never reallocates
//! after creation, so a full ring exerts *backpressure* instead of
//! growing without bound (Flink's bounded network buffers; FLOSS's
//! bounded online model makes the same constant-memory argument for the
//! operator itself).
//!
//! The slots are lock-free: each carries an atomic sequence number
//! (Vyukov's bounded-queue scheme) so pushes and pops are a couple of
//! atomic operations with no mutex or condvar. Ingest threads — the
//! network tier runs one per producer connection — therefore never
//! contend with shard workers on a lock, and a stats snapshot taken
//! from a third thread only ever reads monotone counters. The pop side
//! claims slots with a CAS rather than a plain store because under
//! [`Backpressure::DropOldest`] the *producer* also pops (evicting the
//! oldest record), racing the consumer for the same slot.
//!
//! What happens when the ring is full is the per-stream
//! [`Backpressure`] policy:
//!
//! * [`Backpressure::Block`] — the producer waits for space; every
//!   record is delivered (lossless, the default).
//! * [`Backpressure::DropOldest`] — the oldest queued record is evicted
//!   and counted; a lagging consumer sees the freshest window of the
//!   feed (live dashboards, lossy sensors).
//! * [`Backpressure::Error`] — the push fails with a typed
//!   [`OverflowError`] and the record is not enqueued; the caller
//!   decides (fail-fast ingestion).
//!
//! Accounting contract (the fault ledger leans on this): `pushed` is
//! incremented *before* a record's slot is published, and `drops` is
//! incremented with Release ordering *after* its eviction, so a
//! lock-free reader that loads `drops`/`popped` with Acquire before
//! `pushed` can never observe a disposal without the push that
//! preceded it — `records_in + drops + quarantined_after <= pushed`
//! holds in every live snapshot and tightens to equality at rest.

// The lock-free slots need `UnsafeCell` + `MaybeUninit`; the workspace
// lints `unsafe_code = "warn"` so the exception is scoped to this module.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a producer blocked on a full ring sleeps between retries
/// once its initial spin/yield burst has not found space.
const BLOCK_PARK: Duration = Duration::from_micros(50);

/// Spin/yield iterations before a blocked producer starts sleeping.
const BLOCK_SPINS: u32 = 32;

/// What a full ring does to an incoming record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Wait for the consumer to free a slot; lossless (default).
    #[default]
    Block,
    /// Evict the oldest queued record and count it as a drop.
    DropOldest,
    /// Reject the push with a typed [`OverflowError`].
    Error,
}

/// Capacity + policy of one ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Maximum queued records (must be >= 1). The ring never holds more.
    pub capacity: usize,
    /// Full-ring behaviour.
    pub policy: Backpressure,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            policy: Backpressure::Block,
        }
    }
}

impl RingConfig {
    /// A config with the given capacity and policy.
    pub fn new(capacity: usize, policy: Backpressure) -> Self {
        Self { capacity, policy }
    }
}

/// Typed overflow under [`Backpressure::Error`]: the ring was full and
/// the record was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowError {
    /// Capacity of the ring that rejected the record.
    pub capacity: usize,
}

impl std::fmt::Display for OverflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ring buffer overflow: all {} slots full under the `error` backpressure policy",
            self.capacity
        )
    }
}

impl std::error::Error for OverflowError {}

/// Why a push did not (fully) succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Full ring under [`Backpressure::Error`]; the record was rejected.
    Overflow(OverflowError),
    /// The consumer (shard worker) is gone; no record can be delivered.
    Disconnected,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Overflow(e) => e.fmt(f),
            PushError::Disconnected => write!(f, "ring buffer consumer disconnected"),
        }
    }
}

impl std::error::Error for PushError {}

/// Monotone counters readable without touching the ring — the engine's
/// stats snapshot polls these from a third thread. Queue depth is not
/// stored (a stored gauge races evictions and drains); it is derived as
/// `pushed - drops - popped`, which is exact once the ring is at rest.
#[derive(Debug, Default)]
pub(crate) struct RingCounters {
    /// Records the consumer has drained out of the ring.
    pub(crate) popped: AtomicU64,
    /// Records evicted under [`Backpressure::DropOldest`].
    pub(crate) drops: AtomicU64,
    /// Records ever accepted into the ring (rejected pushes excluded).
    /// The fault-accounting ledger balances against this:
    /// `processed + dropped + quarantined_after == pushed`.
    pub(crate) pushed: AtomicU64,
    /// Backoff retries the producer performed against this ring.
    pub(crate) retries: AtomicU64,
}

impl RingCounters {
    /// Records currently queued (racy snapshot; exact at rest). Reads
    /// the disposals before the pushes so a concurrent push can only
    /// make the result read *low*, never negative-wrapped.
    pub(crate) fn depth(&self) -> usize {
        let gone = self
            .drops
            .load(Ordering::Acquire)
            .saturating_add(self.popped.load(Ordering::Acquire));
        let pushed = self.pushed.load(Ordering::Acquire);
        pushed.saturating_sub(gone) as usize
    }
}

/// One ring slot: a sequence stamp plus (possibly uninitialised)
/// storage. Stamps advance in strides of two so that occupied slots are
/// odd and free slots even — `seq == pos << 1` means free for the push
/// at position `pos`, `seq == (pos << 1) | 1` occupied by it, and
/// `seq == (pos + capacity) << 1` freed for the next lap. (A stride of
/// one — plain Vyukov — is ambiguous at capacity 1: "occupied by push
/// 0" and "free for push 1" would both stamp `1`, letting the producer
/// overwrite a queued record and wedging the popper forever.)
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Shared<T> {
    slots: Box<[Slot<T>]>,
    /// Next push position. Only the (single) producer advances this.
    enqueue_pos: AtomicUsize,
    /// Next pop position. CAS-claimed: the consumer and a drop-oldest
    /// eviction can race for the same slot.
    dequeue_pos: AtomicUsize,
    tx_closed: AtomicBool,
    rx_closed: AtomicBool,
    counters: Arc<RingCounters>,
    capacity: usize,
    policy: Backpressure,
}

// SAFETY: records only move across threads through the slot protocol
// (a slot's value is written before its seq is published with Release
// and read after an Acquire load observes that publish), so `Shared`
// is as thread-safe as `T: Send` allows.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: see above — all shared mutation goes through atomics plus
// the publish/claim protocol on slot sequence numbers.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    /// Attempts to enqueue without applying any policy; hands the item
    /// back if the ring is full. Single producer: `enqueue_pos` is ours
    /// alone, so a plain store advances it.
    fn try_push(&self, item: T) -> Result<(), T> {
        let pos = self.enqueue_pos.load(Ordering::Relaxed);
        let slot = &self.slots[pos % self.capacity];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == pos.wrapping_shl(1) {
            self.enqueue_pos
                .store(pos.wrapping_add(1), Ordering::Relaxed);
            // SAFETY: an even stamp equal to `pos << 1` marks the slot
            // free and reserved for this position, and only this (sole)
            // producer pushes; no other thread reads the cell until the
            // seq store below publishes it.
            unsafe { (*slot.value.get()).write(item) };
            // `pushed` before the publish: a reader that can see the
            // record (or its later disposal) must also see its push.
            self.counters.pushed.fetch_add(1, Ordering::Relaxed);
            slot.seq.store(pos.wrapping_shl(1) | 1, Ordering::Release);
            Ok(())
        } else {
            // Still stamped occupied from the previous lap — full.
            Err(item)
        }
    }

    /// Attempts to dequeue one record. Used by the consumer's drain and
    /// by drop-oldest eviction, hence the CAS claim.
    fn try_pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos % self.capacity];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = pos.wrapping_shl(1) | 1;
            let diff = seq.wrapping_sub(expected) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed position `pos`
                        // exclusively, and the Acquire seq load above
                        // saw the producer's publish, so the cell holds
                        // an initialised record nobody else will read.
                        let item = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(
                            pos.wrapping_add(self.capacity).wrapping_shl(1),
                            Ordering::Release,
                        );
                        return Some(item);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Not yet published for this lap — the ring is empty at
                // this position (or the producer is mid-push).
                return None;
            } else {
                // Another popper claimed and freed this slot already;
                // reload the position and retry.
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Evicts the oldest queued record (drop-oldest policy), counting
    /// it. Returns `false` if the ring emptied out from under us (the
    /// consumer drained it first), in which case nothing was counted.
    fn evict_oldest(&self) -> bool {
        match self.try_pop() {
            Some(old) => {
                drop(old);
                // Release pairs with the stats snapshot's Acquire load:
                // the evicted record's push is sequenced before this
                // increment (same producer thread), keeping the live
                // ledger inequality (`lhs <= pushed`) observable.
                self.counters.drops.fetch_add(1, Ordering::Release);
                true
            }
            None => false,
        }
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Exclusive access: both ends are gone. Drop every record that
        // was published but never popped.
        let deq = *self.dequeue_pos.get_mut();
        let enq = *self.enqueue_pos.get_mut();
        let mut pos = deq;
        while pos != enq {
            let slot = &self.slots[pos % self.capacity];
            if slot.seq.load(Ordering::Relaxed) == pos.wrapping_shl(1) | 1 {
                // SAFETY: the occupied stamp for `pos` means the
                // producer published a record here and no pop ever
                // claimed it; `&mut self` guarantees nobody else can.
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
            pos = pos.wrapping_add(1);
        }
    }
}

/// Creates a bounded ring, returning its two ends.
pub fn ring<T>(cfg: RingConfig) -> (Producer<T>, Consumer<T>) {
    assert!(cfg.capacity >= 1, "ring capacity must be >= 1");
    let slots = (0..cfg.capacity)
        .map(|i| Slot {
            seq: AtomicUsize::new(i << 1),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        enqueue_pos: AtomicUsize::new(0),
        dequeue_pos: AtomicUsize::new(0),
        tx_closed: AtomicBool::new(false),
        rx_closed: AtomicBool::new(false),
        counters: Arc::new(RingCounters::default()),
        capacity: cfg.capacity,
        policy: cfg.policy,
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

/// The write end of a ring. Dropping it closes the stream: the consumer
/// drains what is queued, then observes end-of-stream.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &self.shared.capacity)
            .field("policy", &self.shared.policy)
            .finish()
    }
}

impl<T> Producer<T> {
    /// Pushes one record, applying the ring's backpressure policy when
    /// full: `Block` waits (spinning briefly, then parking in short
    /// sleeps so a consumer disconnect is still observed promptly),
    /// `DropOldest` evicts and succeeds, `Error` returns
    /// [`PushError::Overflow`] without enqueueing.
    pub fn push(&mut self, item: T) -> Result<(), PushError> {
        let sh = &*self.shared;
        if sh.rx_closed.load(Ordering::Acquire) {
            return Err(PushError::Disconnected);
        }
        let mut item = item;
        let mut spins = 0u32;
        loop {
            match sh.try_push(item) {
                Ok(()) => return Ok(()),
                Err(back) => item = back,
            }
            match sh.policy {
                Backpressure::Block => {
                    if sh.rx_closed.load(Ordering::Acquire) {
                        return Err(PushError::Disconnected);
                    }
                    if spins < BLOCK_SPINS {
                        std::hint::spin_loop();
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(BLOCK_PARK);
                    }
                    spins = spins.saturating_add(1);
                }
                Backpressure::DropOldest => {
                    // If the eviction lost to a concurrent drain the
                    // ring has space anyway; just retry the push.
                    sh.evict_oldest();
                }
                Backpressure::Error => {
                    return Err(PushError::Overflow(OverflowError {
                        capacity: sh.capacity,
                    }));
                }
            }
        }
    }

    /// Non-blocking bulk push: enqueues a prefix of `items` and returns
    /// how many were accepted. `Block` and `Error` accept what fits
    /// without waiting or failing (this is the "try" flavour — the
    /// typed overflow only surfaces through [`Producer::push`]);
    /// `DropOldest` accepts everything, evicting as needed.
    pub fn try_feed(&mut self, items: &[T]) -> Result<usize, PushError>
    where
        T: Copy,
    {
        if items.is_empty() {
            return Ok(0);
        }
        let sh = &*self.shared;
        if sh.rx_closed.load(Ordering::Acquire) {
            return Err(PushError::Disconnected);
        }
        let mut accepted = 0;
        for &it in items {
            match sh.policy {
                Backpressure::Block | Backpressure::Error => {
                    if sh.try_push(it).is_err() {
                        break;
                    }
                }
                Backpressure::DropOldest => {
                    let mut v = it;
                    loop {
                        match sh.try_push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                sh.evict_oldest();
                            }
                        }
                    }
                }
            }
            accepted += 1;
        }
        Ok(accepted)
    }

    /// Records currently queued (racy snapshot, lock-free).
    pub fn depth(&self) -> usize {
        self.shared.counters.depth()
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Records evicted so far under [`Backpressure::DropOldest`].
    pub fn drops(&self) -> u64 {
        self.shared.counters.drops.load(Ordering::Relaxed)
    }

    /// Records ever accepted into the ring (rejected pushes excluded).
    pub fn pushed(&self) -> u64 {
        self.shared.counters.pushed.load(Ordering::Relaxed)
    }

    /// Counts `n` producer backoff retries against this ring.
    pub(crate) fn note_retries(&self, n: u64) {
        self.shared.counters.retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Shared counters handle for external stats snapshots.
    pub(crate) fn counters(&self) -> Arc<RingCounters> {
        Arc::clone(&self.shared.counters)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // Release pairs with the consumer's Acquire in `is_finished`:
        // once the close is observed, every prior push is too.
        self.shared.tx_closed.store(true, Ordering::Release);
    }
}

/// The read end of a ring, owned by the stream's shard worker.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &self.shared.capacity)
            .field("policy", &self.shared.policy)
            .finish()
    }
}

impl<T> Consumer<T> {
    /// Moves up to `max` queued records into `out` and returns the
    /// count. Lock-free: a producer blocked on a full ring notices the
    /// freed slots on its next retry.
    pub fn drain_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let sh = &*self.shared;
        let mut n = 0;
        while n < max {
            match sh.try_pop() {
                Some(item) => {
                    out.push(item);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            sh.counters.popped.fetch_add(n as u64, Ordering::Release);
        }
        n
    }

    /// End-of-stream: the producer is gone and the ring is drained.
    pub fn is_finished(&self) -> bool {
        let sh = &*self.shared;
        // Acquire on the close flag makes every push that preceded the
        // producer's drop visible before the emptiness check.
        if !sh.tx_closed.load(Ordering::Acquire) {
            return false;
        }
        sh.dequeue_pos.load(Ordering::Acquire) == sh.enqueue_pos.load(Ordering::Acquire)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // A producer blocked on a full ring polls this flag.
        self.shared.rx_closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_depth_accounting() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(4, Backpressure::Block));
        for v in 0..4 {
            tx.push(v).unwrap();
        }
        assert_eq!(tx.depth(), 4);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(tx.depth(), 1);
        assert_eq!(rx.drain_into(&mut out, 8), 1);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(!rx.is_finished());
        drop(tx);
        assert!(rx.is_finished());
    }

    #[test]
    fn drop_oldest_evicts_exactly_the_overflow_and_counts_it() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(4, Backpressure::DropOldest));
        for v in 0..10 {
            tx.push(v).unwrap();
        }
        assert_eq!(tx.drops(), 6);
        assert_eq!(tx.depth(), 4);
        let mut out = Vec::new();
        rx.drain_into(&mut out, usize::MAX);
        // The freshest window survives.
        assert_eq!(out, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drop_oldest_bulk_feed_counts_chunk_evictions() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(3, Backpressure::DropOldest));
        let items: Vec<u32> = (0..8).collect();
        assert_eq!(tx.try_feed(&items).unwrap(), 8);
        assert_eq!(tx.drops(), 5);
        let mut out = Vec::new();
        rx.drain_into(&mut out, usize::MAX);
        assert_eq!(out, vec![5, 6, 7]);
    }

    #[test]
    fn error_policy_surfaces_typed_overflow_and_rejects_the_record() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(2, Backpressure::Error));
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        let err = tx.push(3).unwrap_err();
        assert_eq!(err, PushError::Overflow(OverflowError { capacity: 2 }));
        let mut out = Vec::new();
        rx.drain_into(&mut out, usize::MAX);
        // The rejected record never entered the ring.
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn try_feed_accepts_only_what_fits_under_block() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(3, Backpressure::Block));
        assert_eq!(tx.try_feed(&[1, 2, 3, 4, 5]).unwrap(), 3);
        let mut out = Vec::new();
        rx.drain_into(&mut out, 2);
        assert_eq!(tx.try_feed(&[4, 5, 6]).unwrap(), 2);
        rx.drain_into(&mut out, usize::MAX);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn blocked_producer_wakes_when_consumer_drains() {
        let (mut tx, mut rx) = ring::<u32>(RingConfig::new(1, Backpressure::Block));
        tx.push(0).unwrap();
        let pusher = std::thread::spawn(move || {
            tx.push(1).unwrap(); // blocks until the main thread drains
            tx.drops()
        });
        // Give the pusher a chance to park, then free a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut out = Vec::new();
        while out.len() < 2 {
            if rx.drain_into(&mut out, usize::MAX) == 0 {
                std::thread::yield_now();
            }
        }
        assert_eq!(out, vec![0, 1]);
        assert_eq!(pusher.join().unwrap(), 0);
    }

    #[test]
    fn disconnected_consumer_fails_pushes() {
        let (mut tx, rx) = ring::<u32>(RingConfig::new(1, Backpressure::Block));
        drop(rx);
        assert_eq!(tx.push(1).unwrap_err(), PushError::Disconnected);
        assert_eq!(tx.try_feed(&[1, 2]).unwrap_err(), PushError::Disconnected);
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = ring::<u32>(RingConfig::new(0, Backpressure::Block));
    }

    #[test]
    fn undrained_records_are_dropped_with_the_ring() {
        // A type with a destructor proves leaked-slot cleanup.
        let (mut tx, rx) = ring::<Arc<u8>>(RingConfig::new(8, Backpressure::Block));
        let probe = Arc::new(7u8);
        for _ in 0..5 {
            tx.push(Arc::clone(&probe)).unwrap();
        }
        assert_eq!(Arc::strong_count(&probe), 6);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    /// Satellite audit: the ledger `consumed + drops == pushed` must
    /// hold *exactly* when a producer pushes under drop-oldest while
    /// the consumer drains concurrently — an eviction may race a drain
    /// for the same slot, and double- or under-counting either side
    /// breaks the engine's terminal accounting.
    #[test]
    fn concurrent_drop_oldest_ledger_is_exact() {
        const N: u64 = 30_000;
        let (mut tx, mut rx) = ring::<u64>(RingConfig::new(8, Backpressure::DropOldest));
        let counters = tx.counters();
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            while !rx.is_finished() {
                if rx.drain_into(&mut out, 64) == 0 {
                    // Keep single-core runs honest: hand the CPU back
                    // to the producer instead of spinning a timeslice.
                    std::thread::yield_now();
                }
            }
            out
        });
        for v in 0..N {
            tx.push(v).unwrap();
        }
        drop(tx);
        let out = consumer.join().unwrap();
        // Order survives eviction: what the consumer sees is a
        // subsequence of the feed.
        assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "drained records out of order"
        );
        let drops = counters.drops.load(Ordering::Relaxed);
        let popped = counters.popped.load(Ordering::Relaxed);
        let pushed = counters.pushed.load(Ordering::Relaxed);
        assert_eq!(pushed, N);
        assert_eq!(popped, out.len() as u64);
        assert_eq!(popped + drops, pushed, "terminal ledger out of balance");
        assert_eq!(counters.depth(), 0);
    }

    /// Same shape under the blocking policy: lossless delivery, zero
    /// drops, exact depth at rest.
    #[test]
    fn concurrent_block_delivers_everything_in_order() {
        const N: u64 = 20_000;
        let (mut tx, mut rx) = ring::<u64>(RingConfig::new(4, Backpressure::Block));
        let counters = tx.counters();
        let consumer = std::thread::spawn(move || {
            let mut out = Vec::new();
            while !rx.is_finished() {
                if rx.drain_into(&mut out, 32) == 0 {
                    std::thread::yield_now();
                }
            }
            out
        });
        for v in 0..N {
            tx.push(v).unwrap();
        }
        drop(tx);
        let out = consumer.join().unwrap();
        let expected: Vec<u64> = (0..N).collect();
        assert_eq!(out, expected);
        assert_eq!(counters.drops.load(Ordering::Relaxed), 0);
        assert_eq!(counters.pushed.load(Ordering::Relaxed), N);
        assert_eq!(counters.depth(), 0);
    }
}
