//! Single-threaded pipeline composition and execution.

use crate::operator::Operator;
use crate::Record;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

type ProcessFn<I, O> = Box<dyn FnMut(Record<I>, &mut Vec<Record<O>>)>;
type FlushFn<O> = Box<dyn FnMut(&mut Vec<Record<O>>)>;

/// A composed chain of operators from `I` records to `O` records,
/// assembled with [`Pipeline::source_type`] and [`Pipeline::then`].
///
/// ```
/// use stream_engine::{Pipeline, MapOperator, TumblingWindowMean};
///
/// let pipeline = Pipeline::source_type::<f64>()
///     .then(MapOperator::new(|x: f64| x * 2.0))
///     .then(TumblingWindowMean::new(4));
/// let (out, report) = pipeline.run((0..8).map(|i| i as f64));
/// assert_eq!(out.len(), 2);
/// assert_eq!(report.records_in, 8);
/// ```
pub struct Pipeline<I, O> {
    process: ProcessFn<I, O>,
    flush: FlushFn<O>,
    stages: Vec<&'static str>,
}

impl Pipeline<f64, f64> {
    /// Starts a pipeline whose source emits `T` records unchanged.
    pub fn source_type<T: 'static>() -> Pipeline<T, T> {
        Pipeline {
            process: Box::new(|rec, out| out.push(rec)),
            flush: Box::new(|_| {}),
            stages: vec!["source"],
        }
    }
}

impl<I: 'static, O: 'static> Pipeline<I, O> {
    /// Appends an operator to the chain.
    pub fn then<Op>(self, op: Op) -> Pipeline<I, Op::Out>
    where
        Op: Operator<In = O> + 'static,
    {
        let mut stages = self.stages;
        stages.push(op.name());
        let op = Rc::new(RefCell::new(op));
        let op2 = Rc::clone(&op);
        let mut prev_process = self.process;
        let mut prev_flush = self.flush;
        // Reusable intermediate buffer shared by both closures.
        let mid: Rc<RefCell<Vec<Record<O>>>> = Rc::new(RefCell::new(Vec::new()));
        let mid2 = Rc::clone(&mid);
        let process: ProcessFn<I, Op::Out> = Box::new(move |rec, out| {
            let mut mid = mid.borrow_mut();
            mid.clear();
            prev_process(rec, &mut mid);
            let mut op = op.borrow_mut();
            for r in mid.drain(..) {
                op.process(r, out);
            }
        });
        let flush: FlushFn<Op::Out> = Box::new(move |out| {
            let mut mid = mid2.borrow_mut();
            mid.clear();
            prev_flush(&mut mid);
            let mut op = op2.borrow_mut();
            for r in mid.drain(..) {
                op.process(r, out);
            }
            op.flush(out);
        });
        Pipeline {
            process,
            flush,
            stages,
        }
    }

    /// Names of the composed stages.
    pub fn stages(&self) -> &[&'static str] {
        &self.stages
    }

    /// Runs the pipeline over a finite source, returning all output records
    /// and a throughput report.
    pub fn run(
        mut self,
        source: impl IntoIterator<Item = I>,
    ) -> (Vec<Record<O>>, ThroughputReport) {
        let mut out = Vec::new();
        let start = Instant::now();
        let mut n = 0u64;
        for (t, v) in source.into_iter().enumerate() {
            (self.process)(Record::new(t as u64, v), &mut out);
            n += 1;
        }
        (self.flush)(&mut out);
        let elapsed = start.elapsed();
        let report = ThroughputReport {
            records_in: n,
            records_out: out.len() as u64,
            elapsed,
        };
        (out, report)
    }
}

/// Throughput measurement of a pipeline run (the quantity reported in
/// §4.4 and Figure 6).
#[derive(Debug, Clone, Copy)]
pub struct ThroughputReport {
    /// Records ingested from the source.
    pub records_in: u64,
    /// Records emitted by the sink.
    pub records_out: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ThroughputReport {
    /// Ingest throughput in records per second.
    pub fn throughput(&self) -> f64 {
        self.records_in as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{FilterOperator, MapOperator, TumblingWindowMean};

    #[test]
    fn single_stage_pipeline_passes_through() {
        let p = Pipeline::source_type::<f64>();
        let (out, rep) = p.run([1.0, 2.0, 3.0]);
        assert_eq!(out.len(), 3);
        assert_eq!(rep.records_in, 3);
        assert_eq!(rep.records_out, 3);
        assert!(rep.throughput() > 0.0);
    }

    #[test]
    fn chained_map_filter_window() {
        let p = Pipeline::source_type::<f64>()
            .then(MapOperator::new(|x: f64| x + 1.0))
            .then(FilterOperator::new(|x: &f64| *x > 2.0))
            .then(TumblingWindowMean::new(2));
        assert_eq!(
            p.stages(),
            &["source", "map", "filter", "tumbling-window-mean"]
        );
        // Inputs 1..=6 -> +1 -> 2..=7 -> filter(>2) -> 3..=7 -> windows (3,4),(5,6),flush(7)
        let (out, _) = p.run((1..=6).map(|i| i as f64));
        let values: Vec<f64> = out.iter().map(|r| r.value).collect();
        assert_eq!(values, vec![3.5, 5.5, 7.0]);
    }

    #[test]
    fn flush_propagates_through_chain() {
        // A window before a map: the remainder emitted on flush must still
        // pass through the downstream map.
        let p = Pipeline::source_type::<f64>()
            .then(TumblingWindowMean::new(4))
            .then(MapOperator::new(|x: f64| x * 10.0));
        let (out, _) = p.run([1.0, 2.0, 3.0]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 20.0);
    }

    #[test]
    fn timestamps_are_preserved_by_stateless_stages() {
        let p = Pipeline::source_type::<f64>().then(MapOperator::new(|x: f64| x));
        let (out, _) = p.run([5.0, 6.0]);
        assert_eq!(out[0].timestamp, 0);
        assert_eq!(out[1].timestamp, 1);
    }
}
