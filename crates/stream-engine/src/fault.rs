//! Deterministic fault injection for the serving engine (behind the
//! `fault-inject` feature; never compiled into default builds).
//!
//! A fault-tolerance claim is only as good as the faults it was tested
//! against. This module generates **seeded, reproducible** fault plans —
//! operator panics at a chosen record, NaN bursts, flatlined sensors,
//! source stalls, ring-overflow storms — and the adapters to inject them
//! into operators ([`FaultingOperator`]), input data
//! ([`FaultPlan::corrupt`]), and the feeder ([`drive`]). The same seed
//! always produces the same plan, so a CI failure is replayable locally
//! with one number.
//!
//! The core invariant the harness exists to check is **blast-radius
//! containment**: under any injected fault, streams the plan does not
//! touch must produce bit-identical output to a fault-free run, and every
//! stream's ledger must balance exactly
//! (`records_in + drops + quarantined_after == pushed`).

use crate::engine::{IngestError, RetryPolicy, StreamHandle};
use crate::operator::Operator;
use crate::Record;
use std::time::Duration;

/// Marker prefix for panics raised by [`FaultingOperator`] — lets the
/// panic-hook filter installed by [`silence_injected_panics`] tell
/// injected faults from real bugs.
pub const INJECTED_PANIC_PREFIX: &str = "injected-fault:";

/// One fault to inject into one stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The operator panics while processing record number `record`
    /// (0-based count of records it has seen).
    PanicAt {
        /// Record index at which `process` panics.
        record: u64,
    },
    /// The operator panics in `flush` (end-of-stream teardown fault).
    PanicInFlush,
    /// `len` consecutive NaNs replace the data starting at `at`
    /// (a dead sensor; WFDB invalid-sample sentinels decode this way).
    NanBurst {
        /// First corrupted index.
        at: usize,
        /// Burst length.
        len: usize,
    },
    /// `len` consecutive samples stuck at the value at `at` (a flatlined
    /// sensor).
    Flatline {
        /// First corrupted index.
        at: usize,
        /// Run length.
        len: usize,
    },
    /// The source stops feeding for `millis` once its cursor reaches
    /// `at` (an upstream hiccup — no records are lost, only late).
    Stall {
        /// Cursor position that triggers the stall.
        at: usize,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// The feeder bursts records one-at-a-time (no chunk fairness) for
    /// `len` records starting at `at`, with retries disabled — under the
    /// `error` ring policy, overflow rejections are real record loss at
    /// the edge.
    OverflowStorm {
        /// First storm index.
        at: usize,
        /// Storm length.
        len: usize,
    },
}

/// A fault bound to its target stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamFault {
    /// Target stream (handle index).
    pub stream: usize,
    /// What to inject.
    pub kind: FaultKind,
}

/// A deterministic, seed-reproducible set of faults over a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed that generated (and replays) this plan.
    pub seed: u64,
    /// At most one fault per stream.
    pub faults: Vec<StreamFault>,
}

/// SplitMix64 — the same generator the engine uses for shard hashing;
/// one `u64` of state, full-period, and trivially reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan with no faults (the baseline run).
    pub fn none() -> Self {
        Self {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Generates a plan over `n_streams` streams of `points` records
    /// each: every stream is faulted with probability `density` (at
    /// least one stream is faulted when `density > 0` and there are
    /// streams to fault), with the fault kind and position drawn from
    /// the seed. Same arguments, same plan — always.
    pub fn seeded(seed: u64, n_streams: usize, points: usize, density: f64) -> Self {
        let mut rng = seed;
        let mut faults = Vec::new();
        let points = points.max(2);
        for stream in 0..n_streams {
            let roll = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
            if roll >= density {
                continue;
            }
            faults.push(StreamFault {
                stream,
                kind: Self::draw_kind(&mut rng, points),
            });
        }
        if faults.is_empty() && density > 0.0 && n_streams > 0 {
            let stream = (splitmix64(&mut rng) % n_streams as u64) as usize;
            faults.push(StreamFault {
                stream,
                kind: Self::draw_kind(&mut rng, points),
            });
        }
        Self { seed, faults }
    }

    fn draw_kind(rng: &mut u64, points: usize) -> FaultKind {
        let at = (splitmix64(rng) % (points as u64 / 2).max(1)) as usize + points / 4;
        let len = (splitmix64(rng) % 16 + 4) as usize;
        match splitmix64(rng) % 6 {
            0 => FaultKind::PanicAt { record: at as u64 },
            1 => FaultKind::PanicInFlush,
            2 => FaultKind::NanBurst { at, len },
            3 => FaultKind::Flatline { at, len },
            4 => FaultKind::Stall {
                at,
                millis: splitmix64(rng) % 20 + 1,
            },
            _ => FaultKind::OverflowStorm { at, len: len * 8 },
        }
    }

    /// The fault targeting `stream`, if any.
    pub fn fault_for(&self, stream: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.stream == stream)
            .map(|f| f.kind)
    }

    /// Whether `stream` is untouched by this plan (its output must be
    /// bit-identical to a fault-free run).
    pub fn is_clean(&self, stream: usize) -> bool {
        self.fault_for(stream).is_none()
    }

    /// Applies this plan's *data* faults (NaN burst, flatline) to
    /// `stream`'s input in place. Operator and feeder faults are applied
    /// by [`FaultingOperator`] and [`drive`] respectively.
    pub fn corrupt(&self, stream: usize, data: &mut [f64]) {
        match self.fault_for(stream) {
            Some(FaultKind::NanBurst { at, len }) => {
                let end = (at + len).min(data.len());
                for x in data.get_mut(at..end).unwrap_or(&mut []) {
                    *x = f64::NAN;
                }
            }
            Some(FaultKind::Flatline { at, len }) => {
                let end = (at + len).min(data.len());
                if at < data.len() {
                    let stuck = data[at];
                    for x in &mut data[at..end] {
                        *x = stuck;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Wraps an operator with a seeded process/flush panic, per the stream's
/// fault. Streams without an operator fault pass through untouched (the
/// wrapper stays, so every stream has the same operator type).
pub struct FaultingOperator<Op> {
    inner: Op,
    seen: u64,
    panic_at: Option<u64>,
    panic_in_flush: bool,
}

impl<Op> FaultingOperator<Op> {
    /// Wraps `inner`, arming the panic faults present in `kind`.
    pub fn new(inner: Op, kind: Option<FaultKind>) -> Self {
        Self {
            inner,
            seen: 0,
            panic_at: match kind {
                Some(FaultKind::PanicAt { record }) => Some(record),
                _ => None,
            },
            panic_in_flush: matches!(kind, Some(FaultKind::PanicInFlush)),
        }
    }
}

impl<Op> Operator for FaultingOperator<Op>
where
    Op: Operator<In = f64>,
{
    type In = f64;
    type Out = Op::Out;

    fn process(&mut self, rec: Record<f64>, out: &mut Vec<Record<Self::Out>>) {
        if self.panic_at == Some(self.seen) {
            panic!(
                "{INJECTED_PANIC_PREFIX} operator panic at record {}",
                self.seen
            );
        }
        self.seen += 1;
        self.inner.process(rec, out);
    }

    fn flush(&mut self, out: &mut Vec<Record<Self::Out>>) {
        if self.panic_in_flush {
            panic!("{INJECTED_PANIC_PREFIX} operator panic in flush");
        }
        self.inner.flush(out);
    }

    fn name(&self) -> &'static str {
        "faulting"
    }
}

/// Installs a process-wide panic hook that swallows the default "thread
/// panicked" report for [`FaultingOperator`] panics (they are expected by
/// the thousands in a soak run) while forwarding everything else to the
/// previous hook. Idempotent.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Per-stream feeder accounting from one [`drive`] run. For every stream
/// `offered == accepted + rejected`, and `accepted` equals the engine's
/// `pushed` counter.
#[derive(Debug, Clone, Default)]
pub struct DriveOutcome {
    /// Records the feeder attempted per stream.
    pub offered: Vec<u64>,
    /// Records the rings accepted.
    pub accepted: Vec<u64>,
    /// Records rejected at the edge (overflow storms under the `error`
    /// policy with retries exhausted).
    pub rejected: Vec<u64>,
}

/// Chunk size matching the engine's bulk feeder granularity.
const DRIVE_CHUNK: usize = 64;
/// Park between fruitless rounds (all open rings full).
const DRIVE_PARK: Duration = Duration::from_micros(200);

/// Drives the fleet like [`crate::feed_all`], but applies the plan's
/// *feeder* faults: [`FaultKind::Stall`] sleeps the source at its trigger
/// cursor, [`FaultKind::OverflowStorm`] bursts records one-at-a-time with
/// retries disabled (rejections under the `error` policy are counted as
/// `rejected`, not errors). Data and operator faults must already be
/// installed via [`FaultPlan::corrupt`] / [`FaultingOperator`].
pub fn drive(
    handles: Vec<StreamHandle>,
    data: &[Vec<f64>],
    plan: &FaultPlan,
    retry: &RetryPolicy,
) -> Result<DriveOutcome, IngestError> {
    assert_eq!(handles.len(), data.len(), "one data vec per stream handle");
    let n = handles.len();
    let mut slots: Vec<Option<StreamHandle>> = handles.into_iter().map(Some).collect();
    let mut cursors = vec![0usize; n];
    let mut stalled = vec![false; n];
    let mut outcome = DriveOutcome {
        offered: vec![0; n],
        accepted: vec![0; n],
        rejected: vec![0; n],
    };
    let storm_retry = RetryPolicy::none();
    let mut remaining = n;
    while remaining > 0 {
        let mut progressed = false;
        for i in 0..n {
            let Some(handle) = slots[i].as_mut() else {
                continue;
            };
            let xs = &data[i];
            if cursors[i] >= xs.len() {
                slots[i] = None;
                remaining -= 1;
                progressed = true;
                continue;
            }
            if let Some(FaultKind::Stall { at, millis }) = plan.fault_for(i) {
                if !stalled[i] && cursors[i] >= at {
                    stalled[i] = true;
                    std::thread::sleep(Duration::from_millis(millis));
                }
            }
            let in_storm = match plan.fault_for(i) {
                Some(FaultKind::OverflowStorm { at, len }) => {
                    cursors[i] >= at && cursors[i] < at + len
                }
                _ => false,
            };
            if in_storm {
                // One record per push, retries off: a producer that
                // outruns its ring and eats the rejections.
                let x = xs[cursors[i]];
                outcome.offered[i] += 1;
                match handle.push_with_retry(x, &storm_retry) {
                    Ok(()) => outcome.accepted[i] += 1,
                    Err(IngestError::RetriesExhausted { .. }) => outcome.rejected[i] += 1,
                    Err(e) => return Err(e),
                }
                cursors[i] += 1;
                progressed = true;
            } else {
                let end = (cursors[i] + DRIVE_CHUNK).min(xs.len());
                let accepted = match handle.try_feed(&xs[cursors[i]..end]) {
                    Ok(m) => m,
                    Err(crate::ring::PushError::Disconnected) => {
                        return Err(IngestError::Disconnected {
                            stream: handle.id(),
                        })
                    }
                    Err(crate::ring::PushError::Overflow(_)) => 0,
                };
                if accepted > 0 {
                    cursors[i] += accepted;
                    outcome.offered[i] += accepted as u64;
                    outcome.accepted[i] += accepted as u64;
                    progressed = true;
                } else {
                    // Ring full: force one record through the caller's
                    // retry policy so the backoff path runs under real
                    // contention. Exhaustion is transient here (the
                    // consumer always drains) — come back next round.
                    match handle.push_with_retry(xs[cursors[i]], retry) {
                        Ok(()) => {
                            cursors[i] += 1;
                            outcome.offered[i] += 1;
                            outcome.accepted[i] += 1;
                            progressed = true;
                        }
                        Err(IngestError::RetriesExhausted { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        if !progressed {
            std::thread::sleep(DRIVE_PARK);
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(42, 16, 1000, 0.3);
        let b = FaultPlan::seeded(42, 16, 1000, 0.3);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 16, 1000, 0.3);
        assert_ne!(a, c, "different seed, different plan (overwhelmingly)");
        assert!(!a.faults.is_empty());
        // At most one fault per stream.
        for f in &a.faults {
            assert_eq!(a.faults.iter().filter(|g| g.stream == f.stream).count(), 1);
        }
    }

    #[test]
    fn zero_density_means_no_faults_and_nonzero_guarantees_one() {
        assert!(FaultPlan::seeded(7, 8, 500, 0.0).faults.is_empty());
        for seed in 0..20 {
            assert!(
                !FaultPlan::seeded(seed, 8, 500, 0.01).faults.is_empty(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn corrupt_applies_only_data_faults() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                StreamFault {
                    stream: 0,
                    kind: FaultKind::NanBurst { at: 2, len: 3 },
                },
                StreamFault {
                    stream: 1,
                    kind: FaultKind::Flatline { at: 1, len: 4 },
                },
                StreamFault {
                    stream: 2,
                    kind: FaultKind::PanicAt { record: 5 },
                },
            ],
        };
        let mut a = vec![1.0; 6];
        plan.corrupt(0, &mut a);
        assert!(a[2].is_nan() && a[3].is_nan() && a[4].is_nan());
        assert_eq!((a[0], a[1], a[5]), (1.0, 1.0, 1.0));
        let mut b: Vec<f64> = (0..6).map(|i| i as f64).collect();
        plan.corrupt(1, &mut b);
        assert_eq!(b, vec![0.0, 1.0, 1.0, 1.0, 1.0, 5.0]);
        let mut c = vec![1.0; 6];
        plan.corrupt(2, &mut c);
        assert_eq!(c, vec![1.0; 6], "panic faults do not touch data");
    }

    #[test]
    fn faulting_operator_panics_exactly_at_its_record() {
        use crate::operator::TumblingWindowMean;
        silence_injected_panics();
        let mut op = FaultingOperator::new(
            TumblingWindowMean::new(1),
            Some(FaultKind::PanicAt { record: 3 }),
        );
        let mut out = Vec::new();
        for t in 0..3u64 {
            op.process(Record::new(t, t as f64), &mut out);
        }
        assert_eq!(out.len(), 3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            op.process(Record::new(3, 3.0), &mut out);
        }));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "{msg}");
    }
}
