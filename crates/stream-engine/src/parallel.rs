//! Multi-stream execution on a bounded worker pool.
//!
//! Models Flink's deployment in the paper's §4.4 experiment: every time
//! series is an independent data stream with its own operator instance
//! ("a single instance of a STSS operator can only segment one stream at a
//! time"); streams are scheduled onto a fixed number of task slots, and
//! records flow through bounded (backpressured) channels like Flink network
//! buffers.

use crate::latency::LatencyHistogram;
use crate::operator::Operator;
use crate::Record;
use std::time::{Duration, Instant};

/// Result of one stream job.
#[derive(Debug, Clone)]
pub struct StreamJobResult<O> {
    /// Index of the stream in the input order.
    pub stream_index: usize,
    /// Output records of the job.
    pub output: Vec<Record<O>>,
    /// Records processed.
    pub records_in: u64,
    /// Wall-clock time spent inside the operator path (excluding queueing
    /// of the job itself).
    pub elapsed: Duration,
    /// Per-record operator latency distribution.
    pub latency: LatencyHistogram,
}

impl<O> StreamJobResult<O> {
    /// Operator throughput in records per second.
    pub fn throughput(&self) -> f64 {
        self.records_in as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs one operator instance per stream over a pool of `slots` worker
/// threads. `make_op` builds a fresh operator for each stream (Flink
/// operator instantiation per task). Records are pushed through a bounded
/// channel of `buffer` records to model backpressure.
///
/// Results are returned ordered by stream index.
pub fn run_streams<Op, F>(
    streams: &[Vec<f64>],
    make_op: F,
    slots: usize,
    buffer: usize,
) -> Vec<StreamJobResult<Op::Out>>
where
    Op: Operator<In = f64>,
    Op::Out: Send,
    F: Fn(usize) -> Op + Sync,
{
    let slots = slots.max(1);
    let buffer = buffer.max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<StreamJobResult<Op::Out>>> =
        (0..streams.len()).map(|_| None).collect();
    let results_mutex = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..slots {
            scope.spawn(|| loop {
                let s = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if s >= streams.len() {
                    break;
                }
                let mut op = make_op(s);
                // Source thread feeds a bounded channel (backpressure).
                let (tx, rx) = std::sync::mpsc::sync_channel::<Record<f64>>(buffer);
                let stream = &streams[s];
                let result = std::thread::scope(|inner| {
                    inner.spawn(move || {
                        for (t, &v) in stream.iter().enumerate() {
                            if tx.send(Record::new(t as u64, v)).is_err() {
                                break;
                            }
                        }
                    });
                    let mut output = Vec::new();
                    let mut n = 0u64;
                    let mut latency = LatencyHistogram::new();
                    let start = Instant::now();
                    for rec in rx.iter() {
                        let t0 = Instant::now();
                        op.process(rec, &mut output);
                        latency.record(t0.elapsed());
                        n += 1;
                    }
                    op.flush(&mut output);
                    StreamJobResult {
                        stream_index: s,
                        output,
                        records_in: n,
                        elapsed: start.elapsed(),
                        latency,
                    }
                });
                let mut guard = results_mutex.lock().unwrap();
                guard[s] = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("job finished"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{MapOperator, SegmenterOperator, TumblingWindowMean};
    use class_core::StreamingSegmenter;

    #[test]
    fn parallel_results_match_sequential_order() {
        let streams: Vec<Vec<f64>> = (0..6)
            .map(|k| (0..500).map(|i| (i + k * 1000) as f64).collect())
            .collect();
        let results = run_streams::<_, _>(&streams, |_| MapOperator::new(|x: f64| x * 2.0), 3, 64);
        assert_eq!(results.len(), 6);
        for (s, r) in results.iter().enumerate() {
            assert_eq!(r.stream_index, s);
            assert_eq!(r.records_in, 500);
            assert_eq!(r.output[0].value, (s * 1000) as f64 * 2.0);
            assert!(r.throughput() > 0.0);
            assert_eq!(r.latency.count(), 500);
            assert!(r.latency.quantile(0.99) >= r.latency.quantile(0.5));
        }
    }

    #[test]
    fn single_slot_equals_many_slots() {
        let streams: Vec<Vec<f64>> = (0..4)
            .map(|k| (0..300).map(|i| ((i * (k + 1)) % 17) as f64).collect())
            .collect();
        let a = run_streams::<_, _>(&streams, |_| TumblingWindowMean::new(10), 1, 8);
        let b = run_streams::<_, _>(&streams, |_| TumblingWindowMean::new(10), 4, 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.output, y.output);
        }
    }

    #[test]
    fn segmenter_jobs_detect_changes_in_parallel() {
        struct Thresh(f64, u64);
        impl StreamingSegmenter for Thresh {
            fn step(&mut self, x: f64, cps: &mut Vec<u64>) {
                if x > self.0 {
                    cps.push(self.1);
                    self.0 = f64::MAX; // fire once
                }
                self.1 += 1;
            }
            fn name(&self) -> &'static str {
                "thresh"
            }
        }
        let streams: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                let cp = 100 + k * 50;
                (0..400).map(|i| if i < cp { 0.0 } else { 1.0 }).collect()
            })
            .collect();
        let results =
            run_streams::<_, _>(&streams, |_| SegmenterOperator::new(Thresh(0.5, 0)), 2, 32);
        for (k, r) in results.iter().enumerate() {
            assert_eq!(r.output.len(), 1);
            assert_eq!(r.output[0].value, (100 + k * 50) as u64);
        }
    }

    #[test]
    fn tiny_buffer_still_completes() {
        let streams = vec![(0..1000).map(|i| i as f64).collect::<Vec<_>>()];
        let results = run_streams::<_, _>(&streams, |_| MapOperator::new(|x: f64| x), 1, 1);
        assert_eq!(results[0].records_in, 1000);
    }
}
