//! Batch execution of many in-memory streams on the serving engine.
//!
//! Models Flink's deployment in the paper's §4.4 experiment: every time
//! series is an independent data stream with its own operator instance
//! ("a single instance of a STSS operator can only segment one stream at a
//! time"); streams are sharded onto a fixed number of task slots, and
//! records flow through bounded (backpressured) ring buffers like Flink
//! network buffers. Unlike the crate's first iteration, no stream owns a
//! thread: `slots` shard workers serve all streams, and the caller's
//! thread feeds every ring ([`crate::feed_all`]) — `slots + 1` threads in
//! total regardless of the stream count.

use crate::engine::{feed_all, serve, EngineConfig, StreamOptions};
use crate::latency::LatencyHistogram;
use crate::operator::Operator;
use crate::ring::{Backpressure, RingConfig};
use crate::Record;
use std::time::Duration;

/// Result of one stream job.
#[derive(Debug, Clone)]
pub struct StreamJobResult<O> {
    /// Index of the stream in the input order.
    pub stream_index: usize,
    /// Output records of the job.
    pub output: Vec<Record<O>>,
    /// Records processed.
    pub records_in: u64,
    /// Operator-busy wall time (processing + flush, excluding queueing).
    pub elapsed: Duration,
    /// Per-record operator latency distribution.
    pub latency: LatencyHistogram,
}

impl<O> StreamJobResult<O> {
    /// Operator throughput in records per second.
    pub fn throughput(&self) -> f64 {
        self.records_in as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs one operator instance per stream over an engine of `slots` shard
/// workers. `make_op` builds a fresh operator for each stream (Flink
/// operator instantiation per task) on the stream's shard. Records flow
/// through bounded rings of `buffer` records with the lossless `Block`
/// backpressure policy, so every record is processed in order.
///
/// Results are returned ordered by stream index.
pub fn run_streams<Op, F>(
    streams: &[Vec<f64>],
    make_op: F,
    slots: usize,
    buffer: usize,
) -> Vec<StreamJobResult<Op::Out>>
where
    Op: Operator<In = f64>,
    Op::Out: Send,
    F: Fn(usize) -> Op + Sync,
{
    let shards = slots.max(1).min(streams.len().max(1));
    let config = EngineConfig {
        shards,
        ring: RingConfig::new(buffer.max(1), Backpressure::Block),
    };
    let make_op = &make_op;
    let (results, ()) = serve(config, move |engine| {
        let handles: Vec<_> = (0..streams.len())
            .map(|i| {
                // Round-robin pinning instead of the engine's default
                // hash assignment: a batch run knows all its streams up
                // front, and i % shards is balanced by construction
                // (hashing a handful of ids can leave a slot idle).
                engine.register_with(
                    StreamOptions {
                        ring: config.ring,
                        shard: Some(i % shards),
                        ..StreamOptions::default()
                    },
                    move || make_op(i),
                )
            })
            .collect();
        let slices: Vec<&[f64]> = streams.iter().map(|s| s.as_slice()).collect();
        feed_all(handles, &slices)
            .expect("block-policy rings with live shards accept every record");
    });
    results
        .into_iter()
        .map(|r| StreamJobResult {
            stream_index: r.stream,
            output: r.output,
            records_in: r.records_in,
            elapsed: r.busy,
            latency: r.latency,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{MapOperator, SegmenterOperator, TumblingWindowMean};
    use class_core::StreamingSegmenter;

    #[test]
    fn parallel_results_match_sequential_order() {
        let streams: Vec<Vec<f64>> = (0..6)
            .map(|k| (0..500).map(|i| (i + k * 1000) as f64).collect())
            .collect();
        let results = run_streams::<_, _>(&streams, |_| MapOperator::new(|x: f64| x * 2.0), 3, 64);
        assert_eq!(results.len(), 6);
        for (s, r) in results.iter().enumerate() {
            assert_eq!(r.stream_index, s);
            assert_eq!(r.records_in, 500);
            assert_eq!(r.output[0].value, (s * 1000) as f64 * 2.0);
            assert!(r.throughput() > 0.0);
            assert_eq!(r.latency.count(), 500);
            assert!(r.latency.quantile(0.99) >= r.latency.quantile(0.5));
        }
    }

    #[test]
    fn single_slot_equals_many_slots() {
        let streams: Vec<Vec<f64>> = (0..4)
            .map(|k| (0..300).map(|i| ((i * (k + 1)) % 17) as f64).collect())
            .collect();
        let a = run_streams::<_, _>(&streams, |_| TumblingWindowMean::new(10), 1, 8);
        let b = run_streams::<_, _>(&streams, |_| TumblingWindowMean::new(10), 4, 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.output, y.output);
        }
    }

    #[test]
    fn segmenter_jobs_detect_changes_in_parallel() {
        struct Thresh(f64, u64);
        impl StreamingSegmenter for Thresh {
            fn step(&mut self, x: f64, cps: &mut Vec<u64>) {
                if x > self.0 {
                    cps.push(self.1);
                    self.0 = f64::MAX; // fire once
                }
                self.1 += 1;
            }
            fn name(&self) -> &'static str {
                "thresh"
            }
        }
        let streams: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                let cp = 100 + k * 50;
                (0..400).map(|i| if i < cp { 0.0 } else { 1.0 }).collect()
            })
            .collect();
        let results =
            run_streams::<_, _>(&streams, |_| SegmenterOperator::new(Thresh(0.5, 0)), 2, 32);
        for (k, r) in results.iter().enumerate() {
            assert_eq!(r.output.len(), 1);
            assert_eq!(r.output[0].value, (100 + k * 50) as u64);
        }
    }

    #[test]
    fn tiny_buffer_still_completes() {
        let streams = vec![(0..1000).map(|i| i as f64).collect::<Vec<_>>()];
        let results = run_streams::<_, _>(&streams, |_| MapOperator::new(|x: f64| x), 1, 1);
        assert_eq!(results[0].records_in, 1000);
    }

    #[test]
    fn more_streams_than_slots_all_complete() {
        // 64 streams on 2 shards: far more streams than threads — the
        // exact shape the old thread-per-stream design could not scale.
        let streams: Vec<Vec<f64>> = (0..64)
            .map(|k| (0..200).map(|i| ((i + k) % 23) as f64).collect())
            .collect();
        let results = run_streams::<_, _>(&streams, |_| TumblingWindowMean::new(7), 2, 16);
        assert_eq!(results.len(), 64);
        let serial = run_streams::<_, _>(&streams, |_| TumblingWindowMean::new(7), 1, 16);
        for (a, b) in results.iter().zip(&serial) {
            assert_eq!(a.records_in, 200);
            assert_eq!(a.output, b.output);
        }
    }
}
