//! # stream-engine — a multi-stream serving runtime for streaming
//! # segmentation operators
//!
//! Stands in for Apache Flink in the paper's throughput experiment (§4.4):
//! the paper wraps ClaSS as a Flink *window operator*, runs each of the 592
//! series as an independent data stream loaded from RAM, and measures data
//! points per second through the operator. This crate reproduces that
//! execution model at serving scale:
//!
//! * [`Record`]s flow one at a time through [`Operator`]s
//!   (event-at-a-time processing, Flink's model, as opposed to
//!   micro-batching — see the Karimov et al. comparison cited in §5),
//! * [`serve`] opens a **sharded serving engine**: `shards` worker
//!   threads step any number of registered streams as state machines fed
//!   through fixed-capacity SPSC [`ring`] buffers with per-stream
//!   [`Backpressure`] policies (block / drop-oldest / error) — Flink
//!   task slots and bounded network buffers, with no thread per stream,
//! * [`ServingStats`] snapshots per-stream and per-shard accounting
//!   (p50/p99 operator latency, queue depth, backpressure drops) live,
//!   and [`metrics`] exports those snapshots as Prometheus text
//!   exposition / JSON over a std-only HTTP listener
//!   ([`ServingEngine::serve_metrics`]) or periodic file snapshots,
//! * [`net`] is the network ingestion tier: an [`IngestServer`] accepts
//!   many TCP producers speaking a small length-prefixed binary protocol
//!   ([`Frame`]), registering/detaching streams on the *live* engine at
//!   runtime ([`ServingEngine::registrar`]) and surfacing each ring's
//!   backpressure policy as protocol responses (THROTTLE / ACK drop
//!   counts / typed ERROR),
//! * [`parallel::run_streams`] runs a batch of in-memory streams to
//!   completion on the engine (the §4.4 experiment shape),
//! * a single-threaded [`Pipeline`] composes operator chains for
//!   in-process use and differential testing against the engine,
//! * [`SegmenterOperator`] adapts any [`class_core::StreamingSegmenter`]
//!   into a window operator emitting change point records,
//! * [`MultivariateSegmenterOperator`] registers a fused multi-channel
//!   [`class_core::MultivariateClass`] (paper §6 sensor fusion) as **one**
//!   stream, its channels travelling interleaved through one ring, and
//! * [`ReplaySource`] / [`MultiChannelReplaySource`] replay a loaded
//!   (file-backed) series, unpaced like the paper's RAM-resident streams
//!   or throttled to a configurable record rate like a live sensor feed.

#![warn(missing_docs)]

pub mod engine;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod guard;
pub mod latency;
pub mod metrics;
pub mod net;
pub mod operator;
pub mod parallel;
pub mod pipeline;
pub mod ring;
pub mod source;

pub use engine::{
    feed_all, serve, DetachReport, EngineConfig, FeedReport, IngestError, QuarantineCause,
    RegisterError, Registrar, RetryPolicy, ServingEngine, StatsHandle, StreamHandle, StreamOptions,
    StreamResult, StreamState, Timing,
};
#[cfg(feature = "fault-inject")]
pub use fault::{
    drive, silence_injected_panics, DriveOutcome, FaultKind, FaultPlan, FaultingOperator,
    StreamFault, INJECTED_PANIC_PREFIX,
};
pub use guard::{GuardAction, GuardConfig, GuardTrip, GuardVerdict, InputGuard};
pub use latency::{LatencyHistogram, ServingStats, ShardStats, StreamStats};
pub use metrics::{
    render_prometheus, render_prometheus_with_net, render_stats_json, render_stats_json_with_net,
    vm_hwm_kb, MetricsServer, SnapshotWriter,
};
pub use net::{
    AckInfo, ConnStats, ErrorCode, Frame, FrameError, IngestServer, NetClient, NetError, NetStats,
    NetStatsHandle, RegisterRequest,
};
pub use operator::{
    FilterOperator, MapOperator, MultivariateSegmenterOperator, Operator, SegmenterOperator,
    TumblingWindowMean,
};
pub use parallel::{run_streams, StreamJobResult};
pub use pipeline::{Pipeline, ThroughputReport};
pub use ring::{Backpressure, OverflowError, PushError, RingConfig};
pub use source::{
    interleave_channels, MultiChannelReplayIter, MultiChannelReplaySource, ReplayIter, ReplaySource,
};

/// A timestamped stream record. `timestamp` is the position in the source
/// stream (processing time in the paper's setup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record<T> {
    /// Source position / processing timestamp.
    pub timestamp: u64,
    /// Payload.
    pub value: T,
}

impl<T> Record<T> {
    /// Creates a record.
    pub fn new(timestamp: u64, value: T) -> Self {
        Self { timestamp, value }
    }
}
