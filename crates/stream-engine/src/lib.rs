//! # stream-engine — a miniature one-at-a-time stream processing runtime
//!
//! Stands in for Apache Flink in the paper's throughput experiment (§4.4):
//! the paper wraps ClaSS as a Flink *window operator*, runs each of the 592
//! series as an independent data stream loaded from RAM, and measures data
//! points per second through the operator. This crate reproduces exactly
//! that execution model:
//!
//! * [`Record`]s flow one at a time through a chain of [`Operator`]s
//!   (event-at-a-time processing, Flink's model, as opposed to
//!   micro-batching — see the Karimov et al. comparison cited in §5),
//! * a [`Pipeline`] composes operators and drives a full stream to a sink,
//! * [`parallel::run_streams`] executes many independent stream jobs on a
//!   bounded worker pool with backpressured channels (Flink task slots and
//!   network buffers), and
//! * [`SegmenterOperator`] adapts any [`class_core::StreamingSegmenter`]
//!   into a window operator emitting change point records, and
//! * [`ReplaySource`] replays a loaded (file-backed) series through a
//!   pipeline, unpaced like the paper's RAM-resident streams or throttled
//!   to a configurable record rate like a live sensor feed.

#![warn(missing_docs)]

pub mod latency;
pub mod operator;
pub mod parallel;
pub mod pipeline;
pub mod source;

pub use latency::LatencyHistogram;
pub use operator::{FilterOperator, MapOperator, Operator, SegmenterOperator, TumblingWindowMean};
pub use parallel::{run_streams, StreamJobResult};
pub use pipeline::{Pipeline, ThroughputReport};
pub use source::{ReplayIter, ReplaySource};

/// A timestamped stream record. `timestamp` is the position in the source
/// stream (processing time in the paper's setup).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record<T> {
    /// Source position / processing timestamp.
    pub timestamp: u64,
    /// Payload.
    pub value: T,
}

impl<T> Record<T> {
    /// Creates a record.
    pub fn new(timestamp: u64, value: T) -> Self {
        Self { timestamp, value }
    }
}
