//! Per-record processing latency measurement.
//!
//! The stream-processing comparison the paper cites (Karimov et al., ICDE
//! 2018) evaluates engines on *latency* as well as throughput; this module
//! adds a log-bucketed latency histogram so the ClaSS window operator can
//! be characterised the same way.

use std::time::Duration;

/// A histogram of durations with power-of-two nanosecond buckets
/// (1 ns .. ~4.3 s), constant memory, O(1) insert.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 33],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 33],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(32);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Upper bound of the bucket containing the q-quantile (0 <= q <= 1).
    /// Bucket resolution is a factor of two, which is ample for tail
    /// characterisation.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            acc += n;
            if acc >= target {
                return Duration::from_nanos(1u64 << (b + 1).min(63));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 4, 8, 100] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert!(h.mean() >= Duration::from_micros(20));
        assert!(h.max() >= Duration::from_micros(100));
        // p50 within a factor-2 bucket of the true median (4 us).
        let p50 = h.quantile(0.5);
        assert!(
            p50 >= Duration::from_micros(4) && p50 <= Duration::from_micros(16),
            "{p50:?}"
        );
        // The tail quantile reflects the slow record.
        assert!(h.quantile(0.99) >= Duration::from_micros(64));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_micros(10));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max() >= Duration::from_micros(10));
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..1000u64 {
            h.record(Duration::from_nanos(i * 37 % 100_000));
        }
        let mut prev = Duration::ZERO;
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "q={q}");
            prev = v;
        }
    }
}
