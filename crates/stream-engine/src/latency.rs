//! Per-record processing latency measurement and serving-time accounting.
//!
//! The stream-processing comparison the paper cites (Karimov et al., ICDE
//! 2018) evaluates engines on *latency* as well as throughput; this module
//! adds a log-bucketed latency histogram so the ClaSS window operator can
//! be characterised the same way, plus the per-stream / per-shard
//! accounting types ([`StreamStats`], [`ShardStats`], [`ServingStats`])
//! the multi-stream engine exposes as a live snapshot: tail latency
//! (p50/p99), queue depth, and backpressure drops per stream and
//! aggregated per shard.

use crate::engine::StreamState;
use std::time::Duration;

/// A histogram of durations with power-of-two nanosecond buckets
/// (1 ns .. ~4.3 s), constant memory, O(1) insert.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 33],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; 33],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    #[inline]
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(32);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records `n` operations measured together in `total` wall time,
    /// attributing the batch-average duration to each. Coarser than
    /// per-record [`LatencyHistogram::record`] (the histogram's factor-2
    /// buckets absorb the averaging), but the measurement itself costs
    /// two clock reads per *batch* instead of per record — the engine
    /// uses it for operators whose step is cheaper than a clock read.
    #[inline]
    pub fn record_n(&mut self, total: Duration, n: u64) {
        if n == 0 {
            return;
        }
        let total_ns = total.as_nanos().min(u128::from(u64::MAX)) as u64;
        let avg_ns = total_ns / n;
        let bucket = (64 - avg_ns.max(1).leading_zeros() as usize - 1).min(32);
        self.buckets[bucket] += n;
        self.count += n;
        self.sum_ns += u128::from(total_ns);
        self.max_ns = self.max_ns.max(avg_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Maximum recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Upper bound of the bucket containing the q-quantile (0 <= q <= 1).
    /// Bucket resolution is a factor of two, which is ample for tail
    /// characterisation.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            acc += n;
            if acc >= target {
                return Duration::from_nanos(1u64 << (b + 1).min(63));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Live accounting for one stream served by the engine.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// Stream id (registration order).
    pub stream: usize,
    /// Human-readable stream name ([`crate::StreamOptions::name`], or
    /// `stream-<id>` when none was given). Exported as the `name` label
    /// on every Prometheus series for this stream.
    pub name: String,
    /// Shard the stream is pinned to.
    pub shard: usize,
    /// Records consumed while healthy (operator-processed plus
    /// guard-healed/skipped) so far.
    pub records_in: u64,
    /// Records evicted by the `drop-oldest` backpressure policy.
    pub drops: u64,
    /// Records drained and discarded after the stream was quarantined.
    pub quarantined_after: u64,
    /// Records accepted into the ring so far.
    pub pushed: u64,
    /// Non-finite values the input guard replaced so far.
    pub healed: u64,
    /// Records the input guard dropped before the operator so far.
    pub skipped: u64,
    /// Ingest backoff retries performed against the stream's ring.
    pub retries: u64,
    /// Records currently queued in the stream's ring buffer.
    pub queue_depth: usize,
    /// Whether the stream has been closed, drained, and flushed.
    pub done: bool,
    /// Lifecycle state; quarantine survives completion (a retired
    /// faulted stream reports `Quarantined`, not `Done`).
    pub state: StreamState,
    /// Median per-record operator latency.
    pub p50: Duration,
    /// Tail (99th percentile) per-record operator latency.
    pub p99: Duration,
    /// Mean per-record operator latency.
    pub mean: Duration,
}

/// Aggregated accounting for one shard (its streams merged).
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Streams assigned to this shard (finished ones included).
    pub streams: usize,
    /// Streams still being served.
    pub active: usize,
    /// Streams quarantined on this shard.
    pub quarantined: usize,
    /// Records processed across the shard's streams.
    pub records_in: u64,
    /// Drops across the shard's streams.
    pub drops: u64,
    /// Sum of the shard's ring-buffer depths.
    pub queue_depth: usize,
    /// Median per-record latency over the merged histogram.
    pub p50: Duration,
    /// Tail (p99) per-record latency over the merged histogram.
    pub p99: Duration,
}

/// A point-in-time snapshot of the whole engine: one entry per stream
/// and one aggregate per shard.
#[derive(Debug, Clone)]
pub struct ServingStats {
    /// Per-stream accounting, indexed by stream id.
    pub streams: Vec<StreamStats>,
    /// Per-shard aggregates, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Time since the engine started serving, as of this snapshot.
    pub uptime: Duration,
}

impl ServingStats {
    /// Total records processed across all streams.
    pub fn records_in(&self) -> u64 {
        self.streams.iter().map(|s| s.records_in).sum()
    }

    /// Lifetime average processing rate: total records over uptime.
    pub fn records_per_sec(&self) -> f64 {
        self.records_in() as f64 / self.uptime.as_secs_f64().max(1e-9)
    }

    /// Total backpressure drops across all streams.
    pub fn drops(&self) -> u64 {
        self.streams.iter().map(|s| s.drops).sum()
    }

    /// Total queued records across all ring buffers.
    pub fn queue_depth(&self) -> usize {
        self.streams.iter().map(|s| s.queue_depth).sum()
    }

    /// Streams not yet finished.
    pub fn active_streams(&self) -> usize {
        self.streams.iter().filter(|s| !s.done).count()
    }

    /// Number of quarantined streams.
    pub fn quarantined(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| s.state.is_quarantined())
            .count()
    }

    /// The quarantined streams' stats (cause and fault position live in
    /// each entry's [`StreamStats::state`]).
    pub fn quarantined_streams(&self) -> impl Iterator<Item = &StreamStats> {
        self.streams.iter().filter(|s| s.state.is_quarantined())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarises() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 4, 8, 100] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert!(h.mean() >= Duration::from_micros(20));
        assert!(h.max() >= Duration::from_micros(100));
        // p50 within a factor-2 bucket of the true median (4 us).
        let p50 = h.quantile(0.5);
        assert!(
            p50 >= Duration::from_micros(4) && p50 <= Duration::from_micros(16),
            "{p50:?}"
        );
        // The tail quantile reflects the slow record.
        assert!(h.quantile(0.99) >= Duration::from_micros(64));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_micros(10));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max() >= Duration::from_micros(10));
    }

    #[test]
    fn record_n_attributes_batch_average_to_each_record() {
        let mut batched = LatencyHistogram::new();
        batched.record_n(Duration::from_micros(800), 100); // 8 us average
        assert_eq!(batched.count(), 100);
        assert_eq!(batched.mean(), Duration::from_nanos(8000));
        let p50 = batched.quantile(0.5);
        assert!(
            p50 >= Duration::from_micros(8) && p50 <= Duration::from_micros(16),
            "{p50:?}"
        );
        // Zero-count batches are ignored.
        batched.record_n(Duration::from_secs(1), 0);
        assert_eq!(batched.count(), 100);
    }

    #[test]
    fn serving_stats_totals_aggregate_streams() {
        let mk = |stream: usize, records_in, drops, depth, done| StreamStats {
            stream,
            name: format!("stream-{stream}"),
            shard: stream % 2,
            records_in,
            drops,
            quarantined_after: 0,
            pushed: records_in + drops,
            healed: 0,
            skipped: 0,
            retries: 0,
            queue_depth: depth,
            done,
            state: if done {
                StreamState::Done
            } else {
                StreamState::Active
            },
            p50: Duration::ZERO,
            p99: Duration::ZERO,
            mean: Duration::ZERO,
        };
        let stats = ServingStats {
            streams: vec![mk(0, 100, 3, 7, false), mk(1, 50, 0, 0, true)],
            shards: Vec::new(),
            uptime: Duration::from_secs(10),
        };
        assert_eq!(stats.records_in(), 150);
        assert_eq!(stats.drops(), 3);
        assert_eq!(stats.queue_depth(), 7);
        assert_eq!(stats.active_streams(), 1);
        assert!((stats.records_per_sec() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..1000u64 {
            h.record(Duration::from_nanos(i * 37 % 100_000));
        }
        let mut prev = Duration::ZERO;
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev, "q={q}");
            prev = v;
        }
    }
}
