//! Network ingestion tier: a std-only TCP listener that feeds remote
//! producers into a live serving engine.
//!
//! The paper's throughput experiment assumes records *arrive over a
//! network* (Flink sources); this module closes that gap. Many producer
//! connections speak a small length-prefixed binary protocol
//! ([`Frame`]) against one [`IngestServer`], registering streams on a
//! running engine at runtime (via [`crate::Registrar`]), feeding them,
//! and detaching them — while the engine keeps serving everything else.
//!
//! ## Wire protocol
//!
//! Every frame is `[type: u8][len: u32 LE][payload]`, `len` capped at
//! [`MAX_FRAME_LEN`]. Strings are `u16 LE` length + UTF-8 bytes;
//! values travel as `f64` bit patterns (`u64 LE`), so a feed
//! round-trips bit-identically — NaNs included.
//!
//! | frame | payload | direction |
//! |---|---|---|
//! | `HELLO` | version `u16`, peer name | both, first frame each way |
//! | `REGISTER` | policy `u8`, capacity `u32` (0 = engine default), name | producer → |
//! | `RECORDS` | stream `u32`, count `u32`, count × `f64` | producer → |
//! | `DETACH` | stream `u32` | producer → |
//! | `ACK` | stream `u32`, received `u64`, drops `u64` | → producer |
//! | `THROTTLE` | stream `u32`, queued `u32` | → producer |
//! | `ERROR` | code `u8`, stream `u32` (`u32::MAX` = none), message | → producer |
//!
//! ## Backpressure over the wire
//!
//! The per-stream ring policy surfaces as protocol behaviour:
//!
//! * **block** — a `RECORDS` frame that does not fit is held; the
//!   server sends one `THROTTLE` (current queue depth) per stalled
//!   frame and keeps retrying until everything is accepted, then acks.
//!   Lossless: the ack's `received` always equals the bytes sent.
//! * **drop-oldest** — everything is accepted immediately; the
//!   cumulative eviction count rides on every `ACK` (`drops`).
//! * **error** — a `RECORDS` frame that overflows gets a typed
//!   `ERROR` (`overflow`) and the connection is closed.

use crate::engine::{Registrar, StreamHandle, StreamOptions};
use crate::operator::Operator;
use crate::ring::{Backpressure, PushError, RingConfig};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Protocol version carried in `HELLO`; mismatches are refused.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame's payload length (1 MiB ≈ 131k records per
/// `RECORDS` frame). Larger headers are rejected as [`FrameError::Oversized`]
/// before any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Frame header: type byte + LE u32 payload length.
const FRAME_HEADER: usize = 5;

/// Sentinel stream id in `ERROR` frames that concern the connection.
const NO_STREAM: u32 = u32::MAX;

/// How often blocking server loops re-check the stop flag.
const NET_POLL: Duration = Duration::from_millis(100);

/// Backoff while a blocked `RECORDS` frame waits for ring space.
const BLOCK_RETRY: Duration = Duration::from_micros(100);

const TAG_HELLO: u8 = 1;
const TAG_REGISTER: u8 = 2;
const TAG_RECORDS: u8 = 3;
const TAG_DETACH: u8 = 4;
const TAG_ACK: u8 = 5;
const TAG_THROTTLE: u8 = 6;
const TAG_ERROR: u8 = 7;

/// Locks a net-registry mutex, recovering from poisoning (the data is
/// plain counters, always consistent; stats must keep flowing).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Typed error codes carried in `ERROR` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer's `HELLO` carried an unsupported protocol version.
    VersionMismatch,
    /// A frame referenced a stream id this connection never registered.
    UnknownStream,
    /// A `RECORDS` frame overflowed a ring under the `error` policy.
    Overflow,
    /// The peer broke protocol (bad frame, wrong first frame, …).
    Protocol,
    /// The engine is shutting down; no more records can be delivered.
    Shutdown,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::VersionMismatch => 1,
            ErrorCode::UnknownStream => 2,
            ErrorCode::Overflow => 3,
            ErrorCode::Protocol => 4,
            ErrorCode::Shutdown => 5,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(ErrorCode::VersionMismatch),
            2 => Some(ErrorCode::UnknownStream),
            3 => Some(ErrorCode::Overflow),
            4 => Some(ErrorCode::Protocol),
            5 => Some(ErrorCode::Shutdown),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::UnknownStream => "unknown-stream",
            ErrorCode::Overflow => "overflow",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Shutdown => "shutdown",
        };
        f.write_str(s)
    }
}

/// One protocol frame. See the module docs for the wire layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session opener, first frame in each direction.
    Hello {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        version: u16,
        /// Peer name (client id or `"class-engine"`).
        peer: String,
    },
    /// Register a stream on the engine.
    Register {
        /// Backpressure policy: 0 block, 1 drop-oldest, 2 error.
        policy: u8,
        /// Ring capacity; 0 means the engine default.
        capacity: u32,
        /// Stream name (labels stats and metrics).
        name: String,
    },
    /// A batch of observations for one registered stream.
    Records {
        /// Stream id from the registration `ACK`.
        stream: u32,
        /// Observation values, bit-exact `f64`s.
        values: Vec<f64>,
    },
    /// Detach a stream: drain, flush, retire, then `ACK`.
    Detach {
        /// Stream id to detach.
        stream: u32,
    },
    /// Server acknowledgement for `REGISTER` / `RECORDS` / `DETACH`.
    Ack {
        /// Stream the ack concerns.
        stream: u32,
        /// Cumulative records accepted from this connection.
        received: u64,
        /// Cumulative drop-oldest evictions for the stream.
        drops: u64,
    },
    /// Backpressure signal under the `block` policy: the last `RECORDS`
    /// frame is stalled on a full ring.
    Throttle {
        /// Stream that is throttling.
        stream: u32,
        /// Ring depth when the throttle was raised.
        queued: u32,
    },
    /// Typed failure; the server closes the connection after sending.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Affected stream, if any.
        stream: Option<u32>,
        /// Human-readable detail.
        message: String,
    },
}

/// Why a byte buffer failed to decode into a [`Frame`]. Every variant
/// carries the byte offset (relative to the frame start) at which
/// decoding stopped, so producers can be debugged from a hex dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does; `needed` total bytes are
    /// required. Streaming decoders treat this as "read more".
    Truncated {
        /// Bytes available when decoding stopped.
        offset: usize,
        /// Total bytes the frame needs (header + payload).
        needed: usize,
    },
    /// The type byte is not a known frame tag.
    UnknownType {
        /// The unknown tag.
        tag: u8,
        /// Offset of the tag byte (always 0).
        offset: usize,
    },
    /// The header declares a payload longer than [`MAX_FRAME_LEN`].
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
        /// Offset of the length field.
        offset: usize,
    },
    /// The payload does not parse as the tag's layout.
    Malformed {
        /// Offset at which parsing failed.
        offset: usize,
        /// What was wrong.
        detail: &'static str,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { offset, needed } => {
                write!(f, "truncated frame: {offset} bytes of {needed}")
            }
            FrameError::UnknownType { tag, offset } => {
                write!(f, "unknown frame type {tag:#04x} at byte {offset}")
            }
            FrameError::Oversized { len, max, offset } => {
                write!(
                    f,
                    "oversized frame: payload {len} > {max} (length field at byte {offset})"
                )
            }
            FrameError::Malformed { offset, detail } => {
                write!(f, "malformed frame at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Payload reader tracking the absolute byte offset for error reports.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], base: usize) -> Self {
        Self { buf, pos: 0, base }
    }

    fn malformed(&self, detail: &'static str) -> FrameError {
        FrameError::Malformed {
            offset: self.base + self.pos,
            detail,
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(self.malformed(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, FrameError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.u16("string length")? as usize;
        let at = self.base + self.pos;
        let bytes = self.take(len, "string body")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed {
            offset: at,
            detail: "string is not valid UTF-8",
        })
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.buf.len() {
            return Err(self.malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(bytes.len() <= u16::MAX as usize, "string field too long");
    put_u16(out, bytes.len().min(u16::MAX as usize) as u16);
    out.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

impl Frame {
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Register { .. } => TAG_REGISTER,
            Frame::Records { .. } => TAG_RECORDS,
            Frame::Detach { .. } => TAG_DETACH,
            Frame::Ack { .. } => TAG_ACK,
            Frame::Throttle { .. } => TAG_THROTTLE,
            Frame::Error { .. } => TAG_ERROR,
        }
    }

    /// Appends the wire encoding of this frame to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        let len_at = out.len();
        put_u32(out, 0); // patched below
        match self {
            Frame::Hello { version, peer } => {
                put_u16(out, *version);
                put_string(out, peer);
            }
            Frame::Register {
                policy,
                capacity,
                name,
            } => {
                out.push(*policy);
                put_u32(out, *capacity);
                put_string(out, name);
            }
            Frame::Records { stream, values } => {
                put_u32(out, *stream);
                put_u32(out, values.len().min(u32::MAX as usize) as u32);
                for v in values {
                    put_u64(out, v.to_bits());
                }
            }
            Frame::Detach { stream } => put_u32(out, *stream),
            Frame::Ack {
                stream,
                received,
                drops,
            } => {
                put_u32(out, *stream);
                put_u64(out, *received);
                put_u64(out, *drops);
            }
            Frame::Throttle { stream, queued } => {
                put_u32(out, *stream);
                put_u32(out, *queued);
            }
            Frame::Error {
                code,
                stream,
                message,
            } => {
                out.push(code.to_u8());
                put_u32(out, stream.unwrap_or(NO_STREAM));
                put_string(out, message);
            }
        }
        let len = (out.len() - len_at - 4) as u32;
        out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// The wire encoding of this frame as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER + 16);
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it plus the
    /// bytes consumed. [`FrameError::Truncated`] means `buf` is a
    /// proper prefix — stream decoders read more and retry; every other
    /// error is fatal for the connection. Never panics, whatever the
    /// bytes.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.len() < FRAME_HEADER {
            return Err(FrameError::Truncated {
                offset: buf.len(),
                needed: FRAME_HEADER,
            });
        }
        let tag = buf[0];
        if !(TAG_HELLO..=TAG_ERROR).contains(&tag) {
            return Err(FrameError::UnknownType { tag, offset: 0 });
        }
        let len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized {
                len,
                max: MAX_FRAME_LEN,
                offset: 1,
            });
        }
        let total = FRAME_HEADER + len;
        if buf.len() < total {
            return Err(FrameError::Truncated {
                offset: buf.len(),
                needed: total,
            });
        }
        let mut r = Reader::new(&buf[FRAME_HEADER..total], FRAME_HEADER);
        let frame = match tag {
            TAG_HELLO => {
                let version = r.u16("version")?;
                let peer = r.string()?;
                Frame::Hello { version, peer }
            }
            TAG_REGISTER => {
                let policy = r.u8("policy byte")?;
                if policy > 2 {
                    return Err(FrameError::Malformed {
                        offset: FRAME_HEADER,
                        detail: "policy byte out of range (0 block, 1 drop-oldest, 2 error)",
                    });
                }
                let capacity = r.u32("capacity")?;
                let name = r.string()?;
                Frame::Register {
                    policy,
                    capacity,
                    name,
                }
            }
            TAG_RECORDS => {
                let stream = r.u32("stream id")?;
                let count = r.u32("record count")? as usize;
                if count * 8 != r.buf.len() - r.pos {
                    return Err(r.malformed("record count disagrees with payload length"));
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(f64::from_bits(r.u64("record value")?));
                }
                Frame::Records { stream, values }
            }
            TAG_DETACH => Frame::Detach {
                stream: r.u32("stream id")?,
            },
            TAG_ACK => Frame::Ack {
                stream: r.u32("stream id")?,
                received: r.u64("received total")?,
                drops: r.u64("drops total")?,
            },
            TAG_THROTTLE => Frame::Throttle {
                stream: r.u32("stream id")?,
                queued: r.u32("queued depth")?,
            },
            TAG_ERROR => {
                let at = FRAME_HEADER;
                let code_byte = r.u8("error code")?;
                let code = ErrorCode::from_u8(code_byte).ok_or(FrameError::Malformed {
                    offset: at,
                    detail: "unknown error code",
                })?;
                let stream = match r.u32("stream id")? {
                    NO_STREAM => None,
                    s => Some(s),
                };
                let message = r.string()?;
                Frame::Error {
                    code,
                    stream,
                    message,
                }
            }
            _ => unreachable!("tag range checked above"),
        };
        r.finish()?;
        Ok((frame, total))
    }
}

/// What a producer asked for in `REGISTER`, handed to the server's
/// operator factory.
#[derive(Debug, Clone)]
pub struct RegisterRequest {
    /// Requested stream name.
    pub name: String,
    /// Resolved ring config (the engine default if capacity was 0).
    pub ring: RingConfig,
}

/// Maps a wire policy byte to a ring policy. Callers validate `byte <= 2`.
fn policy_from_byte(byte: u8) -> Backpressure {
    match byte {
        1 => Backpressure::DropOldest,
        2 => Backpressure::Error,
        _ => Backpressure::Block,
    }
}

/// Maps a ring policy to its wire byte.
pub fn policy_to_byte(policy: Backpressure) -> u8 {
    match policy {
        Backpressure::Block => 0,
        Backpressure::DropOldest => 1,
        Backpressure::Error => 2,
    }
}

/// Per-connection counters, written by the connection thread and read
/// by [`NetStatsHandle::stats`].
#[derive(Debug)]
struct ConnMonitor {
    conn: u64,
    peer: String,
    connected_at: Instant,
    /// Nanoseconds from connect to close; 0 while the connection lives.
    closed_after_nanos: AtomicU64,
    frames: AtomicU64,
    records: AtomicU64,
    throttle_events: AtomicU64,
    protocol_errors: AtomicU64,
    streams: AtomicUsize,
}

impl ConnMonitor {
    fn close(&self) {
        let nanos = self
            .connected_at
            .elapsed()
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        // `max(1)`: 0 is the "still open" sentinel.
        self.closed_after_nanos
            .store(nanos.max(1), Ordering::Release);
    }
}

/// Snapshot of one producer connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnStats {
    /// Connection id (accept order, starting at 0).
    pub conn: u64,
    /// Peer address (or the client's `HELLO` name once received).
    pub peer: String,
    /// Whether the connection is still open.
    pub open: bool,
    /// Streams currently attached by this connection.
    pub streams: usize,
    /// Protocol frames received.
    pub frames: u64,
    /// Record values accepted into rings.
    pub records: u64,
    /// `THROTTLE` frames sent (block-policy stalls).
    pub throttle_events: u64,
    /// Protocol errors (typed `ERROR` frames sent).
    pub protocol_errors: u64,
    /// Connection lifetime so far (frozen at close).
    pub uptime: Duration,
}

impl ConnStats {
    /// Frames per second over the connection's lifetime.
    pub fn frames_per_sec(&self) -> f64 {
        self.frames as f64 / self.uptime.as_secs_f64().max(1e-9)
    }
}

/// Snapshot of the ingestion tier: totals plus per-connection rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Connections ever accepted.
    pub accepted: u64,
    /// Connections currently open.
    pub active: usize,
    /// Per-connection rows, accept order.
    pub connections: Vec<ConnStats>,
}

impl NetStats {
    /// Total frames received across all connections.
    pub fn frames(&self) -> u64 {
        self.connections.iter().map(|c| c.frames).sum()
    }

    /// Total record values accepted across all connections.
    pub fn records(&self) -> u64 {
        self.connections.iter().map(|c| c.records).sum()
    }

    /// Total `THROTTLE` frames sent.
    pub fn throttle_events(&self) -> u64 {
        self.connections.iter().map(|c| c.throttle_events).sum()
    }

    /// Total protocol errors.
    pub fn protocol_errors(&self) -> u64 {
        self.connections.iter().map(|c| c.protocol_errors).sum()
    }
}

#[derive(Debug)]
struct NetRegistry {
    accepted: AtomicU64,
    conns: Mutex<Vec<Arc<ConnMonitor>>>,
}

impl NetRegistry {
    fn snapshot(&self) -> NetStats {
        let conns = lock_recover(&self.conns).clone();
        let connections: Vec<ConnStats> = conns
            .iter()
            .map(|m| {
                let closed = m.closed_after_nanos.load(Ordering::Acquire);
                let open = closed == 0;
                ConnStats {
                    conn: m.conn,
                    peer: m.peer.clone(),
                    open,
                    streams: m.streams.load(Ordering::Relaxed),
                    frames: m.frames.load(Ordering::Relaxed),
                    records: m.records.load(Ordering::Relaxed),
                    throttle_events: m.throttle_events.load(Ordering::Relaxed),
                    protocol_errors: m.protocol_errors.load(Ordering::Relaxed),
                    uptime: if open {
                        m.connected_at.elapsed()
                    } else {
                        Duration::from_nanos(closed)
                    },
                }
            })
            .collect();
        NetStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            active: connections.iter().filter(|c| c.open).count(),
            connections,
        }
    }
}

/// A cloneable, `'static` window onto an [`IngestServer`]'s connection
/// stats — the network analogue of [`crate::StatsHandle`]. Stays valid
/// (frozen) after the server is dropped.
#[derive(Debug, Clone)]
pub struct NetStatsHandle {
    registry: Arc<NetRegistry>,
}

impl NetStatsHandle {
    /// Takes a live snapshot of the ingestion tier.
    pub fn stats(&self) -> NetStats {
        self.registry.snapshot()
    }
}

/// A TCP ingestion server bound to a live engine.
///
/// Accepts any number of producer connections, each serviced by its own
/// thread holding a [`Registrar`] clone — so wire-path registration and
/// feeding never block the engine's shard workers or other producers.
/// Dropping the server stops accepting, closes every connection, and
/// joins all threads; streams fed by open connections are closed (their
/// shards drain and retire them as usual).
///
/// **Shutdown contract:** the server holds a [`Registrar`], so it must
/// be dropped before the [`crate::serve`] body returns (see
/// [`crate::ServingEngine::registrar`]).
#[derive(Debug)]
pub struct IngestServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    registry: Arc<NetRegistry>,
}

impl IngestServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting producers. `factory` builds the operator for
    /// each wire-registered stream; it runs on the owning shard.
    pub fn bind<Op, F>(
        addr: impl ToSocketAddrs,
        registrar: Registrar<'static, Op>,
        factory: F,
    ) -> std::io::Result<IngestServer>
    where
        Op: Operator<In = f64> + 'static,
        Op::Out: Send + 'static,
        F: Fn(&RegisterRequest) -> Op + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(NetRegistry {
            accepted: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept_stop = Arc::clone(&stop);
        let accept_registry = Arc::clone(&registry);
        let factory = Arc::new(factory);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, registrar, factory, accept_registry, accept_stop);
        });
        Ok(IngestServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            registry,
        })
    }

    /// The bound listen address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable, `'static` handle onto per-connection stats.
    pub fn net_stats(&self) -> NetStatsHandle {
        NetStatsHandle {
            registry: Arc::clone(&self.registry),
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Accept loop: non-blocking accept with a stop-flag poll; one thread
/// per connection. Joins every connection thread before returning.
fn accept_loop<Op, F>(
    listener: TcpListener,
    registrar: Registrar<'static, Op>,
    factory: Arc<F>,
    registry: Arc<NetRegistry>,
    stop: Arc<AtomicBool>,
) where
    Op: Operator<In = f64> + 'static,
    Op::Out: Send + 'static,
    F: Fn(&RegisterRequest) -> Op + Send + Sync + 'static,
{
    const ACCEPT_POLL: Duration = Duration::from_millis(5);
    let mut conn_threads = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((sock, peer)) => {
                let conn = registry.accepted.fetch_add(1, Ordering::Relaxed);
                let monitor = Arc::new(ConnMonitor {
                    conn,
                    peer: peer.to_string(),
                    connected_at: Instant::now(),
                    closed_after_nanos: AtomicU64::new(0),
                    frames: AtomicU64::new(0),
                    records: AtomicU64::new(0),
                    throttle_events: AtomicU64::new(0),
                    protocol_errors: AtomicU64::new(0),
                    streams: AtomicUsize::new(0),
                });
                lock_recover(&registry.conns).push(Arc::clone(&monitor));
                let registrar = registrar.clone();
                let factory = Arc::clone(&factory);
                let conn_stop = Arc::clone(&stop);
                conn_threads.push(std::thread::spawn(move || {
                    serve_connection(sock, registrar, factory, monitor, conn_stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    drop(registrar); // release the engine before waiting on connections
    for t in conn_threads {
        let _ = t.join();
    }
}

/// One registered stream's connection-side state.
struct ConnStream {
    handle: StreamHandle,
    policy: Backpressure,
    /// Cumulative record values accepted from the wire.
    received: u64,
}

/// Why the connection loop ended; `Fatal` means a typed `ERROR` frame
/// was already sent (or the socket died trying).
enum ConnEnd {
    Eof,
    Fatal,
    Stopped,
    Io,
}

/// Services one producer connection until EOF, protocol error, or
/// server stop.
fn serve_connection<Op, F>(
    sock: TcpStream,
    registrar: Registrar<'static, Op>,
    factory: Arc<F>,
    monitor: Arc<ConnMonitor>,
    stop: Arc<AtomicBool>,
) where
    Op: Operator<In = f64> + 'static,
    Op::Out: Send + 'static,
    F: Fn(&RegisterRequest) -> Op + Send + Sync + 'static,
{
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(NET_POLL));
    let _ = sock.set_write_timeout(Some(Duration::from_secs(10)));
    let mut conn = Connection {
        sock,
        registrar,
        factory,
        monitor,
        stop,
        streams: HashMap::new(),
        greeted: false,
    };
    let _end = conn.run();
    // Close whatever the producer left attached: the shards drain and
    // retire those streams; their results simply carry no DETACH ack.
    conn.streams.clear();
    conn.monitor.streams.store(0, Ordering::Relaxed);
    conn.monitor.close();
}

struct Connection<Op, F>
where
    Op: Operator<In = f64> + 'static,
    Op::Out: Send + 'static,
    F: Fn(&RegisterRequest) -> Op + Send + Sync + 'static,
{
    sock: TcpStream,
    registrar: Registrar<'static, Op>,
    factory: Arc<F>,
    monitor: Arc<ConnMonitor>,
    stop: Arc<AtomicBool>,
    streams: HashMap<u32, ConnStream>,
    greeted: bool,
}

impl<Op, F> Connection<Op, F>
where
    Op: Operator<In = f64> + 'static,
    Op::Out: Send + 'static,
    F: Fn(&RegisterRequest) -> Op + Send + Sync + 'static,
{
    fn run(&mut self) -> ConnEnd {
        let mut buf: Vec<u8> = Vec::with_capacity(8192);
        let mut start = 0usize;
        let mut chunk = [0u8; 8192];
        loop {
            // Decode every complete frame already buffered.
            loop {
                match Frame::decode(&buf[start..]) {
                    Ok((frame, used)) => {
                        start += used;
                        self.monitor.frames.fetch_add(1, Ordering::Relaxed);
                        match self.handle_frame(frame) {
                            Ok(()) => {}
                            Err(end) => return end,
                        }
                    }
                    Err(FrameError::Truncated { .. }) => break, // read more
                    Err(e) => {
                        self.send_protocol_error(None, &e);
                        return ConnEnd::Fatal;
                    }
                }
            }
            // Reclaim consumed bytes before growing the buffer.
            if start > 0 {
                buf.drain(..start);
                start = 0;
            }
            match self.sock.read(&mut chunk) {
                Ok(0) => return ConnEnd::Eof,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.stop.load(Ordering::Acquire) {
                        self.send_error(ErrorCode::Shutdown, None, "server stopping");
                        return ConnEnd::Stopped;
                    }
                }
                Err(_) => return ConnEnd::Io,
            }
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ConnEnd> {
        self.sock
            .write_all(&frame.encode())
            .map_err(|_| ConnEnd::Io)
    }

    /// Sends a typed `ERROR` frame (best-effort) and counts it.
    fn send_error(&mut self, code: ErrorCode, stream: Option<u32>, message: &str) {
        self.monitor.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let _ = self.send(&Frame::Error {
            code,
            stream,
            message: message.to_string(),
        });
    }

    fn send_protocol_error(&mut self, stream: Option<u32>, err: &FrameError) {
        self.send_error(ErrorCode::Protocol, stream, &err.to_string());
    }

    fn handle_frame(&mut self, frame: Frame) -> Result<(), ConnEnd> {
        if !self.greeted {
            return match frame {
                Frame::Hello { version, peer: _ } => {
                    if version != PROTOCOL_VERSION {
                        self.send_error(
                            ErrorCode::VersionMismatch,
                            None,
                            &format!(
                                "server speaks version {PROTOCOL_VERSION}, client sent {version}"
                            ),
                        );
                        return Err(ConnEnd::Fatal);
                    }
                    self.greeted = true;
                    self.send(&Frame::Hello {
                        version: PROTOCOL_VERSION,
                        peer: "class-engine".to_string(),
                    })?;
                    Ok(())
                }
                _ => {
                    self.send_error(ErrorCode::Protocol, None, "expected HELLO first");
                    Err(ConnEnd::Fatal)
                }
            };
        }
        match frame {
            Frame::Hello { .. } => {
                self.send_error(ErrorCode::Protocol, None, "duplicate HELLO");
                Err(ConnEnd::Fatal)
            }
            Frame::Register {
                policy,
                capacity,
                name,
            } => self.handle_register(policy, capacity, name),
            Frame::Records { stream, values } => self.handle_records(stream, &values),
            Frame::Detach { stream } => self.handle_detach(stream),
            Frame::Ack { .. } | Frame::Throttle { .. } | Frame::Error { .. } => {
                self.send_error(
                    ErrorCode::Protocol,
                    None,
                    "ACK/THROTTLE/ERROR are server-to-producer frames",
                );
                Err(ConnEnd::Fatal)
            }
        }
    }

    fn handle_register(&mut self, policy: u8, capacity: u32, name: String) -> Result<(), ConnEnd> {
        let ring = if capacity == 0 {
            self.registrar.default_ring()
        } else {
            RingConfig::new(capacity as usize, policy_from_byte(policy))
        };
        let req = RegisterRequest { name, ring };
        let factory = Arc::clone(&self.factory);
        let freq = req.clone();
        let registered = self.registrar.register_stream(
            StreamOptions {
                ring,
                name: Some(req.name.clone()),
                ..StreamOptions::default()
            },
            move || factory(&freq),
        );
        let handle = match registered {
            Ok(h) => h,
            Err(_) => {
                self.send_error(ErrorCode::Shutdown, None, "engine is shutting down");
                return Err(ConnEnd::Fatal);
            }
        };
        let id = handle.id().min(NO_STREAM as usize - 1) as u32;
        self.streams.insert(
            id,
            ConnStream {
                handle,
                policy: ring.policy,
                received: 0,
            },
        );
        self.monitor
            .streams
            .store(self.streams.len(), Ordering::Relaxed);
        self.send(&Frame::Ack {
            stream: id,
            received: 0,
            drops: 0,
        })
    }

    fn handle_records(&mut self, stream: u32, values: &[f64]) -> Result<(), ConnEnd> {
        let Some(mut entry) = self.streams.remove(&stream) else {
            self.send_error(
                ErrorCode::UnknownStream,
                Some(stream),
                "RECORDS for a stream this connection never registered",
            );
            return Err(ConnEnd::Fatal);
        };
        let mut off = 0usize;
        let mut throttled = false;
        while off < values.len() {
            match entry.handle.try_feed(&values[off..]) {
                Ok(n) => {
                    off += n;
                    if off == values.len() {
                        break;
                    }
                    if n > 0 {
                        // Partial accept = the per-call capacity cap, not a
                        // stall; only zero progress engages the policy.
                        continue;
                    }
                    match entry.policy {
                        Backpressure::Block => {
                            if !throttled {
                                throttled = true;
                                self.monitor.throttle_events.fetch_add(1, Ordering::Relaxed);
                                let queued =
                                    entry.handle.queue_depth().min(u32::MAX as usize) as u32;
                                self.send(&Frame::Throttle { stream, queued })?;
                            }
                            if self.stop.load(Ordering::Acquire) {
                                self.send_error(
                                    ErrorCode::Shutdown,
                                    Some(stream),
                                    "server stopping",
                                );
                                return Err(ConnEnd::Stopped);
                            }
                            std::thread::sleep(BLOCK_RETRY);
                        }
                        Backpressure::Error => {
                            self.send_error(
                                ErrorCode::Overflow,
                                Some(stream),
                                "ring full under the `error` backpressure policy",
                            );
                            return Err(ConnEnd::Fatal);
                        }
                        // DropOldest try_feed always makes progress.
                        Backpressure::DropOldest => {
                            unreachable!("drop-oldest try_feed accepts every record offered")
                        }
                    }
                }
                Err(PushError::Disconnected) => {
                    self.send_error(ErrorCode::Shutdown, Some(stream), "engine is shutting down");
                    return Err(ConnEnd::Fatal);
                }
                Err(PushError::Overflow(_)) => {
                    unreachable!("try_feed accepts what fits instead of reporting overflow")
                }
            }
        }
        entry.received += off as u64;
        self.monitor
            .records
            .fetch_add(off as u64, Ordering::Relaxed);
        let ack = Frame::Ack {
            stream,
            received: entry.received,
            drops: entry.handle.drops(),
        };
        self.streams.insert(stream, entry);
        self.send(&ack)
    }

    fn handle_detach(&mut self, stream: u32) -> Result<(), ConnEnd> {
        let Some(entry) = self.streams.remove(&stream) else {
            self.send_error(
                ErrorCode::UnknownStream,
                Some(stream),
                "DETACH for a stream this connection never registered",
            );
            return Err(ConnEnd::Fatal);
        };
        self.monitor
            .streams
            .store(self.streams.len(), Ordering::Relaxed);
        let received = entry.received;
        let report = self.registrar.detach_stream(entry.handle);
        self.send(&Frame::Ack {
            stream,
            received,
            drops: report.drops,
        })
    }
}

/// A typed failure from the producer-side [`NetClient`].
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode.
    Frame(FrameError),
    /// The server broke protocol (unexpected frame, bad handshake).
    Protocol(String),
    /// The server sent a typed `ERROR` frame.
    Remote {
        /// The error code.
        code: ErrorCode,
        /// Affected stream, if any.
        stream: Option<u32>,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Frame(e) => write!(f, "frame error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Remote {
                code,
                stream,
                message,
            } => match stream {
                Some(s) => write!(f, "server error [{code}] on stream {s}: {message}"),
                None => write!(f, "server error [{code}]: {message}"),
            },
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        NetError::Frame(e)
    }
}

/// A producer-side client for the ingestion protocol: registers
/// streams, sends records stop-and-wait (or pipelined via
/// [`NetClient::send_records_nowait`] + [`NetClient::recv_ack`]), and
/// detaches. Counts `THROTTLE` frames it absorbs.
#[derive(Debug)]
pub struct NetClient {
    sock: TcpStream,
    buf: Vec<u8>,
    start: usize,
    throttle_events: u64,
    server: String,
}

impl NetClient {
    /// Connects, performs the `HELLO` handshake, and returns the client.
    /// `name` identifies this producer to the server.
    pub fn connect(addr: impl ToSocketAddrs, name: &str) -> Result<NetClient, NetError> {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        sock.set_read_timeout(Some(Duration::from_secs(30)))?;
        sock.set_write_timeout(Some(Duration::from_secs(30)))?;
        let mut client = NetClient {
            sock,
            buf: Vec::with_capacity(8192),
            start: 0,
            throttle_events: 0,
            server: String::new(),
        };
        client.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            peer: name.to_string(),
        })?;
        match client.read_frame()? {
            Frame::Hello { version, peer } if version == PROTOCOL_VERSION => {
                client.server = peer;
                Ok(client)
            }
            Frame::Hello { version, .. } => Err(NetError::Protocol(format!(
                "server replied with protocol version {version}, expected {PROTOCOL_VERSION}"
            ))),
            Frame::Error {
                code,
                stream,
                message,
            } => Err(NetError::Remote {
                code,
                stream,
                message,
            }),
            other => Err(NetError::Protocol(format!(
                "expected HELLO reply, got {other:?}"
            ))),
        }
    }

    /// The server's `HELLO` name.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// `THROTTLE` frames absorbed so far (block-policy backpressure).
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    /// Registers a stream and returns its wire id. `ring: None` asks
    /// for the engine's default capacity and policy.
    pub fn register(&mut self, name: &str, ring: Option<RingConfig>) -> Result<u32, NetError> {
        let (policy, capacity) = match ring {
            Some(cfg) => (
                policy_to_byte(cfg.policy),
                cfg.capacity.min(u32::MAX as usize) as u32,
            ),
            None => (0, 0),
        };
        self.send(&Frame::Register {
            policy,
            capacity,
            name: name.to_string(),
        })?;
        let ack = self.recv_ack()?;
        Ok(ack.stream)
    }

    /// Sends one `RECORDS` frame and waits for its `ACK` (stop-and-wait).
    pub fn send_records(&mut self, stream: u32, values: &[f64]) -> Result<AckInfo, NetError> {
        self.send_records_nowait(stream, values)?;
        self.recv_ack()
    }

    /// Sends one `RECORDS` frame without waiting. Pair each call with a
    /// later [`NetClient::recv_ack`]; the server acks frames in order.
    pub fn send_records_nowait(&mut self, stream: u32, values: &[f64]) -> Result<(), NetError> {
        self.send(&Frame::Records {
            stream,
            values: values.to_vec(),
        })
    }

    /// Detaches a stream: the server drains, flushes, and retires it
    /// before acking, so a returned ack means the stream is fully
    /// accounted engine-side.
    pub fn detach(&mut self, stream: u32) -> Result<AckInfo, NetError> {
        self.send(&Frame::Detach { stream })?;
        self.recv_ack()
    }

    /// Reads frames until the next `ACK`, absorbing `THROTTLE`s (they
    /// are counted, not returned) and turning `ERROR` frames into
    /// [`NetError::Remote`].
    pub fn recv_ack(&mut self) -> Result<AckInfo, NetError> {
        loop {
            match self.read_frame()? {
                Frame::Ack {
                    stream,
                    received,
                    drops,
                } => {
                    return Ok(AckInfo {
                        stream,
                        received,
                        drops,
                    })
                }
                Frame::Throttle { .. } => self.throttle_events += 1,
                Frame::Error {
                    code,
                    stream,
                    message,
                } => {
                    return Err(NetError::Remote {
                        code,
                        stream,
                        message,
                    })
                }
                other => {
                    return Err(NetError::Protocol(format!(
                        "expected ACK/THROTTLE/ERROR, got {other:?}"
                    )))
                }
            }
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.sock.write_all(&frame.encode())?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<Frame, NetError> {
        let mut chunk = [0u8; 8192];
        loop {
            match Frame::decode(&self.buf[self.start..]) {
                Ok((frame, used)) => {
                    self.start += used;
                    if self.start == self.buf.len() {
                        self.buf.clear();
                        self.start = 0;
                    }
                    return Ok(frame);
                }
                Err(FrameError::Truncated { .. }) => {}
                Err(e) => return Err(e.into()),
            }
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            match self.sock.read(&mut chunk) {
                Ok(0) => {
                    return Err(NetError::Protocol(
                        "server closed the connection mid-frame".to_string(),
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// A decoded `ACK`: cumulative accounting for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckInfo {
    /// Stream the ack concerns.
    pub stream: u32,
    /// Cumulative records accepted from this connection.
    pub received: u64,
    /// Cumulative drop-oldest evictions.
    pub drops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &Frame) {
        let bytes = frame.encode();
        let (back, used) = Frame::decode(&bytes).expect("round-trip decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(&back, frame);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(&Frame::Hello {
            version: 1,
            peer: "bench-7".to_string(),
        });
        roundtrip(&Frame::Register {
            policy: 1,
            capacity: 4096,
            name: "sensor/A".to_string(),
        });
        roundtrip(&Frame::Records {
            stream: 3,
            values: vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE],
        });
        roundtrip(&Frame::Detach { stream: 9 });
        roundtrip(&Frame::Ack {
            stream: 3,
            received: u64::MAX,
            drops: 17,
        });
        roundtrip(&Frame::Throttle {
            stream: 0,
            queued: 1024,
        });
        roundtrip(&Frame::Error {
            code: ErrorCode::Overflow,
            stream: Some(5),
            message: "ring full".to_string(),
        });
        roundtrip(&Frame::Error {
            code: ErrorCode::Shutdown,
            stream: None,
            message: String::new(),
        });
    }

    #[test]
    fn nan_payloads_roundtrip_bit_exactly() {
        let bits = [0x7ff8_dead_beef_0001u64, 0xfff0_0000_0000_0000u64];
        let frame = Frame::Records {
            stream: 1,
            values: bits.iter().map(|&b| f64::from_bits(b)).collect(),
        };
        let bytes = frame.encode();
        let (back, _) = Frame::decode(&bytes).unwrap();
        let Frame::Records { values, .. } = back else {
            panic!("wrong frame");
        };
        let got: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, bits);
    }

    #[test]
    fn truncation_reports_offset_and_need() {
        let bytes = Frame::Detach { stream: 2 }.encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            match err {
                FrameError::Truncated { offset, needed } => {
                    assert_eq!(offset, cut);
                    assert!(needed > cut);
                }
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_tag_and_oversized_header_are_typed() {
        let mut bytes = Frame::Detach { stream: 2 }.encode();
        bytes[0] = 0xEE;
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            FrameError::UnknownType {
                tag: 0xEE,
                offset: 0
            }
        );
        let mut huge = Frame::Detach { stream: 2 }.encode();
        huge[1..5].copy_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert_eq!(
            Frame::decode(&huge).unwrap_err(),
            FrameError::Oversized {
                len: MAX_FRAME_LEN + 1,
                max: MAX_FRAME_LEN,
                offset: 1
            }
        );
    }

    #[test]
    fn malformed_payloads_are_typed_with_offsets() {
        // RECORDS whose count disagrees with the payload length.
        let mut bad = Vec::new();
        bad.push(TAG_RECORDS);
        put_u32(&mut bad, 16); // payload: stream + count + one value... claims 2
        put_u32(&mut bad, 1); // stream
        put_u32(&mut bad, 2); // count = 2, but only 8 bytes follow
        put_u64(&mut bad, 0);
        match Frame::decode(&bad).unwrap_err() {
            FrameError::Malformed { offset, detail } => {
                assert!(detail.contains("count"), "{detail}");
                assert!(offset >= FRAME_HEADER);
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // REGISTER with a policy byte out of range.
        let mut bad_policy = Frame::Register {
            policy: 0,
            capacity: 1,
            name: "x".to_string(),
        }
        .encode();
        bad_policy[FRAME_HEADER] = 9;
        assert!(matches!(
            Frame::decode(&bad_policy).unwrap_err(),
            FrameError::Malformed { .. }
        ));
        // Trailing garbage after a well-formed payload.
        let mut trailing = Frame::Detach { stream: 1 }.encode();
        trailing.push(0xAB);
        let len = (trailing.len() - FRAME_HEADER) as u32;
        trailing[1..5].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            Frame::decode(&trailing).unwrap_err(),
            FrameError::Malformed { .. }
        ));
    }
}
