//! Degraded-input policies: per-stream value guards between the ring and
//! the operator.
//!
//! Real archive data makes degraded inputs routine rather than
//! exceptional: the wide-CSV fixtures model dead IMU sensors, and WFDB's
//! `-32768`/`-2048` invalid-sample sentinels decode to NaN. A long-running
//! serving deployment must decide *per stream* what to do when a feed goes
//! bad — heal an isolated glitch, skip it, or take the stream out of
//! service — instead of letting poisoned values run through operator state
//! for hours. [`GuardConfig`] is that policy; the engine instantiates one
//! [`InputGuard`] per guarded stream (see
//! [`crate::StreamOptions::guard`]) and consults it for every record
//! before the operator sees it.

/// What a guard does with a value it objects to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardAction {
    /// Replace the value with the last finite value seen on this stream
    /// (records before the first finite value are skipped). The default:
    /// sample-and-hold is what a hardware acquisition front-end does.
    #[default]
    Heal,
    /// Drop the record without stepping the operator.
    Skip,
    /// Quarantine the stream immediately.
    Quarantine,
}

/// Per-stream degraded-input policy. The zero thresholds disable their
/// detectors, so `GuardConfig::default()` only heals isolated non-finite
/// values and never quarantines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardConfig {
    /// Action for a non-finite (NaN/±inf) value.
    pub non_finite: GuardAction,
    /// Quarantine after this many *consecutive* non-finite values,
    /// regardless of [`GuardConfig::non_finite`] — a burst means the
    /// sensor is gone, not glitching. `0` disables burst detection.
    pub nan_burst: usize,
    /// Quarantine after this many consecutive *identical* finite values —
    /// a flatlined (stuck-at) sensor. `0` disables flatline detection.
    pub flatline: usize,
}

impl GuardConfig {
    /// A guard that heals isolated non-finite values and quarantines on
    /// `nan_burst` consecutive non-finite or `flatline` identical values.
    pub fn new(nan_burst: usize, flatline: usize) -> Self {
        Self {
            non_finite: GuardAction::Heal,
            nan_burst,
            flatline,
        }
    }
}

/// Why a guard took its stream out of service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardTrip {
    /// A non-finite value arrived under [`GuardAction::Quarantine`].
    NonFinite,
    /// `len` consecutive non-finite values crossed the burst threshold.
    NanBurst {
        /// Length of the non-finite run, including the tripping value.
        len: usize,
    },
    /// `len` consecutive identical values crossed the flatline threshold.
    Flatline {
        /// Length of the identical run, including the tripping value.
        len: usize,
        /// The stuck-at value.
        value: f64,
    },
}

impl std::fmt::Display for GuardTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardTrip::NonFinite => write!(f, "non-finite value"),
            GuardTrip::NanBurst { len } => {
                write!(f, "non-finite burst of {len} consecutive values")
            }
            GuardTrip::Flatline { len, value } => {
                write!(f, "flatline: {len} consecutive values stuck at {value}")
            }
        }
    }
}

/// The guard's verdict on one value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardVerdict {
    /// Deliver this (possibly healed) value to the operator.
    Pass(f64),
    /// Drop the record; the operator never sees it.
    Skip,
    /// Quarantine the stream.
    Trip(GuardTrip),
}

/// Running guard state for one stream. Purely sequential over the
/// stream's values — the engine consults it record-at-a-time on the
/// stream's shard, so it needs no synchronisation.
#[derive(Debug, Clone)]
pub struct InputGuard {
    cfg: GuardConfig,
    last_finite: Option<f64>,
    nan_run: usize,
    flat_run: usize,
    flat_value: f64,
    healed: u64,
    skipped: u64,
}

impl InputGuard {
    /// A fresh guard for one stream.
    pub fn new(cfg: GuardConfig) -> Self {
        Self {
            cfg,
            last_finite: None,
            nan_run: 0,
            flat_run: 0,
            flat_value: f64::NAN,
            healed: 0,
            skipped: 0,
        }
    }

    /// Inspects one incoming value and decides what the operator sees.
    #[inline]
    pub fn inspect(&mut self, x: f64) -> GuardVerdict {
        if !x.is_finite() {
            self.flat_run = 0;
            self.nan_run += 1;
            if self.cfg.nan_burst > 0 && self.nan_run >= self.cfg.nan_burst {
                return GuardVerdict::Trip(GuardTrip::NanBurst { len: self.nan_run });
            }
            return match self.cfg.non_finite {
                GuardAction::Heal => match self.last_finite {
                    Some(v) => {
                        self.healed += 1;
                        GuardVerdict::Pass(v)
                    }
                    // Nothing to hold yet: skip until the first finite
                    // value arrives.
                    None => {
                        self.skipped += 1;
                        GuardVerdict::Skip
                    }
                },
                GuardAction::Skip => {
                    self.skipped += 1;
                    GuardVerdict::Skip
                }
                GuardAction::Quarantine => GuardVerdict::Trip(GuardTrip::NonFinite),
            };
        }
        self.nan_run = 0;
        self.last_finite = Some(x);
        if self.cfg.flatline > 0 {
            if self.flat_run > 0 && x == self.flat_value {
                self.flat_run += 1;
                if self.flat_run >= self.cfg.flatline {
                    return GuardVerdict::Trip(GuardTrip::Flatline {
                        len: self.flat_run,
                        value: x,
                    });
                }
            } else {
                self.flat_run = 1;
                self.flat_value = x;
            }
        }
        GuardVerdict::Pass(x)
    }

    /// Values healed (replaced by the last finite value) so far.
    pub fn healed(&self) -> u64 {
        self.healed
    }

    /// Records skipped (dropped before the operator) so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_guard_heals_isolated_nans_and_never_trips() {
        let mut g = InputGuard::new(GuardConfig::default());
        assert_eq!(g.inspect(1.0), GuardVerdict::Pass(1.0));
        assert_eq!(g.inspect(f64::NAN), GuardVerdict::Pass(1.0));
        assert_eq!(g.inspect(f64::INFINITY), GuardVerdict::Pass(1.0));
        assert_eq!(g.inspect(2.0), GuardVerdict::Pass(2.0));
        assert_eq!(g.healed(), 2);
        assert_eq!(g.skipped(), 0);
    }

    #[test]
    fn leading_nans_are_skipped_until_a_finite_value_arrives() {
        let mut g = InputGuard::new(GuardConfig::default());
        assert_eq!(g.inspect(f64::NAN), GuardVerdict::Skip);
        assert_eq!(g.inspect(f64::NAN), GuardVerdict::Skip);
        assert_eq!(g.inspect(3.0), GuardVerdict::Pass(3.0));
        assert_eq!(g.inspect(f64::NAN), GuardVerdict::Pass(3.0));
        assert_eq!(g.skipped(), 2);
        assert_eq!(g.healed(), 1);
    }

    #[test]
    fn nan_burst_threshold_trips_and_overrides_heal() {
        let mut g = InputGuard::new(GuardConfig::new(3, 0));
        g.inspect(1.0);
        assert_eq!(g.inspect(f64::NAN), GuardVerdict::Pass(1.0));
        assert_eq!(g.inspect(f64::NAN), GuardVerdict::Pass(1.0));
        assert_eq!(
            g.inspect(f64::NAN),
            GuardVerdict::Trip(GuardTrip::NanBurst { len: 3 })
        );
        // A finite value in between resets the run.
        let mut g = InputGuard::new(GuardConfig::new(3, 0));
        g.inspect(1.0);
        g.inspect(f64::NAN);
        g.inspect(f64::NAN);
        assert_eq!(g.inspect(2.0), GuardVerdict::Pass(2.0));
        assert_eq!(g.inspect(f64::NAN), GuardVerdict::Pass(2.0));
    }

    #[test]
    fn flatline_threshold_trips_on_stuck_values() {
        let mut g = InputGuard::new(GuardConfig::new(0, 4));
        for _ in 0..3 {
            assert_eq!(g.inspect(7.5), GuardVerdict::Pass(7.5));
        }
        assert_eq!(
            g.inspect(7.5),
            GuardVerdict::Trip(GuardTrip::Flatline { len: 4, value: 7.5 })
        );
        // A changing feed never trips.
        let mut g = InputGuard::new(GuardConfig::new(0, 4));
        for i in 0..100 {
            assert!(matches!(g.inspect((i % 2) as f64), GuardVerdict::Pass(_)));
        }
    }

    #[test]
    fn skip_and_quarantine_actions_apply_to_non_finite() {
        let mut g = InputGuard::new(GuardConfig {
            non_finite: GuardAction::Skip,
            ..GuardConfig::default()
        });
        g.inspect(1.0);
        assert_eq!(g.inspect(f64::NAN), GuardVerdict::Skip);
        assert_eq!(g.skipped(), 1);

        let mut g = InputGuard::new(GuardConfig {
            non_finite: GuardAction::Quarantine,
            ..GuardConfig::default()
        });
        assert_eq!(
            g.inspect(f64::NEG_INFINITY),
            GuardVerdict::Trip(GuardTrip::NonFinite)
        );
    }
}
