//! Replay sources: feed a loaded (file-backed or in-memory) series through
//! a pipeline, optionally paced at a configurable record rate.
//!
//! The paper's throughput experiment (§4.4) replays each benchmark series
//! from RAM as fast as the operator can drain it; a live deployment sees
//! records at the sensor's native rate instead. [`ReplaySource`] models
//! both: unpaced it is a plain in-memory iterator (the §4.4 setup), with
//! [`ReplaySource::with_rate`] it sleeps between emissions to match a
//! target records-per-second rate. `class-cli datasets run` drives its
//! iterator into a serving-engine [`crate::StreamHandle`] — the pacing
//! happens on the ingest thread, the backpressured ring carries the
//! records to the stream's shard.

use std::path::Path;
use std::time::{Duration, Instant};

/// An in-memory stream source with optional rate pacing.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    values: Vec<f64>,
    rate: Option<f64>,
}

impl ReplaySource {
    /// A source replaying `values` as fast as the consumer drains it.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values, rate: None }
    }

    /// Reads a plain one-observation-per-line text file — annotation-free
    /// feeds for consumers that link only `stream-engine` (annotated
    /// archive files go through `datasets::load_series_file` instead).
    /// Non-finite values are rejected like the archive parsers reject
    /// them: a `nan` line would silently poison a segmenter's running
    /// statistics. Errors carry the 1-based line number.
    pub fn from_txt_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let body = std::fs::read_to_string(path.as_ref())?;
        let mut values = Vec::new();
        for (i, line) in body.lines().enumerate() {
            let bad = |what: &str| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}:{}: {what} `{line}`", path.as_ref().display(), i + 1),
                )
            };
            let v: f64 = line
                .trim()
                .parse()
                .map_err(|_| bad("expected a decimal value, got"))?;
            if !v.is_finite() {
                return Err(bad("non-finite value"));
            }
            values.push(v);
        }
        Ok(Self::new(values))
    }

    /// Paces the replay at `records_per_sec` (must be positive): the n-th
    /// record is withheld until `n / records_per_sec` seconds after the
    /// first `next()` call, mirroring a fixed-rate sensor.
    pub fn with_rate(mut self, records_per_sec: f64) -> Self {
        assert!(
            records_per_sec > 0.0,
            "replay rate must be positive, got {records_per_sec}"
        );
        self.rate = Some(records_per_sec);
        self
    }

    /// Number of records the source will emit.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl IntoIterator for ReplaySource {
    type Item = f64;
    type IntoIter = ReplayIter;

    fn into_iter(self) -> ReplayIter {
        ReplayIter {
            values: self.values.into_iter(),
            rate: self.rate,
            emitted: 0,
            started: None,
        }
    }
}

/// Iterator over a [`ReplaySource`], sleeping to hold the target rate.
#[derive(Debug)]
pub struct ReplayIter {
    values: std::vec::IntoIter<f64>,
    rate: Option<f64>,
    emitted: u64,
    started: Option<Instant>,
}

impl Iterator for ReplayIter {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let v = self.values.next()?;
        if let Some(rate) = self.rate {
            let start = *self.started.get_or_insert_with(Instant::now);
            let due = Duration::from_secs_f64(self.emitted as f64 / rate);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        self.emitted += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.values.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::TumblingWindowMean;
    use crate::pipeline::Pipeline;

    #[test]
    fn unpaced_replay_preserves_order_and_count() {
        let src = ReplaySource::new((0..500).map(|i| i as f64).collect());
        assert_eq!(src.len(), 500);
        let out: Vec<f64> = src.into_iter().collect();
        assert_eq!(out.len(), 500);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[499], 499.0);
    }

    #[test]
    fn replay_feeds_a_pipeline() {
        let src = ReplaySource::new((0..8).map(|i| i as f64).collect());
        let p = Pipeline::source_type::<f64>().then(TumblingWindowMean::new(4));
        let (out, report) = p.run(src);
        assert_eq!(report.records_in, 8);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 1.5);
    }

    #[test]
    fn paced_replay_holds_the_rate_floor() {
        // 120 records at 2000/s must take at least ~59 ms (the last record
        // is due at 119/2000 s). Upper bounds would flake on loaded CI
        // machines; only the floor is asserted.
        let src = ReplaySource::new(vec![0.0; 120]).with_rate(2000.0);
        let start = Instant::now();
        let n = src.into_iter().count();
        let elapsed = start.elapsed();
        assert_eq!(n, 120);
        assert!(
            elapsed >= Duration::from_millis(55),
            "paced replay finished too fast: {elapsed:?}"
        );
    }

    #[test]
    fn txt_file_source_reads_values_and_reports_bad_lines() {
        let dir = std::env::temp_dir().join("class-stream-engine-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.txt");
        std::fs::write(&good, "0.5\n1.5\n-2.25\n").unwrap();
        let src = ReplaySource::from_txt_file(&good).unwrap();
        assert_eq!(src.values(), &[0.5, 1.5, -2.25]);

        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "0.5\nnope\n").unwrap();
        let err = ReplaySource::from_txt_file(&bad).unwrap_err();
        assert!(err.to_string().contains("bad.txt:2:"), "{err}");

        let nan = dir.join("nan.txt");
        std::fs::write(&nan, "0.5\n1.0\nnan\n").unwrap();
        let err = ReplaySource::from_txt_file(&nan).unwrap_err();
        assert!(err.to_string().contains("nan.txt:3:"), "{err}");
        assert!(err.to_string().contains("non-finite"), "{err}");
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
        std::fs::remove_file(&nan).ok();
    }

    #[test]
    #[should_panic(expected = "replay rate must be positive")]
    fn zero_rate_is_rejected() {
        let _ = ReplaySource::new(vec![1.0]).with_rate(0.0);
    }
}
