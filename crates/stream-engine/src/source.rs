//! Replay sources: feed a loaded (file-backed or in-memory) series through
//! a pipeline, optionally paced at a configurable record rate.
//!
//! The paper's throughput experiment (§4.4) replays each benchmark series
//! from RAM as fast as the operator can drain it; a live deployment sees
//! records at the sensor's native rate instead. [`ReplaySource`] models
//! both: unpaced it is a plain in-memory iterator (the §4.4 setup), with
//! [`ReplaySource::with_rate`] it sleeps between emissions to match a
//! target records-per-second rate. `class-cli datasets run` drives its
//! iterator into a serving-engine [`crate::StreamHandle`] — the pacing
//! happens on the ingest thread, the backpressured ring carries the
//! records to the stream's shard.

use std::path::Path;
use std::time::{Duration, Instant};

/// An in-memory stream source with optional rate pacing.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    values: Vec<f64>,
    rate: Option<f64>,
}

impl ReplaySource {
    /// A source replaying `values` as fast as the consumer drains it.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values, rate: None }
    }

    /// Reads a plain one-observation-per-line text file — annotation-free
    /// feeds for consumers that link only `stream-engine` (annotated
    /// archive files go through `datasets::load_series_file` instead).
    /// Non-finite values are rejected like the archive parsers reject
    /// them: a `nan` line would silently poison a segmenter's running
    /// statistics. Errors carry the 1-based line number.
    pub fn from_txt_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let body = std::fs::read_to_string(path.as_ref())?;
        let mut values = Vec::new();
        for (i, line) in body.lines().enumerate() {
            let bad = |what: &str| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}:{}: {what} `{line}`", path.as_ref().display(), i + 1),
                )
            };
            let v: f64 = line
                .trim()
                .parse()
                .map_err(|_| bad("expected a decimal value, got"))?;
            if !v.is_finite() {
                return Err(bad("non-finite value"));
            }
            values.push(v);
        }
        Ok(Self::new(values))
    }

    /// Paces the replay at `records_per_sec` (must be positive): the n-th
    /// record is withheld until `n / records_per_sec` seconds after the
    /// first `next()` call, mirroring a fixed-rate sensor.
    pub fn with_rate(mut self, records_per_sec: f64) -> Self {
        assert!(
            records_per_sec > 0.0,
            "replay rate must be positive, got {records_per_sec}"
        );
        self.rate = Some(records_per_sec);
        self
    }

    /// Number of records the source will emit.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The underlying values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl IntoIterator for ReplaySource {
    type Item = f64;
    type IntoIter = ReplayIter;

    fn into_iter(self) -> ReplayIter {
        ReplayIter {
            values: self.values.into_iter(),
            rate: self.rate,
            emitted: 0,
            started: None,
        }
    }
}

/// Iterator over a [`ReplaySource`], sleeping to hold the target rate.
#[derive(Debug)]
pub struct ReplayIter {
    values: std::vec::IntoIter<f64>,
    rate: Option<f64>,
    emitted: u64,
    started: Option<Instant>,
}

impl Iterator for ReplayIter {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let v = self.values.next()?;
        if let Some(rate) = self.rate {
            let start = *self.started.get_or_insert_with(Instant::now);
            let due = Duration::from_secs_f64(self.emitted as f64 / rate);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        self.emitted += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.values.size_hint()
    }
}

// ---------------------------------------------------------------------------
// Multi-channel replay
// ---------------------------------------------------------------------------

/// An in-memory **multi-channel** stream source: one frame per time step,
/// one value per channel. The serving engine's rings carry scalar `f64`
/// records, so a multi-channel stream travels **interleaved frame-major**
/// (`t0c0, t0c1, ..., t1c0, ...`) through one ring and is reassembled
/// into rows by the stream's operator (see
/// `crate::MultivariateSegmenterOperator`) — one sensor, one stream, one
/// backpressure domain, exactly like the univariate case. Optional
/// pacing applies per *frame*, mirroring a multi-sensor device emitting
/// one synchronized sample vector per tick.
#[derive(Debug, Clone)]
pub struct MultiChannelReplaySource {
    channels: Vec<Vec<f64>>,
    rate: Option<f64>,
}

impl MultiChannelReplaySource {
    /// A source replaying channel-major `channels` (all the same length)
    /// as fast as the consumer drains it.
    ///
    /// # Panics
    /// Panics on zero channels or ragged channel lengths.
    pub fn new(channels: Vec<Vec<f64>>) -> Self {
        assert!(!channels.is_empty(), "need at least one channel");
        let n = channels[0].len();
        assert!(
            channels.iter().all(|c| c.len() == n),
            "ragged channel lengths"
        );
        Self {
            channels,
            rate: None,
        }
    }

    /// Paces the replay at `frames_per_sec` (must be positive): frame `n`
    /// is withheld until `n / frames_per_sec` seconds after the first
    /// one, mirroring a fixed-rate multi-sensor feed.
    pub fn with_rate(mut self, frames_per_sec: f64) -> Self {
        assert!(
            frames_per_sec > 0.0,
            "replay rate must be positive, got {frames_per_sec}"
        );
        self.rate = Some(frames_per_sec);
        self
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of frames (time steps) the source will emit.
    pub fn len(&self) -> usize {
        self.channels[0].len()
    }

    /// Whether the source is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying channel-major values.
    pub fn channels(&self) -> &[Vec<f64>] {
        &self.channels
    }

    /// Flattens the source into the interleaved frame-major scalar
    /// sequence that travels through a serving-engine ring.
    pub fn interleaved(&self) -> Vec<f64> {
        interleave_channels(&self.channels)
    }
}

/// Flattens channel-major data into the interleaved frame-major scalar
/// sequence (`t0c0, t0c1, ..., t1c0, ...`) the serving engine's rings
/// carry for multi-channel streams. This is the transport layout
/// `crate::MultivariateSegmenterOperator` reassembles frames from — the
/// single source of truth every feeder (replay sources, the eval matrix
/// runner, load generators) must share.
pub fn interleave_channels(channels: &[Vec<f64>]) -> Vec<f64> {
    let n = channels.first().map_or(0, Vec::len);
    let mut out = Vec::with_capacity(n * channels.len());
    for t in 0..n {
        for chan in channels {
            out.push(chan[t]);
        }
    }
    out
}

impl IntoIterator for MultiChannelReplaySource {
    type Item = Vec<f64>;
    type IntoIter = MultiChannelReplayIter;

    fn into_iter(self) -> MultiChannelReplayIter {
        MultiChannelReplayIter {
            channels: self.channels,
            rate: self.rate,
            t: 0,
            started: None,
        }
    }
}

/// Iterator over a [`MultiChannelReplaySource`], yielding one frame (one
/// value per channel) at a time, sleeping to hold the target frame rate.
#[derive(Debug)]
pub struct MultiChannelReplayIter {
    channels: Vec<Vec<f64>>,
    rate: Option<f64>,
    t: usize,
    started: Option<Instant>,
}

impl Iterator for MultiChannelReplayIter {
    type Item = Vec<f64>;

    fn next(&mut self) -> Option<Vec<f64>> {
        if self.t >= self.channels[0].len() {
            return None;
        }
        if let Some(rate) = self.rate {
            let start = *self.started.get_or_insert_with(Instant::now);
            let due = Duration::from_secs_f64(self.t as f64 / rate);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        let row = self.channels.iter().map(|c| c[self.t]).collect();
        self.t += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.channels[0].len() - self.t;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::TumblingWindowMean;
    use crate::pipeline::Pipeline;

    #[test]
    fn unpaced_replay_preserves_order_and_count() {
        let src = ReplaySource::new((0..500).map(|i| i as f64).collect());
        assert_eq!(src.len(), 500);
        let out: Vec<f64> = src.into_iter().collect();
        assert_eq!(out.len(), 500);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[499], 499.0);
    }

    #[test]
    fn replay_feeds_a_pipeline() {
        let src = ReplaySource::new((0..8).map(|i| i as f64).collect());
        let p = Pipeline::source_type::<f64>().then(TumblingWindowMean::new(4));
        let (out, report) = p.run(src);
        assert_eq!(report.records_in, 8);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 1.5);
    }

    #[test]
    fn paced_replay_holds_the_rate_floor() {
        // 120 records at 2000/s must take at least ~59 ms (the last record
        // is due at 119/2000 s). Upper bounds would flake on loaded CI
        // machines; only the floor is asserted.
        let src = ReplaySource::new(vec![0.0; 120]).with_rate(2000.0);
        let start = Instant::now();
        let n = src.into_iter().count();
        let elapsed = start.elapsed();
        assert_eq!(n, 120);
        assert!(
            elapsed >= Duration::from_millis(55),
            "paced replay finished too fast: {elapsed:?}"
        );
    }

    #[test]
    fn txt_file_source_reads_values_and_reports_bad_lines() {
        let dir = std::env::temp_dir().join("class-stream-engine-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.txt");
        std::fs::write(&good, "0.5\n1.5\n-2.25\n").unwrap();
        let src = ReplaySource::from_txt_file(&good).unwrap();
        assert_eq!(src.values(), &[0.5, 1.5, -2.25]);

        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "0.5\nnope\n").unwrap();
        let err = ReplaySource::from_txt_file(&bad).unwrap_err();
        assert!(err.to_string().contains("bad.txt:2:"), "{err}");

        let nan = dir.join("nan.txt");
        std::fs::write(&nan, "0.5\n1.0\nnan\n").unwrap();
        let err = ReplaySource::from_txt_file(&nan).unwrap_err();
        assert!(err.to_string().contains("nan.txt:3:"), "{err}");
        assert!(err.to_string().contains("non-finite"), "{err}");
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
        std::fs::remove_file(&nan).ok();
    }

    #[test]
    #[should_panic(expected = "replay rate must be positive")]
    fn zero_rate_is_rejected() {
        let _ = ReplaySource::new(vec![1.0]).with_rate(0.0);
    }

    #[test]
    fn multi_channel_replay_yields_frames_and_interleaves() {
        let src = MultiChannelReplaySource::new(vec![vec![0.0, 1.0, 2.0], vec![10.0, 11.0, 12.0]]);
        assert_eq!(src.n_channels(), 2);
        assert_eq!(src.len(), 3);
        assert_eq!(
            src.interleaved(),
            vec![0.0, 10.0, 1.0, 11.0, 2.0, 12.0],
            "frame-major interleaving"
        );
        let rows: Vec<Vec<f64>> = src.into_iter().collect();
        assert_eq!(
            rows,
            vec![vec![0.0, 10.0], vec![1.0, 11.0], vec![2.0, 12.0]]
        );
    }

    #[test]
    fn multi_channel_paced_replay_holds_the_rate_floor() {
        let src =
            MultiChannelReplaySource::new(vec![vec![0.0; 100], vec![0.0; 100]]).with_rate(2000.0);
        let start = Instant::now();
        let n = src.into_iter().count();
        assert_eq!(n, 100);
        // Frame 99 is due at 99/2000 s; only the floor is asserted.
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    #[should_panic(expected = "ragged channel lengths")]
    fn ragged_channels_are_rejected() {
        let _ = MultiChannelReplaySource::new(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
